#!/usr/bin/env python3
"""Figure 2.1: why classic LSM compaction rewrites the same data.

Replays the paper's illustration: Level-1 sstables get rewritten every
time a new Level-0 sstable with an overlapping range is compacted down.
The compaction trace shows each pass's inputs, outputs, and bytes
written; the write amplification of the leveled design falls out of the
repeated rewrites.

Run with:  python examples/lsm_compaction_trace.py
"""

import dataclasses
import random

import repro
from repro.engines.options import StoreOptions


def main() -> None:
    env = repro.Environment()
    options = dataclasses.replace(
        StoreOptions.leveldb(),
        memtable_bytes=4 * 1024,
        level0_compaction_trigger=2,
        level1_max_bytes=64 * 1024,
    )
    db = repro.open_store("leveldb", env.storage, options=options)
    db.compaction_trace = []

    # Keys spread over the whole range, so every Level-0 sstable overlaps
    # every Level-1 sstable — the paper's worst case.
    rng = random.Random(1)
    for i in range(1500):
        db.put(b"%08d" % rng.randrange(10**6), b"x" * 48)
    db.wait_idle()

    print("LSM compaction trace (cf. paper Figure 2.1)")
    print("=" * 64)
    rewritten = {}
    for level, inputs, outputs, nbytes in db.compaction_trace:
        print(
            f"compact L{level}->L{level + 1}: "
            f"{len(inputs)} inputs -> {len(outputs)} outputs, "
            f"{nbytes / 1024:.1f} KB written"
        )
        for number in inputs:
            rewritten[number] = rewritten.get(number, 0) + 1
    print()
    multi = sum(1 for n in rewritten.values() if n > 1)
    stats = db.stats()
    print(f"compaction passes         : {len(db.compaction_trace)}")
    print(f"write amplification       : {stats.write_amplification:.2f}x")
    print(f"user data                 : {stats.user_bytes_written / 1024:.0f} KB")
    print(f"device writes             : {stats.device_bytes_written / 1024:.0f} KB")
    print()
    print(
        "Every Level-1 file that intersected an incoming Level-0 range was\n"
        "rewritten; FLSM avoids exactly this by appending fragments to\n"
        "guards instead (see examples/flsm_layout.py)."
    )
    db.close()


if __name__ == "__main__":
    main()

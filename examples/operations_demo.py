#!/usr/bin/env python3
"""Operations tour: backups, disaster repair, and trace replay.

The tooling a storage engine needs around it in production, exercised on
the simulated device.

Run with:  python examples/operations_demo.py
"""

import random

import repro
from repro.tools.backup import create_backup, restore_backup
from repro.tools.repair import repair_store
from repro.workloads.trace import TracingStore, replay_trace


def main() -> None:
    env = repro.Environment()

    # --- Load a store, recording a trace of every operation -------------
    db = repro.open_store("pebblesdb", env.storage, prefix="db/")
    traced = TracingStore(db)
    rng = random.Random(42)
    for i in range(5000):
        traced.put(b"user%08d" % rng.randrange(10**6), b"profile-%05d" % i)
    for _ in range(500):
        traced.get(b"user%08d" % rng.randrange(10**6))
    db.wait_idle()
    print(f"loaded store: {db.stats().sstable_count} sstables, "
          f"{db.stats().write_amplification:.2f}x amplification")

    # --- Back it up ------------------------------------------------------
    report = create_backup(env.storage, "db/", "backups/monday/")
    print(f"backup: {report.files_copied} files, "
          f"{report.bytes_copied / 1e6:.1f} MB")

    # --- Disaster: metadata wiped out -------------------------------------
    before = dict(db.scan())
    db.close()
    for name in list(env.storage.list_files("db/")):
        base = name[len("db/"):]
        if base == "CURRENT" or base.startswith("MANIFEST-"):
            env.storage.delete(name)
    print("disaster: CURRENT and MANIFEST deleted")

    # --- Option 1: RepairDB rebuilds metadata from the data files ---------
    repair = repair_store(env.storage, "db/")
    repaired = repro.open_store("pebblesdb", env.storage, prefix="db/")
    intact = dict(repaired.scan()) == before
    print(f"repair: {repair.tables_recovered} tables recovered, "
          f"{repair.logs_converted} WALs converted, data intact: {intact}")
    repaired.close()

    # --- Option 2: restore the backup to a fresh prefix -------------------
    restore_backup(env.storage, "backups/monday/", "restored/")
    restored = repro.open_store("pebblesdb", env.storage, prefix="restored/")
    print(f"restore: {len(dict(restored.scan()))} keys back from backup")
    restored.close()

    # --- Replay the recorded trace against a different engine -------------
    env2 = repro.Environment()
    other = repro.open_store("hyperleveldb", env2.storage)
    result = replay_trace(traced.encoded(), other, clock=env2.clock)
    other.wait_idle()
    print(
        f"trace replay on hyperleveldb: {result.ops} ops at "
        f"{result.kops:.1f} KOps/s, amplification "
        f"{other.stats().write_amplification:.2f}x "
        f"(pebblesdb wrote {db.stats().write_amplification:.2f}x)"
    )
    other.close()


if __name__ == "__main__":
    main()

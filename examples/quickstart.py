#!/usr/bin/env python3
"""Quickstart: open a PebblesDB store, write, read, scan, inspect stats.

Run with:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # An Environment is a simulated machine: NVMe-RAID0 device model,
    # DRAM page cache, and a simulated clock that every byte of IO and
    # every microsecond of CPU advances.
    env = repro.Environment()
    db = repro.open_store("pebblesdb", env.storage)

    # Basic operations (paper section 2.1).
    db.put(b"artist", b"pebbles")
    db.put(b"album", b"fragmented")
    db.put(b"year", b"2017")
    print("get(artist) ->", db.get(b"artist"))

    db.delete(b"year")
    print("get(year) after delete ->", db.get(b"year"))

    # Range queries via seek/next.
    print("range a..z:")
    for key, value in db.range_query(b"a", b"z"):
        print("   ", key, "->", value)

    # Write a burst large enough to trigger flushes and FLSM compaction.
    for i in range(20000):
        db.put(b"user%010d" % (i * 7919 % 10**9), b"payload-%05d" % i)
    db.wait_idle()

    stats = db.stats()
    print()
    print(f"simulated elapsed time : {env.now:.3f} s")
    print(f"user data written      : {stats.user_bytes_written / 1e6:.1f} MB")
    print(f"device writes          : {stats.device_bytes_written / 1e6:.1f} MB")
    print(f"write amplification    : {stats.write_amplification:.2f}x")
    print(f"live sstables          : {stats.sstable_count}")
    print(f"guards per level       : {db.guard_counts()}")

    db.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 1.1 in miniature: write IO across five storage engines.

Inserts the same random workload into PebblesDB, the three LSM baselines,
and the B+tree store, then prints total device writes and amplification.

Run with:  python examples/write_amplification_demo.py
"""

from repro.analysis import Table
from repro.harness import fresh_run, standard_config

ENGINES = ["pebblesdb", "hyperleveldb", "leveldb", "rocksdb", "btree"]


def main() -> None:
    table = Table(
        "Write amplification, 10K random inserts of 128 B values",
        ["engine", "device writes (MB)", "amplification", "sim time (s)"],
    )
    for engine in ENGINES:
        keys = 10000 if engine != "btree" else 2000
        run = fresh_run(engine, standard_config(num_keys=keys, value_size=128))
        run.bench.fill_random()
        run.db.wait_idle()
        stats = run.db.stats()
        table.add_row(
            engine,
            f"{stats.device_bytes_written / 1e6:.1f}",
            f"{stats.write_amplification:.2f}x",
            f"{run.env.now:.3f}",
        )
        run.db.close()
    table.print()
    print(
        "PebblesDB's FLSM writes each item roughly once per level;\n"
        "leveled LSMs rewrite overlapping files, and the B+tree rewrites\n"
        "a 4 KB page per small update (paper sections 2.2 and 3.4)."
    )


if __name__ == "__main__":
    main()

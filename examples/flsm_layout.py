#!/usr/bin/env python3
"""Figure 3.1: visualize FLSM's guards and sstable fragments per level.

Inserts a few thousand keys, lets compaction partition them through the
guard hierarchy, and prints the storage layout: Level 0 has no guards;
deeper levels have progressively more; sstables inside a guard may
overlap while guards never do.

Run with:  python examples/flsm_layout.py
"""

import dataclasses

import repro
from repro.engines.options import StoreOptions


def main() -> None:
    env = repro.Environment()
    # Small memtable + dense guards so the printed tree is interesting.
    options = dataclasses.replace(
        StoreOptions.pebblesdb(),
        memtable_bytes=8 * 1024,
        level1_max_bytes=32 * 1024,
        top_level_bits=7,
        bit_decrement=1,
    )
    db = repro.open_store("pebblesdb", env.storage, options=options)

    for i in range(4000):
        key = b"%06d" % (i * 4241 % 1000000)
        db.put(key, b"value-%06d" % i)
    db.compact_all()

    print("FLSM layout after 4000 inserts (cf. paper Figure 3.1)")
    print("=" * 60)
    print(db.layout())
    print()
    print("guards per level      :", db.guard_counts())
    print("empty guards per level:", db.empty_guard_counts())
    print("level sizes (bytes)   :", db.level_sizes())

    # The skip-list property: every guard of level i guards level i+1 too.
    for level in range(1, db.options.num_levels - 1):
        keys = set(db._guarded[level].guard_keys)
        deeper = set(db._guarded[level + 1].guard_keys)
        missing = keys - deeper
        print(
            f"level {level}: {len(keys)} guards, "
            f"all present deeper: {not missing}"
        )
    db.close()


if __name__ == "__main__":
    main()

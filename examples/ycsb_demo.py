#!/usr/bin/env python3
"""Run the YCSB core workloads (Table 5.3) against two engines.

Run with:  python examples/ycsb_demo.py
"""

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from repro.workloads import YCSB_WORKLOADS

RECORDS = 4000
OPS = 1000


def main() -> None:
    results = {}
    for engine in ("pebblesdb", "hyperleveldb"):
        run = fresh_run(
            engine,
            standard_config(num_keys=RECORDS, value_size=1024, threads=4),
        )
        ycsb = run.ycsb()
        row = {"Load A": ycsb.load().kops}
        for name in "ABCDEF":
            row[name] = ycsb.run(YCSB_WORKLOADS[name], OPS).kops
        row["IO MB"] = run.db.stats().device_bytes_written / 1e6
        results[engine] = row
        run.db.close()

    phases = ["Load A", "A", "B", "C", "D", "E", "F", "IO MB"]
    table = Table("YCSB (KOps/s, simulated)", ["engine"] + phases)
    for engine, row in results.items():
        table.add_row(engine, *[f"{row[ph]:.1f}" for ph in phases])
    table.print()

    for name, wl in sorted(YCSB_WORKLOADS.items()):
        print(f"  Workload {name}: {wl.description}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section 4.3.1: crash recovery, including guard metadata.

Loads a store with synchronous WAL, pulls the (simulated) power cord,
reopens, and verifies that every acknowledged write and every committed
guard came back.

Run with:  python examples/crash_recovery_demo.py
"""

import dataclasses
import random

import repro
from repro.engines.options import StoreOptions


def main() -> None:
    env = repro.Environment()
    options = dataclasses.replace(StoreOptions.pebblesdb(), sync_writes=True)
    db = repro.open_store("pebblesdb", env.storage, options=options, prefix="db/")

    rng = random.Random(7)
    model = {}
    for i in range(8000):
        key = b"user%09d" % rng.randrange(10**8)
        value = b"v%06d" % i
        db.put(key, value)
        model[key] = value
    guards_before = db.guard_counts()
    files_before = len(db.sstable_file_numbers())
    print(f"loaded {len(model)} unique keys; guards per level: {guards_before}")

    print("simulating power failure (unsynced data is discarded)...")
    env.storage.crash()

    db2 = repro.open_store("pebblesdb", env.storage, options=options, prefix="db/")
    missing = sum(1 for k, v in model.items() if db2.get(k) != v)
    print(f"recovered store: {len(model) - missing}/{len(model)} keys intact")
    print(f"guards per level after recovery: {db2.guard_counts()}")
    print(f"sstables before/after: {files_before}/{len(db2.sstable_file_numbers())}")
    db2.check_invariants()
    print("internal invariants hold after recovery")

    assert missing == 0, "synchronous WAL must lose nothing"
    assert db2.guard_counts() == guards_before

    # The recovered store keeps working.
    db2.put(b"post-crash", b"alive")
    assert db2.get(b"post-crash") == b"alive"
    print("post-recovery writes work; done.")
    db2.close()


if __name__ == "__main__":
    main()

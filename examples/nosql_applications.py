#!/usr/bin/env python3
"""Section 5.4: PebblesDB as the storage engine of NoSQL applications.

Builds a HyperDex-style searchable space and a MongoDB-style collection
on top of PebblesDB, exercises documents, secondary-attribute search, and
shows the read-before-write behaviour that dilutes the engine's gains.

Run with:  python examples/nosql_applications.py
"""

import repro
from repro.apps import HyperDexStore, MongoStore


def hyperdex_demo() -> None:
    print("HyperDex-style searchable store on PebblesDB")
    print("-" * 48)
    env = repro.Environment()
    kv = repro.open_store("pebblesdb", env.storage)
    hd = HyperDexStore(kv)
    hd.add_space("employees", searchable_attributes=["team", "city"])

    people = [
        (b"alice", {"team": "storage", "city": "austin", "level": 5}),
        (b"bob", {"team": "storage", "city": "shanghai", "level": 4}),
        (b"carol", {"team": "network", "city": "austin", "level": 6}),
    ]
    for key, doc in people:
        hd.put("employees", key, doc)

    print("storage team :", hd.search("employees", "team", "storage"))
    print("in austin    :", hd.search("employees", "city", "austin"))

    hd.put("employees", b"bob", {"team": "network", "city": "shanghai", "level": 5})
    print("after bob moves, storage team:", hd.search("employees", "team", "storage"))

    t_rbw = env.now
    for i in range(500):
        hd.put("employees", b"bulk%04d" % i, {"team": "bulk", "city": "x"})
    t_rbw = env.now - t_rbw
    print(f"500 inserts with read-before-write: {t_rbw * 1e3:.1f} sim-ms")
    kv.close()


def mongo_demo() -> None:
    print()
    print("MongoDB-style document store on PebblesDB")
    print("-" * 48)
    env = repro.Environment()
    kv = repro.open_store("pebblesdb", env.storage)
    mongo = MongoStore(kv)
    posts = mongo.collection("posts")
    posts.create_index("author")

    ids = [
        posts.insert_one({"author": "alice", "title": "FLSM explained", "votes": 10}),
        posts.insert_one({"author": "bob", "title": "Guards in depth", "votes": 7}),
        posts.insert_one({"author": "alice", "title": "Write stalls", "votes": 3}),
    ]
    print("alice's posts:", [d["title"] for d in posts.find_by("author", "alice")])

    posts.update_one(ids[2], {"votes": 11})
    print("updated votes:", posts.find_one(ids[2])["votes"])

    posts.delete_one(ids[1])
    print("remaining    :", [d["title"] for _, d in posts.scan()])
    print(f"engine write amplification so far: {kv.stats().write_amplification:.2f}x")
    kv.close()


if __name__ == "__main__":
    hyperdex_demo()
    mongo_demo()

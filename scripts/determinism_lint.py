#!/usr/bin/env python
"""Determinism lint: no wall-clock or ambient randomness in engine code.

Everything under ``src/repro`` must run on the simulated clock and on
explicitly seeded ``random.Random`` instances — that is what makes
same-seed runs byte-identical, traces/dumps reproducible, and the
differential tests meaningful.  This lint fails CI when a module calls:

* ``time.time()`` or ``time.perf_counter()`` (or a bare
  ``perf_counter()`` imported from :mod:`time`),
* any **module-level** :mod:`random` function (``random.random()``,
  ``random.randint()``, ...) — seeding the *shared* global generator
  would still leak cross-test state, so only ``random.Random`` /
  ``random.SystemRandom`` instantiations are allowed.

Exempt: ``src/repro/sim/`` (the simulation substrate itself) and
``src/repro/tools/`` (operator CLIs that legitimately sleep/refresh on
the wall clock).  ``time.sleep``/``time.monotonic`` stay allowed
everywhere: the process serving mode schedules real OS processes with
them, which is outside the simulated timeline by design.

Usage: ``python scripts/determinism_lint.py [root]`` — exits 1 and lists
offending call sites when any are found.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Tuple

#: Directories under src/repro that may touch the wall clock / entropy.
EXEMPT_DIRS = ("sim", "tools")

#: random.<attr> calls that construct an explicitly seeded generator.
ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom", "getstate", "setstate"}

BANNED_TIME_ATTRS = {"time", "perf_counter", "perf_counter_ns"}


def _violations_in(path: str, source: str) -> List[Tuple[int, str]]:
    tree = ast.parse(source, filename=path)
    found: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if module == "time" and attr in BANNED_TIME_ATTRS:
                found.append((node.lineno, f"time.{attr}()"))
            elif module == "random" and attr not in ALLOWED_RANDOM_ATTRS:
                found.append((node.lineno, f"random.{attr}()"))
        elif isinstance(func, ast.Name) and func.id in (
            "perf_counter",
            "perf_counter_ns",
        ):
            found.append((node.lineno, f"{func.id}()"))
    return found


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else "src/repro"
    failures: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        top = rel.split(os.sep, 1)[0]
        if top in EXEMPT_DIRS:
            dirnames[:] = []
            continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            for lineno, what in _violations_in(path, source):
                failures.append(f"{path}:{lineno}: {what}")
    if failures:
        print("determinism lint: wall-clock / ambient randomness in engine code:")
        for failure in failures:
            print(f"  {failure}")
        print(
            f"{len(failures)} violation(s); use the simulated clock "
            "(env.clock.now) or a seeded random.Random instead."
        )
        return 1
    print(f"determinism lint: OK ({root}, exempt: {', '.join(EXEMPT_DIRS)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""Fault-sweep acceptance benchmark: inject a fault at the k-th storage
operation for a sweep of k and verify the store's contract every time.

For each fault configuration (transient/persistent x sstable/WAL/MANIFEST,
plus torn WAL appends) and each k in the sweep, the store must:

1. **never serve wrong data** — every read during and after the fault
   either raises or returns exactly the acknowledged value;
2. **recover or degrade** — it either absorbs the fault (retries) or
   enters degraded read-only mode with the cause surfaced through the
   ``repro.background-error`` property;
3. **resume** — once the fault plan is detached, ``resume()`` restores
   full write service and every acknowledged write is still present;
4. **stay crash-consistent** — a clean crash after the episode recovers
   exactly the acknowledged writes (the workload uses ``sync_writes``);
5. **stay deterministic** — re-running one configuration yields the
   identical outcome, fault count, and simulated clock.

Results land in ``BENCH_faults.json`` at the repo root.  ``--smoke``
shrinks the sweep for CI; any contract violation exits non-zero.

Run: ``PYTHONPATH=src python benchmarks/bench_faults.py [--smoke]``
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import repro
from repro.engines.options import StoreOptions
from repro.errors import ReproError
from repro.sim.faults import FaultInjector, FaultPlan

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Fault configurations swept: (label, op, file pattern, kind, torn).
CONFIGS = [
    ("transient-sstable-append", "append", "db/*.sst", "transient", None),
    ("persistent-sstable-append", "append", "db/*.sst", "persistent", None),
    ("transient-wal-sync", "sync", "db/*.log", "transient", None),
    ("torn-wal-append", "append", "db/*.log", "transient", 0.5),
    ("persistent-manifest-append", "append", "db/MANIFEST-*", "persistent", None),
    ("transient-any-read", "read", "db/*", "transient", None),
]


def _options() -> StoreOptions:
    base = StoreOptions.for_preset("pebblesdb")
    return dataclasses.replace(
        base,
        memtable_bytes=4 * 1024,
        level1_max_bytes=16 * 1024,
        target_file_bytes=8 * 1024,
        sync_writes=True,
    )


def _open(env):
    return repro.open_store("pebblesdb", env.storage, options=_options(), prefix="db/")


class ContractViolation(AssertionError):
    pass


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ContractViolation(message)


def _run_episode(config, k: int, num_ops: int) -> Dict[str, object]:
    """One fault episode; returns its outcome record (raises on violation)."""
    label, op, pattern, kind, torn = config
    env = repro.Environment(cache_bytes=1 << 20)
    db = _open(env)
    plan = FaultPlan.fail_nth(
        k, op=op, name_pattern=pattern, kind=kind, torn_fraction=torn
    )
    env.storage.set_fault_injector(FaultInjector(plan))

    model: Dict[bytes, bytes] = {}
    write_errors = 0
    for i in range(num_ops):
        key, value = b"key%04d" % (i % 300), b"val%06d" % i
        try:
            db.put(key, value)
            model[key] = value
        except ReproError:
            write_errors += 1
    try:
        db.flush_memtable()
        db.wait_idle()
    except ReproError:
        pass

    # Contract 2: healthy, or degraded with the cause surfaced.
    health = db.get_property("repro.health")
    if health == "degraded":
        _require(
            bool(db.get_property("repro.background-error")),
            f"{label} k={k}: degraded without a surfaced background error",
        )
    else:
        _require(health == "ok", f"{label} k={k}: unknown health {health!r}")

    # Contract 1: no read may ever return a wrong value.
    probe = list(model.items())[:: max(1, len(model) // 50)]
    for key, value in probe:
        try:
            got = db.get(key)
        except ReproError:
            continue
        _require(
            got == value,
            f"{label} k={k}: wrong data {key!r} -> {got!r} (want {value!r})",
        )

    # Contract 3: with the cause gone, resume restores write service.
    env.storage.set_fault_injector(None)
    resumed = db.resume()
    _require(resumed, f"{label} k={k}: resume() failed after plan detached")
    db.put(b"post-resume", b"ok")
    model[b"post-resume"] = b"ok"
    for key, value in probe:
        _require(
            db.get(key) == value,
            f"{label} k={k}: acknowledged write lost after resume ({key!r})",
        )
    stats = db.stats()

    # Contract 4: a clean crash recovers exactly the acknowledged state.
    env.storage.crash()
    db2 = _open(env)
    got = dict(db2.scan())
    _require(
        got == model,
        f"{label} k={k}: post-crash state diverged "
        f"({len(got)} keys vs {len(model)} acknowledged)",
    )
    db2.check_invariants()
    db2.close()

    fstats = env.storage.faults.stats if env.storage.faults else None
    return {
        "k": k,
        "write_errors": write_errors,
        "degraded": health == "degraded",
        "retries": stats.transient_fault_retries,
        "background_errors": stats.background_errors,
        "resumes": stats.resumes,
        "acknowledged": len(model),
        "sim_seconds": round(env.clock.now, 6),
    }


def _determinism_probe(num_ops: int) -> bool:
    """The same probabilistic plan twice -> identical everything."""

    def run():
        plan = FaultPlan.probabilistic(0.01, seed=23)
        env = repro.Environment(cache_bytes=1 << 20, faults=FaultInjector(plan))
        db = _open(env)
        outcomes = []
        for i in range(num_ops):
            try:
                db.put(b"k%05d" % i, b"v")
                outcomes.append(1)
            except ReproError:
                outcomes.append(0)
        stats = env.storage.faults.stats
        return (
            tuple(outcomes),
            stats.ops_seen,
            stats.faults_injected,
            round(env.clock.now, 9),
        )

    return run() == run()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced sweep for CI smoke runs"
    )
    parser.add_argument("--num-ops", type=int, default=None)
    args = parser.parse_args(argv)

    num_ops = args.num_ops or (250 if args.smoke else 700)
    ks = [0, 1, 3, 10] if args.smoke else [0, 1, 2, 3, 5, 10, 25, 60, 140]

    t0 = time.perf_counter()
    sweep: List[Dict[str, object]] = []
    episodes = degraded = 0
    try:
        for config in CONFIGS:
            for k in ks:
                record = _run_episode(config, k, num_ops)
                record["config"] = config[0]
                sweep.append(record)
                episodes += 1
                degraded += int(bool(record["degraded"]))
            print(
                f"{config[0]:<28} swept k={ks}: "
                f"{sum(1 for r in sweep if r['config'] == config[0] and r['degraded'])}"
                f"/{len(ks)} degraded, all recovered"
            )
        deterministic = _determinism_probe(num_ops)
        if not deterministic:
            raise ContractViolation("fault storm was not deterministic")
    except ContractViolation as exc:
        print(f"FAULT SWEEP FAILED: {exc}", file=sys.stderr)
        return 1

    wall = time.perf_counter() - t0
    payload = {
        "benchmark": "fault_sweep",
        "smoke": args.smoke,
        "num_ops": num_ops,
        "sweep_points": ks,
        "episodes": episodes,
        "episodes_degraded": degraded,
        "episodes_recovered": episodes,  # every episode passed all contracts
        "deterministic": deterministic,
        "wall_seconds": round(wall, 3),
        "sweep": sweep,
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("-" * 70)
    print(
        f"{episodes} episodes: every fault point recovered or degraded "
        f"gracefully ({degraded} degraded), zero wrong reads, "
        f"deterministic={deterministic}"
    )
    print(f"results -> {_JSON_PATH.name} ({wall:.1f}s wall)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

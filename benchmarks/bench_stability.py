"""Tail-latency stability benchmark: graduated backpressure vs the cliff.

Runs the same seeded fillrandom workload twice — once with the
historical binary slowdown/stop gates (``backpressure="cliff"``), once
with the graduated debt-proportional controller
(``backpressure="graduated"``) — and slices per-write simulated latency
into fixed sim-time windows (:class:`repro.obs.WindowedHistogram`).
Means hide stall cliffs; the per-window p99/p999 series is where they
show up, as a spike with a measurable height (the worst window's p99)
and width (how many consecutive windows stay bad).

Contract (any violation exits non-zero; CI runs ``--contract-only``):

1. **stability** — graduated mode's worst-window p99 write latency must
   be strictly lower than cliff mode's on the same workload;
2. **max stall** — no single graduated-mode write may stall longer than
   ``MAX_STALL_SECONDS`` of simulated time (the SLO regression gate);
3. **no lost writes** — the admission-control phase (a loopback server
   with a tiny write-debt cap, hammered by concurrent writers) must
   shed load via OVERLOADED yet lose zero acknowledged writes
   (``ops_lost == 0``), with every retried write applied exactly once;
4. **determinism** — repeating the graduated run reproduces identical
   simulated timing and stall totals.

Results land in ``BENCH_stability.json`` (override with
``--stability-out``).

Run: ``PYTHONPATH=src python benchmarks/bench_stability.py [--contract-only]``
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import repro
from repro.engines.options import StoreOptions
from repro.obs import SUMMARY_PERCENTILES, WindowedHistogram

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_stability.json"

SEED = 7
VALUE_SIZE = 512
KEY_SPACE = 20000
#: Sim seconds per stability window.  Narrow enough that a stalled
#: write dominates its own window's p99 instead of hiding below the
#: 1% mark of a wide one — the window is the spike detector.
WINDOW_SECONDS = 0.002
#: Contract: the longest single graduated-mode write stall allowed.
MAX_STALL_SECONDS = 0.010
#: A window is part of a stall spike when its p99 exceeds this multiple
#: of the run's median window p99.
SPIKE_FACTOR = 5.0


def _options(mode: str) -> StoreOptions:
    base = StoreOptions.for_preset("pebblesdb")
    return dataclasses.replace(
        base,
        memtable_bytes=16 * 1024,
        level1_max_bytes=64 * 1024,
        target_file_bytes=32 * 1024,
        background_workers=2,
        max_immutable_memtables=2,
        level0_compaction_trigger=4,
        level0_slowdown_trigger=6,
        level0_stop_trigger=10,
        backpressure=mode,
        # A deliberately light cliff brake: the fixed delay barely slows
        # the writer, so Level 0 climbs to the stop trigger and the
        # cliff appears.  The graduated ramp shares the same floor but
        # rises to 1 ms at high debt, holding L0 below the stop.
        slowdown_delay=0.05e-3,
        slowdown_delay_max=1.0e-3,
        top_level_bits=6,
        bit_decrement=1,
    )


def _spike(series: List[float]) -> Dict[str, float]:
    """Height and width of the worst stall spike in a p99 series."""
    if not series:
        return {"height": 0.0, "width_windows": 0, "threshold": 0.0}
    baseline = sorted(series)[len(series) // 2]
    threshold = baseline * SPIKE_FACTOR
    height = max(series)
    width = best = 0
    for value in series:
        if value > threshold:
            width += 1
            best = max(best, width)
        else:
            width = 0
    return {
        "height": round(height, 6),
        "width_windows": best,
        "threshold": round(threshold, 6),
    }


def _fill_random(mode: str, num_ops: int) -> Dict[str, object]:
    env = repro.Environment(cache_bytes=1 << 20)
    db = repro.open_store(
        "pebblesdb", env.storage, options=_options(mode), prefix="db/"
    )
    rng = random.Random(SEED)
    value = b"v" * VALUE_SIZE
    windows = WindowedHistogram(WINDOW_SECONDS)
    clock = env.clock
    max_latency = 0.0
    wall0 = time.perf_counter()
    for _ in range(num_ops):
        key = b"key%06d" % rng.randrange(KEY_SPACE)
        before = clock.now
        db.put(key, value)
        latency = clock.now - before
        windows.record(before, latency)
        if latency > max_latency:
            max_latency = latency
    db.wait_idle()
    wall = time.perf_counter() - wall0
    db.check_invariants()
    stats = db.stats()
    causes = {}
    for metric in db.registry:
        if metric.name == "stall.cause_seconds":
            causes[dict(metric.labels)["cause"]] = round(metric.value, 6)
    p99_series = [value for _, value in windows.percentile_series(0.99)]
    record = {
        "mode": mode,
        "sim_seconds": round(clock.now, 6),
        "kops_per_sec": round(num_ops / clock.now / 1000.0, 3) if clock.now else 0.0,
        "stall_seconds": round(stats.stall_seconds, 6),
        "stall_causes": causes,
        "max_write_latency": round(max_latency, 6),
        "worst_window_p99": round(windows.worst(0.99), 6),
        "worst_window_p999": round(windows.worst(0.999), 6),
        "worst_window": windows.worst_window(0.99),
        "windows": len(windows),
        "window_seconds": WINDOW_SECONDS,
        "spike": _spike(p99_series),
        "percentile_names": [name for name, _ in SUMMARY_PERCENTILES],
        "window_summary": [
            {key: (round(val, 9) if isinstance(val, float) else val)
             for key, val in row.items()}
            for row in windows.summary()
        ],
        "wall_seconds": round(wall, 3),
    }
    db.close()
    return record


async def _overload_run(num_clients: int, writes_per_client: int) -> Dict[str, object]:
    from repro.net import ClusterClient, KVServer, ServerConfig

    server = KVServer(
        ServerConfig(
            shards=2,
            uniform_keys=KEY_SPACE,
            seed=SEED,
            max_write_debt=2,
            overload_retry_after=0.001,
        )
    )
    clients = [await ClusterClient.open_loopback(server) for _ in range(num_clients)]
    acked: List[bytes] = []

    async def hammer(index: int, client) -> None:
        for i in range(writes_per_client):
            key = f"user{index:03d}{i:09d}".encode()
            if await client.put(key, b"v%d.%d" % (index, i)):
                acked.append(key)

    await asyncio.gather(
        *(hammer(i, client) for i, client in enumerate(clients))
    )
    reader = clients[0]
    lost = 0
    for key in acked:
        if await reader.get(key) is None:
            lost += 1
    rejects = sum(shard.stats.overload_rejects for shard in server.shards)
    duplicates = sum(shard.stats.duplicate_writes for shard in server.shards)
    backoffs = sum(client.stats.overload_backoffs for client in clients)
    for client in clients:
        await client.aclose()
    await server.aclose()
    return {
        "clients": num_clients,
        "writes_per_client": writes_per_client,
        "ops_acked": len(acked),
        "ops_lost": lost,
        "overload_rejects": rejects,
        "client_overload_backoffs": backoffs,
        "duplicate_writes": duplicates,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--contract-only",
        action="store_true",
        help="reduced workload; enforce the contract and exit (CI gate)",
    )
    parser.add_argument("--num-ops", type=int, default=None)
    parser.add_argument(
        "--stability-out",
        type=Path,
        default=_JSON_PATH,
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)
    num_ops = args.num_ops or (8000 if args.contract_only else 16000)

    t0 = time.perf_counter()
    cliff = _fill_random("cliff", num_ops)
    graduated = _fill_random("graduated", num_ops)
    for record in (cliff, graduated):
        print(
            f"mode={record['mode']:<9} {record['kops_per_sec']:>8.1f} KOps/s  "
            f"stall={record['stall_seconds']:.4f}s  "
            f"worst-window p99={record['worst_window_p99'] * 1e3:.3f}ms "
            f"p999={record['worst_window_p999'] * 1e3:.3f}ms  "
            f"spike width={record['spike']['width_windows']}"
        )
    repeat = _fill_random("graduated", num_ops)
    deterministic = all(
        repeat[key] == graduated[key]
        for key in (
            "sim_seconds",
            "stall_seconds",
            "stall_causes",
            "worst_window_p99",
            "worst_window_p999",
            "max_write_latency",
        )
    )
    overload = asyncio.run(
        _overload_run(4, 100 if args.contract_only else 250)
    )
    print(
        f"overload phase: acked={overload['ops_acked']} "
        f"lost={overload['ops_lost']} rejects={overload['overload_rejects']} "
        f"honored-backoffs={overload['client_overload_backoffs']}"
    )

    failures = []
    if graduated["worst_window_p99"] >= cliff["worst_window_p99"]:
        failures.append(
            f"graduated worst-window p99 {graduated['worst_window_p99']:.6f}s "
            f"not below cliff {cliff['worst_window_p99']:.6f}s"
        )
    if graduated["max_write_latency"] > MAX_STALL_SECONDS:
        failures.append(
            f"max graduated write stall {graduated['max_write_latency']:.6f}s "
            f"exceeds the {MAX_STALL_SECONDS:.3f}s contract"
        )
    if overload["ops_lost"] != 0:
        failures.append(f"{overload['ops_lost']} acknowledged writes lost")
    if overload["overload_rejects"] == 0:
        failures.append("overload phase never triggered admission control")
    if not deterministic:
        failures.append("repeated graduated run diverged")

    wall = time.perf_counter() - t0
    payload = {
        "benchmark": "stability",
        "contract_only": args.contract_only,
        "num_ops": num_ops,
        "value_size": VALUE_SIZE,
        "key_space": KEY_SPACE,
        "window_seconds": WINDOW_SECONDS,
        "max_stall_seconds_contract": MAX_STALL_SECONDS,
        "max_stall_seconds": graduated["max_write_latency"],
        "worst_window_p99_cliff": cliff["worst_window_p99"],
        "worst_window_p99_graduated": graduated["worst_window_p99"],
        "p99_improvement": (
            round(cliff["worst_window_p99"] / graduated["worst_window_p99"], 3)
            if graduated["worst_window_p99"]
            else 0.0
        ),
        "ops_lost": overload["ops_lost"],
        "deterministic": deterministic,
        "passed": not failures,
        "failures": failures,
        "wall_seconds": round(wall, 3),
        "modes": [cliff, graduated],
        "overload": overload,
    }
    args.stability_out.write_text(json.dumps(payload, indent=2) + "\n")
    print("-" * 70)
    print(
        f"worst-window p99: cliff {cliff['worst_window_p99'] * 1e3:.3f}ms -> "
        f"graduated {graduated['worst_window_p99'] * 1e3:.3f}ms "
        f"({payload['p99_improvement']}x), "
        f"max stall {payload['max_stall_seconds'] * 1e3:.3f}ms "
        f"(contract {MAX_STALL_SECONDS * 1e3:.0f}ms), ops_lost={overload['ops_lost']}"
    )
    print(f"results -> {args.stability_out.name} ({wall:.1f}s wall)")
    if failures:
        for failure in failures:
            print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Pytest wiring for the benchmark suite (helpers live in _helpers.py)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

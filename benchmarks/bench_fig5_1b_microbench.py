"""Figure 5.1(b): single-threaded db_bench micro-benchmarks.

Paper (50M writes / 10M reads / 10M seeks, 1 KB values): PebblesDB gets
~2.7x HyperLevelDB on random writes, ~3x *worse* on sequential writes,
slightly better reads, ~30% worse seeks on a compacted store, and the
best delete throughput.
"""

from __future__ import annotations

from repro.harness import fresh_run, standard_config
from _helpers import KV_STORES, print_paper_comparison, run_once
from repro.analysis import Table

NUM_KEYS = 15000
VALUE_SIZE = 1024
READS = 4000
SEEKS = 2000


def test_db_bench_micro(benchmark):
    def experiment():
        rows = {}
        for engine in KV_STORES:
            cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=3)
            seq_run = fresh_run(engine, cfg)
            fillseq = seq_run.bench.fill_seq()
            seq_run.db.wait_idle()
            fillseq_io = seq_run.db.stats().device_bytes_written / 1e6
            run = fresh_run(engine, cfg)
            bench = run.bench
            fillrandom = bench.fill_random()
            run.db.compact_all()  # paper seeks run on a compacted store
            reads = bench.read_random(READS)
            seeks = bench.seek_random(SEEKS)
            deletes = bench.delete_random(NUM_KEYS // 2)
            rows[engine] = {
                "fillseq": fillseq.kops,
                "fillseq_io_mb": fillseq_io,
                "fillrandom": fillrandom.kops,
                "readrandom": reads.kops,
                "seekrandom": seeks.kops,
                "deleterandom": deletes.kops,
            }
        return rows

    rows = run_once(benchmark, lambda: {"rows": experiment()})["rows"]
    table = Table(
        "Figure 5.1(b) — db_bench micro-benchmarks (KOps/s; fillseq IO in MB)",
        [
            "store",
            "fillseq",
            "fillseq-IO",
            "fillrandom",
            "readrandom",
            "seekrandom",
            "deleterandom",
        ],
    )
    for engine in KV_STORES:
        r = rows[engine]
        table.add_row(
            engine,
            f"{r['fillseq']:.1f}",
            f"{r['fillseq_io_mb']:.1f}",
            f"{r['fillrandom']:.1f}",
            f"{r['readrandom']:.1f}",
            f"{r['seekrandom']:.1f}",
            f"{r['deleterandom']:.1f}",
        )
    table.print()

    p, h = rows["pebblesdb"], rows["hyperleveldb"]
    print_paper_comparison(
        "Figure 5.1(b)",
        [
            f"random writes P/H: paper ~2.7x | measured {p['fillrandom'] / h['fillrandom']:.2f}x",
            "sequential fill: the paper's 3x slowdown comes from FLSM "
            "partitioning sstables that LSM moves by metadata alone "
            "(section 4.5); at this scale the device absorbs the extra IO "
            "so throughput ties, but the IO asymmetry reproduces:",
            f"  fillseq IO P/H: paper >1x | measured "
            f"{p['fillseq_io_mb'] / h['fillseq_io_mb']:.2f}x",
            f"reads P/H: paper >=1x | measured {p['readrandom'] / h['readrandom']:.2f}x",
            f"seeks P/H (compacted): paper ~0.7x | measured {p['seekrandom'] / h['seekrandom']:.2f}x",
            f"deletes P/H: paper >1x | measured {p['deleterandom'] / h['deleterandom']:.2f}x",
        ],
    )
    assert p["fillrandom"] > h["fillrandom"], "PebblesDB must win random writes"
    assert p["fillseq_io_mb"] > 1.3 * h["fillseq_io_mb"], (
        "FLSM must pay extra IO on sequential fill (no trivial moves)"
    )
    assert p["seekrandom"] < h["seekrandom"], "FLSM pays a seek penalty when compacted"

"""Figure 5.1(d): small dataset that fits entirely in the page cache.

Paper (1M x 1KB, 1 GB dataset, 16 GB RAM): PebblesDB still wins writes;
reads pay ~7% and seeks ~47% CPU overhead because no IO hides the extra
guard work; with ``max_sstables_per_guard=1`` (PebblesDB-1) reads beat
HyperLevelDB and the seek overhead drops to ~13%.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import print_paper_comparison, run_once

NUM_KEYS = 4000
VALUE_SIZE = 1024


def _run(engine, overrides=None):
    cfg = standard_config(
        num_keys=NUM_KEYS,
        value_size=VALUE_SIZE,
        cache_bytes=64 * 1024 * 1024,  # dataset fully cached
        seed=7,
    )
    if overrides:
        cfg.option_overrides = {engine: overrides}
    run = fresh_run(engine, cfg)
    bench = run.bench
    writes = bench.fill_random()
    run.db.compact_all()
    reads = bench.read_random(4000)
    seeks = bench.seek_random(2000)
    return {"write": writes.kops, "read": reads.kops, "seek": seeks.kops}


def test_cached_dataset(benchmark):
    def experiment():
        return {
            "hyperleveldb": _run("hyperleveldb"),
            "pebblesdb": _run("pebblesdb"),
            "pebblesdb-1": _run("pebblesdb", {"max_sstables_per_guard": 1}),
        }

    rows = run_once(benchmark, lambda: {"rows": experiment()})["rows"]
    table = Table(
        "Figure 5.1(d) — fully cached dataset (KOps/s)",
        ["store", "writes", "reads", "seeks"],
    )
    for name, r in rows.items():
        table.add_row(name, f"{r['write']:.1f}", f"{r['read']:.1f}", f"{r['seek']:.1f}")
    table.print()

    h, p, p1 = rows["hyperleveldb"], rows["pebblesdb"], rows["pebblesdb-1"]
    print_paper_comparison(
        "Figure 5.1(d)",
        [
            f"writes P/H: paper >1x | measured {p['write'] / h['write']:.2f}x",
            f"reads P/H: paper ~0.93x | measured {p['read'] / h['read']:.2f}x",
            f"seeks P/H: paper ~0.53x | measured {p['seek'] / h['seek']:.2f}x",
            f"seeks P1/H: paper ~0.87x | measured {p1['seek'] / h['seek']:.2f}x",
        ],
    )
    assert p["write"] > h["write"]
    # PebblesDB-1 behaves like an LSM: its seeks must be at least on par
    # with default PebblesDB (both are pure-CPU on a cached dataset).
    assert p1["seek"] >= 0.9 * p["seek"], "PebblesDB-1 must close the seek gap"

"""Figure 1.1 / Figure 5.1(a): write IO and write amplification.

Paper: inserting 500M random key-value pairs (16 B keys, 128 B values,
45 GB), PebblesDB writes the least IO; LevelDB ~1.6x more, RocksDB and
HyperLevelDB ~2.5x more.  The B+tree baseline (KyotoCabinet, section 2.2)
is an order of magnitude worse.

Scaled: 40K keys here; exact byte accounting from the simulated device.
"""

from __future__ import annotations

import pytest

from repro.harness import fresh_run, standard_config
from _helpers import KV_STORES, print_paper_comparison, relative_table, run_once

NUM_KEYS = 40000
VALUE_SIZE = 128


def _insert_random(engine: str, num_keys: int):
    run = fresh_run(engine, standard_config(num_keys=num_keys, value_size=VALUE_SIZE))
    run.bench.fill_random()
    run.db.wait_idle()
    stats = run.db.stats()
    return stats.device_bytes_written, stats.write_amplification


@pytest.mark.parametrize("engine", KV_STORES + ["btree"])
def test_write_amplification(benchmark, engine):
    num_keys = NUM_KEYS if engine != "btree" else NUM_KEYS // 8

    def experiment():
        written, amp = _insert_random(engine, num_keys)
        return {
            "engine": engine,
            "keys": num_keys,
            "device_mb_written": written / 1e6,
            "write_amplification": amp,
        }

    result = run_once(benchmark, experiment)
    print(
        f"\n{engine}: {result['device_mb_written']:.1f} MB written, "
        f"amplification {result['write_amplification']:.2f}"
    )


def test_write_amplification_summary(benchmark):
    """All stores on one device budget — the full Figure 1.1 bar chart."""

    def experiment():
        amps = {}
        for engine in KV_STORES:
            _, amp = _insert_random(engine, NUM_KEYS)
            amps[engine] = amp
        _, amps["btree"] = _insert_random("btree", NUM_KEYS // 8)
        return amps

    amps = run_once(benchmark, experiment)
    relative_table(
        "Figure 1.1 — write amplification (random inserts)",
        "write amp",
        amps,
        baseline="pebblesdb",
    ).print()
    from repro.analysis.charts import hbar_chart

    print(
        hbar_chart(
            "Figure 1.1 (bars, lower is better)",
            amps,
            unit="x",
            baseline="pebblesdb",
        )
    )
    print_paper_comparison(
        "Figure 1.1",
        [
            f"PebblesDB lowest amp: paper yes | measured {min(amps, key=amps.get) == 'pebblesdb'}",
            f"RocksDB/PebblesDB: paper ~2.5x | measured {amps['rocksdb'] / amps['pebblesdb']:.2f}x",
            f"LevelDB/PebblesDB: paper ~1.6x | measured {amps['leveldb'] / amps['pebblesdb']:.2f}x",
            f"HyperLevelDB/PebblesDB: paper ~2.5x | measured {amps['hyperleveldb'] / amps['pebblesdb']:.2f}x",
            f"B+tree worst by far: paper yes (61x) | measured {amps['btree']:.1f}x",
        ],
    )
    assert amps["pebblesdb"] == min(amps.values())
    assert amps["btree"] == max(amps.values())

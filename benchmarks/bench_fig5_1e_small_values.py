"""Figure 5.1(e): small key-value pairs (16 B keys, 128 B values).

Paper (300M pairs): PebblesDB keeps its write-throughput advantage and
reaches read/seek parity with the other stores.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import KV_STORES, print_paper_comparison, run_once

NUM_KEYS = 30000
VALUE_SIZE = 128


def test_small_values(benchmark):
    def experiment():
        from repro.engines.options import StoreOptions

        rows = {}
        for engine in KV_STORES:
            cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=9)
            # Small values shrink the dataset 8x; scale the byte-sized
            # knobs with it so the dataset/level-size ratio (and thus the
            # compaction pressure) stays comparable to the 1 KB runs.
            scaled = StoreOptions.for_preset(engine).scaled(0.25)
            cfg.option_overrides = {
                engine: dict(
                    memtable_bytes=scaled.memtable_bytes,
                    level1_max_bytes=scaled.level1_max_bytes,
                    target_file_bytes=scaled.target_file_bytes,
                )
            }
            run = fresh_run(engine, cfg)
            bench = run.bench
            writes = bench.fill_random()
            reads = bench.read_random(5000)
            seeks = bench.seek_random(2500)
            rows[engine] = {
                "write": writes.kops,
                "read": reads.kops,
                "seek": seeks.kops,
            }
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Figure 5.1(e) — small values, 128 B (KOps/s)",
        ["store", "writes", "reads", "seeks"],
    )
    for engine in KV_STORES:
        r = rows[engine]
        table.add_row(engine, f"{r['write']:.1f}", f"{r['read']:.1f}", f"{r['seek']:.1f}")
    table.print()

    p, h = rows["pebblesdb"], rows["hyperleveldb"]
    print_paper_comparison(
        "Figure 5.1(e)",
        [
            f"writes P/H: paper >1x | measured {p['write'] / h['write']:.2f}x",
            f"reads P/H: paper ~1x | measured {p['read'] / h['read']:.2f}x",
            f"seeks P/H: paper ~1x (uncompacted) | measured {p['seek'] / h['seek']:.2f}x",
        ],
    )
    assert p["write"] > h["write"]
    assert p["read"] > 0.6 * h["read"], "reads should be near parity"

"""Figure 5.2: environmental factors — aged file system/store, low memory.

Paper 5.2(a): after file-system aging (fill/delete cycles to 89%
utilization) plus key-value-store aging (inserts/deletes/updates),
absolute numbers drop and PebblesDB's write advantage shrinks (~2x from
2.7x); reads stay ahead, seeks degrade to ~-40%.

Paper 5.2(b): with DRAM at 6% of the dataset, PebblesDB still wins
writes (+64%) and reads (+63%); seeks stay ~40% behind.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from repro.sim.aging import FilesystemAging
from _helpers import print_paper_comparison, run_once

NUM_KEYS = 10000
VALUE_SIZE = 1024
ENGINES = ("pebblesdb", "hyperleveldb")


def _micro(run, reads=2500, seeks=1200):
    bench = run.bench
    writes = bench.fill_random()
    r = bench.read_random(reads)
    s = bench.seek_random(seeks)
    return {"write": writes.kops, "read": r.kops, "seek": s.kops}


def _age_store(run):
    """The paper's store aging: inserts, deletes, updates in random order."""
    bench = run.bench
    bench.fill_random()
    bench.delete_random(NUM_KEYS // 3)
    bench.overwrite(NUM_KEYS // 3)


def test_aged_filesystem_and_store(benchmark):
    def experiment():
        rows = {}
        for engine in ENGINES:
            cfg = standard_config(
                num_keys=NUM_KEYS,
                value_size=VALUE_SIZE,
                seed=15,
                aging=FilesystemAging(fill_cycles=2, utilization=0.89),
            )
            run = fresh_run(engine, cfg)
            _age_store(run)
            rows[engine] = _micro(run)
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Figure 5.2(a) — aged file system + aged store (KOps/s)",
        ["store", "writes", "reads", "seeks"],
    )
    for engine, r in rows.items():
        table.add_row(engine, f"{r['write']:.1f}", f"{r['read']:.1f}", f"{r['seek']:.1f}")
    table.print()
    p, h = rows["pebblesdb"], rows["hyperleveldb"]
    print_paper_comparison(
        "Figure 5.2(a)",
        [
            f"writes P/H: paper ~2x (down from 2.7x) | measured {p['write'] / h['write']:.2f}x",
            f"reads P/H: paper ~1.08x | measured {p['read'] / h['read']:.2f}x",
            f"seeks P/H: paper ~0.6x | measured {p['seek'] / h['seek']:.2f}x",
        ],
    )
    assert p["write"] > h["write"]


def test_low_memory(benchmark):
    def experiment():
        rows = {}
        dataset = NUM_KEYS * (16 + VALUE_SIZE)
        for engine in ENGINES:
            cfg = standard_config(
                num_keys=NUM_KEYS,
                value_size=VALUE_SIZE,
                seed=16,
                cache_bytes=int(dataset * 0.06),  # DRAM = 6% of data
            )
            # Paper runs this with RocksDB-style Level-0 parameters.
            cfg.option_overrides = {
                eng: {"level0_slowdown_trigger": 20, "level0_stop_trigger": 24}
                for eng in ENGINES
            }
            run = fresh_run(engine, cfg)
            rows[engine] = _micro(run)
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Figure 5.2(b) — low memory, DRAM = 6% of dataset (KOps/s)",
        ["store", "writes", "reads", "seeks"],
    )
    for engine, r in rows.items():
        table.add_row(engine, f"{r['write']:.1f}", f"{r['read']:.1f}", f"{r['seek']:.1f}")
    table.print()
    p, h = rows["pebblesdb"], rows["hyperleveldb"]
    print_paper_comparison(
        "Figure 5.2(b)",
        [
            f"writes P/H: paper ~1.64x | measured {p['write'] / h['write']:.2f}x",
            f"reads P/H: paper ~1.63x | measured {p['read'] / h['read']:.2f}x",
            f"seeks P/H: paper ~0.6x | measured {p['seek'] / h['seek']:.2f}x",
        ],
    )
    assert p["write"] > h["write"]

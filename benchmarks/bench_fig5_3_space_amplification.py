"""Figure 5.3: space amplification.

Paper: 50M unique inserts — PebblesDB, RocksDB, LevelDB within 2% of
each other (~52 GB).  5M keys updated 10x each — PebblesDB 7.9 GB vs
RocksDB 7.1 GB (slight overhead from delayed merging of shadowed
versions).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import print_paper_comparison, run_once

ENGINES = ("pebblesdb", "hyperleveldb", "leveldb", "rocksdb")
VALUE_SIZE = 512


def _live_bytes(run):
    return run.env.storage.total_live_bytes(f"{run.engine}/")


def test_space_amplification(benchmark):
    def experiment():
        unique = {}
        duplicates = {}
        logical_unique = 20000 * (16 + VALUE_SIZE)
        logical_dup = 2000 * (16 + VALUE_SIZE)
        for engine in ENGINES:
            run = fresh_run(
                engine, standard_config(num_keys=20000, value_size=VALUE_SIZE, seed=17)
            )
            run.bench.fill_random()
            run.db.wait_idle()
            unique[engine] = _live_bytes(run) / logical_unique

            run = fresh_run(
                engine, standard_config(num_keys=2000, value_size=VALUE_SIZE, seed=18)
            )
            run.bench.fill_random()
            for _ in range(10):
                run.bench.overwrite()
            run.db.wait_idle()
            duplicates[engine] = _live_bytes(run) / logical_dup
        return {"unique": unique, "duplicates": duplicates}

    result = run_once(benchmark, lambda: {"r": experiment()})["r"]
    table = Table(
        "Figure 5.3 — space amplification (live bytes / logical bytes)",
        ["store", "unique inserts", "10x duplicate keys"],
    )
    for engine in ENGINES:
        table.add_row(
            engine, f"{result['unique'][engine]:.2f}", f"{result['duplicates'][engine]:.2f}"
        )
    table.print()

    uniq, dup = result["unique"], result["duplicates"]
    spread = max(uniq.values()) - min(uniq.values())
    print_paper_comparison(
        "Figure 5.3",
        [
            f"unique-insert space within a few % across stores: paper yes | "
            f"measured spread {spread:.2f}",
            f"duplicate-heavy P vs RocksDB: paper ~1.11x | measured "
            f"{dup['pebblesdb'] / dup['rocksdb']:.2f}x",
        ],
    )
    # No store should blow up space: paper's point is parity.
    assert max(uniq.values()) < 2.0
    assert dup["pebblesdb"] < 3.0 * dup["rocksdb"]

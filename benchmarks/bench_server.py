"""Sharded serving-layer acceptance benchmark: shard-count sweep.

Runs the same seeded fill + readrandom workload through the
:mod:`repro.net` stack (loopback transport, fixed client concurrency)
against serving processes with 1, 2, and 4 range-partitioned PebblesDB
shards, and verifies the acceptance contract:

1. **read scaling** — aggregate simulated readrandom throughput at 4
   shards must be at least 1.5x the single-shard run at the same client
   concurrency.  Each shard owns its own simulated device and clock, so
   the aggregate rate is ``ops / max-over-shards(clock delta)`` — the
   slowest shard paces the cluster, exactly how a range-partitioned
   deployment behaves;
2. **correctness** — every read returns the value written, no client
   retries were needed on the clean loopback transport, and the server
   counted zero protocol errors;
3. **group commit** — concurrent writes must actually coalesce: the
   4-shard run's group commits must number strictly fewer than its
   writes;
4. **determinism** — repeating the 4-shard run yields byte-identical
   per-shard storage digests and identical per-shard simulated clocks.

Results land in ``BENCH_server.json`` at the repo root.  ``--smoke``
shrinks the workload for CI; any contract violation exits non-zero.

Run: ``PYTHONPATH=src python benchmarks/bench_server.py [--smoke]``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.net.client import ClusterClient
from repro.net.server import KVServer, ServerConfig
from repro.workloads.distributions import KeyCodec, value_bytes

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

SHARD_SWEEP = (1, 2, 4)
VALUE_SIZE = 256
CONCURRENCY = 16
SEED = 11


async def _bounded(coros, concurrency: int):
    semaphore = asyncio.Semaphore(concurrency)

    async def run(coro):
        async with semaphore:
            return await coro

    return await asyncio.gather(*(run(c) for c in coros))


async def _run_cluster(shards: int, num_keys: int, reads: int) -> Dict[str, object]:
    server = KVServer(
        ServerConfig(
            engine="pebblesdb",
            shards=shards,
            uniform_keys=num_keys,
            seed=SEED,
            cache_bytes=1 << 20,
        )
    )
    client = await ClusterClient.open_loopback(server, pool_size=2)
    codec = KeyCodec(16)
    rng = random.Random(SEED)
    wall0 = time.perf_counter()

    fill_before = server.shard_sim_times()
    await _bounded(
        (
            client.put(codec.encode(i), value_bytes(i, VALUE_SIZE))
            for i in range(num_keys)
        ),
        CONCURRENCY,
    )
    await server.wait_idle()
    fill_delta = max(
        after - before
        for after, before in zip(server.shard_sim_times(), fill_before)
    )

    read_indices = [rng.randrange(num_keys) for _ in range(reads)]
    read_before = server.shard_sim_times()
    values = await _bounded(
        (client.get(codec.encode(i)) for i in read_indices), CONCURRENCY
    )
    read_delta = max(
        after - before
        for after, before in zip(server.shard_sim_times(), read_before)
    )
    wrong = sum(
        1
        for index, value in zip(read_indices, values)
        if value != value_bytes(index, VALUE_SIZE)
    )

    totals = server.total_ops()
    record = {
        "shards": shards,
        "fill_ops": num_keys,
        "fill_sim_seconds": round(fill_delta, 6),
        "fill_kops_per_sec": round(num_keys / fill_delta / 1000.0, 3)
        if fill_delta
        else 0.0,
        "read_ops": reads,
        "read_sim_seconds": round(read_delta, 6),
        "read_kops_per_sec": round(reads / read_delta / 1000.0, 3)
        if read_delta
        else 0.0,
        "wrong_values": wrong,
        "client_retries": client.stats.retries,
        "group_commits": totals["group_commits"],
        "coalesced_writes": totals["coalesced_writes"],
        "protocol_errors": server.protocol_errors,
        "state_digests": server.state_digests(),
        "shard_sim_times": [round(t, 9) for t in server.shard_sim_times()],
        "wall_seconds": round(time.perf_counter() - wall0, 3),
    }
    await client.aclose()
    await server.aclose()
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced workload for CI smoke runs"
    )
    parser.add_argument("--num-keys", type=int, default=None)
    args = parser.parse_args(argv)
    num_keys = args.num_keys or (1200 if args.smoke else 4000)
    reads = num_keys

    t0 = time.perf_counter()
    sweep: List[Dict[str, object]] = []
    for shards in SHARD_SWEEP:
        record = asyncio.run(_run_cluster(shards, num_keys, reads))
        sweep.append(record)
        print(
            f"shards={shards}: fill {record['fill_kops_per_sec']:>8.1f} KOps/s  "
            f"read {record['read_kops_per_sec']:>8.1f} KOps/s  "
            f"group-commits={record['group_commits']}  "
            f"wall={record['wall_seconds']}s"
        )

    repeat = asyncio.run(_run_cluster(4, num_keys, reads))
    four = next(r for r in sweep if r["shards"] == 4)
    one = next(r for r in sweep if r["shards"] == 1)

    read_speedup = (
        four["read_kops_per_sec"] / one["read_kops_per_sec"]
        if one["read_kops_per_sec"]
        else 0.0
    )
    failures: List[str] = []
    if read_speedup < 1.5:
        failures.append(
            f"read throughput at 4 shards is {read_speedup:.2f}x the 1-shard "
            "run; the contract requires >= 1.5x"
        )
    for record in sweep:
        if record["wrong_values"]:
            failures.append(
                f"{record['wrong_values']} wrong read values at "
                f"{record['shards']} shards"
            )
        if record["protocol_errors"]:
            failures.append(
                f"{record['protocol_errors']} protocol errors at "
                f"{record['shards']} shards"
            )
        if record["client_retries"]:
            failures.append(
                f"{record['client_retries']} client retries on a clean "
                f"loopback transport at {record['shards']} shards"
            )
    if four["group_commits"] >= num_keys:
        failures.append(
            f"group commit never coalesced: {four['group_commits']} commits "
            f"for {num_keys} writes"
        )
    if repeat["state_digests"] != four["state_digests"]:
        failures.append("4-shard repeat produced different storage digests")
    if repeat["shard_sim_times"] != four["shard_sim_times"]:
        failures.append("4-shard repeat produced different simulated clocks")

    payload = {
        "benchmark": "sharded_serving_layer",
        "engine": "pebblesdb",
        "num_keys": num_keys,
        "reads": reads,
        "value_size": VALUE_SIZE,
        "concurrency": CONCURRENCY,
        "seed": SEED,
        "sweep": sweep,
        "repeat_4shard": repeat,
        "read_speedup_4shard_vs_1": round(read_speedup, 3),
        "contract": {
            "read_speedup_min": 1.5,
            "passed": not failures,
            "failures": failures,
        },
        "total_wall_seconds": round(time.perf_counter() - t0, 3),
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nread speedup 4 shards vs 1: {read_speedup:.2f}x")
    print(f"results written to {_JSON_PATH}")
    if failures:
        for failure in failures:
            print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
        return 1
    print("contract: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

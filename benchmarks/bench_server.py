"""Sharded serving-layer acceptance benchmark: shard-count sweep.

Runs the same seeded fill + readrandom workload through the
:mod:`repro.net` stack (loopback transport, fixed client concurrency)
against serving processes with 1, 2, and 4 range-partitioned PebblesDB
shards, and verifies the acceptance contract:

1. **read scaling** — aggregate simulated readrandom throughput at 4
   shards must be at least 1.5x the single-shard run at the same client
   concurrency.  Each shard owns its own simulated device and clock, so
   the aggregate rate is ``ops / max-over-shards(clock delta)`` — the
   slowest shard paces the cluster, exactly how a range-partitioned
   deployment behaves;
2. **correctness** — every read returns the value written, no client
   retries were needed on the clean loopback transport, and the server
   counted zero protocol errors;
3. **group commit** — concurrent writes must actually coalesce: the
   4-shard run's group commits must number strictly fewer than its
   writes;
4. **determinism** — repeating the 4-shard run yields byte-identical
   per-shard storage digests and identical per-shard simulated clocks;
5. **multi-core scaling (wall clock)** — process serving mode
   (:class:`repro.net.mp.ProcessKVServer`) with 4 shard workers must
   sustain at least 2.5x the *wall-clock* read throughput of 1 worker.
   Each worker gets its own driver process that pre-encodes its GET
   frames, waits on a start barrier, then blasts them straight at the
   worker's TCP port — the timed window holds only socket IO and a
   length-prefix frame walk, so the workers (not the GIL-bound parent)
   are the measured bottleneck.  On machines with fewer than 4 cores the
   numbers are still recorded but the floor is skipped, with the reason
   logged and stored in the report;
6. **availability** — killing a shard worker mid-workload (SIGKILL, no
   warning) must lose **zero** acknowledged writes: the supervisor
   restarts the worker and replays the parent's durable ship log while
   the client retries through the outage.  The report records the
   server-side time-to-recover and the client-observed unavailability
   window, both bounded by the contract.

Results land in ``BENCH_server.json`` at the repo root (simulated sweep
plus ``wall_clock`` and ``availability`` sections).  ``--smoke``
shrinks the workload for CI; ``--availability-only`` runs just the
kill-a-shard phase; any contract violation exits non-zero.

Run: ``PYTHONPATH=src python benchmarks/bench_server.py [--smoke]``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import random
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.net.client import ClusterClient
from repro.net.mp import ProcessKVServer
from repro.net.protocol import _HEADER, Op, Request, Status, decode_payload, encode_frame
from repro.net.server import KVServer, ServerConfig
from repro.workloads.distributions import KeyCodec, value_bytes

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

SHARD_SWEEP = (1, 2, 4)
VALUE_SIZE = 256
CONCURRENCY = 16
SEED = 11
WALL_SPEEDUP_FLOOR = 2.5
#: Every Nth response is kept whole and fully decoded after the timed
#: window; the timed loop itself only peeks at the status byte.
_SAMPLE_EVERY = 256


async def _bounded(coros, concurrency: int):
    semaphore = asyncio.Semaphore(concurrency)

    async def run(coro):
        async with semaphore:
            return await coro

    return await asyncio.gather(*(run(c) for c in coros))


async def _run_cluster(shards: int, num_keys: int, reads: int) -> Dict[str, object]:
    server = KVServer(
        ServerConfig(
            engine="pebblesdb",
            shards=shards,
            uniform_keys=num_keys,
            seed=SEED,
            cache_bytes=1 << 20,
        )
    )
    client = await ClusterClient.open_loopback(server, pool_size=2)
    codec = KeyCodec(16)
    rng = random.Random(SEED)
    wall0 = time.perf_counter()

    fill_before = server.shard_sim_times()
    await _bounded(
        (
            client.put(codec.encode(i), value_bytes(i, VALUE_SIZE))
            for i in range(num_keys)
        ),
        CONCURRENCY,
    )
    await server.wait_idle()
    fill_delta = max(
        after - before
        for after, before in zip(server.shard_sim_times(), fill_before)
    )

    read_indices = [rng.randrange(num_keys) for _ in range(reads)]
    read_before = server.shard_sim_times()
    read_wall0 = time.perf_counter()
    values = await _bounded(
        (client.get(codec.encode(i)) for i in read_indices), CONCURRENCY
    )
    read_wall = time.perf_counter() - read_wall0
    read_delta = max(
        after - before
        for after, before in zip(server.shard_sim_times(), read_before)
    )
    wrong = sum(
        1
        for index, value in zip(read_indices, values)
        if value != value_bytes(index, VALUE_SIZE)
    )

    totals = server.total_ops()
    record = {
        "shards": shards,
        "fill_ops": num_keys,
        "fill_sim_seconds": round(fill_delta, 6),
        "fill_kops_per_sec": round(num_keys / fill_delta / 1000.0, 3)
        if fill_delta
        else 0.0,
        "read_ops": reads,
        "read_sim_seconds": round(read_delta, 6),
        "read_kops_per_sec": round(reads / read_delta / 1000.0, 3)
        if read_delta
        else 0.0,
        "read_wall_seconds": round(read_wall, 3),
        "read_wall_kops_per_sec": round(reads / read_wall / 1000.0, 3)
        if read_wall
        else 0.0,
        "wrong_values": wrong,
        "client_retries": client.stats.retries,
        "group_commits": totals["group_commits"],
        "coalesced_writes": totals["coalesced_writes"],
        "protocol_errors": server.protocol_errors,
        "state_digests": server.state_digests(),
        "shard_sim_times": [round(t, 9) for t in server.shard_sim_times()],
        "wall_seconds": round(time.perf_counter() - wall0, 3),
    }
    await client.aclose()
    await server.aclose()
    return record


# ----------------------------------------------------------------------
# Availability phase: kill a shard worker mid-workload, measure recovery
# ----------------------------------------------------------------------
async def _run_availability(ops: int) -> Dict[str, object]:
    """Kill one shard worker mid-workload and measure the recovery.

    A sequential put stream runs against a supervised 2-shard process
    cluster; a third of the way in, the victim shard's worker is killed
    outright (SIGKILL).  The supervisor detects the death, restarts the
    worker, and replays the parent's durable ship log; the client just
    retries through the outage.  Reported: the server-side time to
    recover (kill -> restart complete), the client-observed
    unavailability window (kill -> first acknowledged write on the
    victim shard), and ``ops_lost`` — acknowledged writes whose value is
    missing or wrong after recovery, which the contract pins at zero.
    """
    server = ProcessKVServer(
        ServerConfig(
            engine="pebblesdb",
            shards=2,
            uniform_keys=ops,
            seed=SEED,
            cache_bytes=1 << 20,
            heartbeat_interval=0.05,
            restart_backoff_base=0.01,
            restart_backoff_max=0.05,
        )
    )
    client = await ClusterClient.open_loopback(
        server, max_retries=60, backoff_base=0.01, backoff_max=0.25
    )
    codec = KeyCodec(16)
    victim = 0
    kill_at = ops // 3
    kill_time = recover_time = None
    deduped = 0
    for i in range(ops):
        if i == kill_at:
            server._workers[victim].process.kill()
            kill_time = time.monotonic()
        applied = await client.put(codec.encode(i), value_bytes(i, VALUE_SIZE))
        if not applied:
            deduped += 1  # retried write the replayed dedup table caught
        if (
            kill_time is not None
            and recover_time is None
            and server.router.shard_for(codec.encode(i)) == victim
        ):
            recover_time = time.monotonic()
    restart_after_kill = next(
        (when for shard, when in server.restart_events
         if shard == victim and kill_time is not None and when >= kill_time),
        None,
    )
    ops_lost = 0
    for i in range(ops):
        if await client.get(codec.encode(i)) != value_bytes(i, VALUE_SIZE):
            ops_lost += 1
    record = {
        "shards": 2,
        "ops": ops,
        "kill_after_ops": kill_at,
        "restarts": int(server.registry.value("supervisor.restarts", shard=victim)),
        "time_to_recover_seconds": round(restart_after_kill - kill_time, 3)
        if restart_after_kill is not None and kill_time is not None
        else None,
        "client_unavailability_seconds": round(recover_time - kill_time, 3)
        if recover_time is not None and kill_time is not None
        else None,
        "ops_lost": ops_lost,
        "deduped_retries": deduped,
        "client_retries": client.stats.retries,
    }
    await client.aclose()
    await server.aclose()
    return record


def _check_availability(record: Dict[str, object], failures: List[str]) -> None:
    if record["ops_lost"]:
        failures.append(
            f"{record['ops_lost']} acknowledged writes lost across the "
            "worker kill; the durability contract requires 0"
        )
    if record["restarts"] < 1:
        failures.append("worker kill never triggered a supervised restart")
    for key in ("time_to_recover_seconds", "client_unavailability_seconds"):
        value = record[key]
        if value is None:
            failures.append(f"availability run never measured {key}")
        elif value > 30.0:
            failures.append(
                f"{key} was {value}s; the contract requires bounded "
                "recovery (<= 30s)"
            )


# ----------------------------------------------------------------------
# Wall-clock phase: process serving mode, one driver process per worker
# ----------------------------------------------------------------------
def _recv_frames(sock, expected: int):
    """Walk ``expected`` length-prefixed frames off ``sock`` with minimal
    parsing: a struct unpack for the header and a status-byte peek past
    the request-id varint.  Returns (ok_count, sampled_payloads)."""
    buf = bytearray()
    start = 0
    done = ok = 0
    samples: List[bytes] = []
    while done < expected:
        chunk = sock.recv(1 << 16)
        if not chunk:
            raise ConnectionError(
                f"worker closed after {done}/{expected} responses"
            )
        buf += chunk
        while len(buf) - start >= _HEADER.size:
            length, _ = _HEADER.unpack_from(buf, start)
            end = start + _HEADER.size + length
            if len(buf) < end:
                break
            # Payload layout: [op][varint request_id][status]...
            pos = start + _HEADER.size + 1
            while buf[pos] & 0x80:
                pos += 1
            if buf[pos + 1] == Status.OK:
                ok += 1
            if done % _SAMPLE_EVERY == 0:
                samples.append(bytes(buf[start + _HEADER.size : end]))
            start = end
            done += 1
        if start > (1 << 20):
            del buf[:start]
            start = 0
    return ok, samples


def _wall_driver_main(port: int, shard: int, indices: List[int], conn) -> None:
    """Read driver, run in its own process: pre-encodes all GET frames,
    signals ready, waits for the start barrier, then blasts the frames at
    one shard worker's TCP port and counts responses.

    Everything expensive (frame encode, connection setup, HELLO) happens
    before the barrier, so the timed window holds only socket IO and the
    frame walk — the worker stays the measured bottleneck.
    """
    import socket

    codec = KeyCodec(16)
    blob = bytearray()
    for seq, index in enumerate(indices):
        request = Request(
            op=Op.GET, request_id=seq + 2, shard=shard, key=codec.encode(index)
        )
        blob += encode_frame(request.encode())
    blob = bytes(blob)

    sock = socket.create_connection(("127.0.0.1", port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        sock.sendall(encode_frame(Request(op=Op.HELLO, request_id=1).encode()))
        _recv_frames(sock, 1)
        conn.send("ready")
        assert conn.recv() == "go"
        t0 = time.perf_counter()
        writer = threading.Thread(target=sock.sendall, args=(blob,), daemon=True)
        writer.start()
        ok, samples = _recv_frames(sock, len(indices))
        wall = time.perf_counter() - t0
        writer.join()
        conn.send((wall, ok, samples))
    finally:
        sock.close()


async def _run_process_wall(workers: int, num_keys: int, reads: int) -> Dict[str, object]:
    """Fill a process-mode cluster (untimed, via the relay), then measure
    wall-clock read throughput with one direct driver process per worker."""
    server = ProcessKVServer(
        ServerConfig(
            engine="pebblesdb",
            shards=workers,
            uniform_keys=num_keys,
            seed=SEED,
            cache_bytes=1 << 20,
        )
    )
    codec = KeyCodec(16)
    client = await ClusterClient.open_loopback(server, pool_size=2)
    await _bounded(
        (
            client.put(codec.encode(i), value_bytes(i, VALUE_SIZE))
            for i in range(num_keys)
        ),
        CONCURRENCY,
    )
    await server.wait_idle()

    rng = random.Random(SEED + 1)
    per_shard: List[List[int]] = [[] for _ in range(workers)]
    for _ in range(reads):
        index = rng.randrange(num_keys)
        per_shard[server.router.shard_for(codec.encode(index))].append(index)

    ctx = multiprocessing.get_context("spawn")
    drivers = []
    for shard, indices in enumerate(per_shard):
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_wall_driver_main,
            args=(server.worker_ports[shard], shard, indices, child_conn),
            name=f"bench-driver{shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        drivers.append((process, parent_conn, indices))
    for _, parent_conn, _ in drivers:
        assert parent_conn.recv() == "ready"
    t0 = time.perf_counter()
    for _, parent_conn, _ in drivers:
        parent_conn.send("go")
    results = [parent_conn.recv() for _, parent_conn, _ in drivers]
    wall = time.perf_counter() - t0
    for process, parent_conn, _ in drivers:
        process.join(30)
        parent_conn.close()

    ok = sum(r[1] for r in results)
    # Full decode + value check on the sampled responses (request_id maps
    # each sample back to the key index it asked for).
    sample_checked = sample_wrong = 0
    for (_, _, samples), (_, _, indices) in zip(results, drivers):
        for payload in samples:
            response = decode_payload(payload)
            index = indices[response.request_id - 2]
            sample_checked += 1
            if (
                response.status != Status.OK
                or response.value != value_bytes(index, VALUE_SIZE)
            ):
                sample_wrong += 1

    record = {
        "workers": workers,
        "reads": reads,
        "read_wall_seconds": round(wall, 3),
        "read_wall_kops_per_sec": round(reads / wall / 1000.0, 3) if wall else 0.0,
        "ok_responses": ok,
        "sample_checked": sample_checked,
        "sample_wrong": sample_wrong,
        "worker_protocol_errors": server.worker_protocol_errors(),
    }
    await client.aclose()
    await server.aclose()
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced workload for CI smoke runs"
    )
    parser.add_argument("--num-keys", type=int, default=None)
    parser.add_argument(
        "--availability-only",
        action="store_true",
        help="run only the kill-a-shard availability phase (merges its "
        "section into an existing BENCH_server.json when present)",
    )
    args = parser.parse_args(argv)
    num_keys = args.num_keys or (1200 if args.smoke else 4000)
    reads = num_keys
    avail_ops = 600 if args.smoke else 2000

    if args.availability_only:
        failures: List[str] = []
        availability = asyncio.run(_run_availability(avail_ops))
        _check_availability(availability, failures)
        print(
            f"availability: kill at op {availability['kill_after_ops']}, "
            f"recover {availability['time_to_recover_seconds']}s, "
            f"client outage {availability['client_unavailability_seconds']}s, "
            f"ops_lost={availability['ops_lost']}"
        )
        payload = {"benchmark": "sharded_serving_layer"}
        if _JSON_PATH.exists():
            try:
                payload = json.loads(_JSON_PATH.read_text())
            except json.JSONDecodeError:
                pass
        payload["availability"] = availability
        _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"results written to {_JSON_PATH}")
        if failures:
            for failure in failures:
                print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
            return 1
        print("contract: PASS")
        return 0

    t0 = time.perf_counter()
    sweep: List[Dict[str, object]] = []
    for shards in SHARD_SWEEP:
        record = asyncio.run(_run_cluster(shards, num_keys, reads))
        sweep.append(record)
        print(
            f"shards={shards}: fill {record['fill_kops_per_sec']:>8.1f} KOps/s  "
            f"read {record['read_kops_per_sec']:>8.1f} KOps/s  "
            f"group-commits={record['group_commits']}  "
            f"wall={record['wall_seconds']}s"
        )

    repeat = asyncio.run(_run_cluster(4, num_keys, reads))
    four = next(r for r in sweep if r["shards"] == 4)
    one = next(r for r in sweep if r["shards"] == 1)

    read_speedup = (
        four["read_kops_per_sec"] / one["read_kops_per_sec"]
        if one["read_kops_per_sec"]
        else 0.0
    )
    failures: List[str] = []
    if read_speedup < 1.5:
        failures.append(
            f"read throughput at 4 shards is {read_speedup:.2f}x the 1-shard "
            "run; the contract requires >= 1.5x"
        )
    for record in sweep:
        if record["wrong_values"]:
            failures.append(
                f"{record['wrong_values']} wrong read values at "
                f"{record['shards']} shards"
            )
        if record["protocol_errors"]:
            failures.append(
                f"{record['protocol_errors']} protocol errors at "
                f"{record['shards']} shards"
            )
        if record["client_retries"]:
            failures.append(
                f"{record['client_retries']} client retries on a clean "
                f"loopback transport at {record['shards']} shards"
            )
    if four["group_commits"] >= num_keys:
        failures.append(
            f"group commit never coalesced: {four['group_commits']} commits "
            f"for {num_keys} writes"
        )
    if repeat["state_digests"] != four["state_digests"]:
        failures.append("4-shard repeat produced different storage digests")
    if repeat["shard_sim_times"] != four["shard_sim_times"]:
        failures.append("4-shard repeat produced different simulated clocks")

    # ---- wall-clock phase: process serving mode, 1 vs 4 workers ----
    wall_reads = 4800 if args.smoke else 16000
    cpu_count = os.cpu_count() or 1
    print(f"\nwall-clock phase (process mode, {wall_reads} reads, "
          f"{cpu_count} cores):")
    proc_records = []
    for workers in (1, 4):
        record = asyncio.run(_run_process_wall(workers, num_keys, wall_reads))
        proc_records.append(record)
        print(
            f"workers={workers}: read {record['read_wall_kops_per_sec']:>8.1f} "
            f"KOps/s wall  ({record['read_wall_seconds']}s, "
            f"{record['ok_responses']}/{record['reads']} OK)"
        )
    proc_one, proc_four = proc_records
    wall_speedup = (
        proc_four["read_wall_kops_per_sec"] / proc_one["read_wall_kops_per_sec"]
        if proc_one["read_wall_kops_per_sec"]
        else 0.0
    )
    contract_enforced = cpu_count >= 4
    skip_reason = None
    if not contract_enforced:
        skip_reason = (
            f"only {cpu_count} CPU core(s); the {WALL_SPEEDUP_FLOOR}x "
            "4-worker floor needs >= 4 cores to be meaningful"
        )
        print(f"wall-clock contract SKIPPED: {skip_reason}")
    elif wall_speedup < WALL_SPEEDUP_FLOOR:
        failures.append(
            f"wall-clock read throughput at 4 workers is {wall_speedup:.2f}x "
            f"the 1-worker run; the contract requires >= {WALL_SPEEDUP_FLOOR}x"
        )
    for record in proc_records:
        if record["ok_responses"] != record["reads"]:
            failures.append(
                f"{record['reads'] - record['ok_responses']} non-OK responses "
                f"at {record['workers']} workers (process mode)"
            )
        if record["sample_wrong"]:
            failures.append(
                f"{record['sample_wrong']} wrong sampled values at "
                f"{record['workers']} workers (process mode)"
            )
        if record["worker_protocol_errors"]:
            failures.append(
                f"{record['worker_protocol_errors']} worker protocol errors "
                f"at {record['workers']} workers (process mode)"
            )

    # ---- availability phase: kill a shard worker, supervised recovery ----
    availability = asyncio.run(_run_availability(avail_ops))
    _check_availability(availability, failures)
    print(
        f"\navailability: kill at op {availability['kill_after_ops']}, "
        f"recover {availability['time_to_recover_seconds']}s, "
        f"client outage {availability['client_unavailability_seconds']}s, "
        f"ops_lost={availability['ops_lost']}"
    )

    payload = {
        "benchmark": "sharded_serving_layer",
        "availability": availability,
        "engine": "pebblesdb",
        "num_keys": num_keys,
        "reads": reads,
        "value_size": VALUE_SIZE,
        "concurrency": CONCURRENCY,
        "seed": SEED,
        "sweep": sweep,
        "repeat_4shard": repeat,
        "read_speedup_4shard_vs_1": round(read_speedup, 3),
        "wall_clock": {
            "cpu_count": cpu_count,
            "wall_reads": wall_reads,
            "loopback": {
                str(record["shards"]): {
                    "read_wall_seconds": record["read_wall_seconds"],
                    "read_wall_kops_per_sec": record["read_wall_kops_per_sec"],
                }
                for record in sweep
            },
            "process": proc_records,
            "read_wall_speedup_4workers_vs_1": round(wall_speedup, 3),
            "contract": {
                "min_speedup": WALL_SPEEDUP_FLOOR,
                "enforced": contract_enforced,
                "skipped_reason": skip_reason,
            },
        },
        "contract": {
            "read_speedup_min": 1.5,
            "passed": not failures,
            "failures": failures,
        },
        "total_wall_seconds": round(time.perf_counter() - t0, 3),
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nread speedup 4 shards vs 1 (simulated): {read_speedup:.2f}x")
    print(f"read speedup 4 workers vs 1 (wall clock): {wall_speedup:.2f}x")
    print(f"results written to {_JSON_PATH}")
    if failures:
        for failure in failures:
            print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
        return 1
    print("contract: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 5.4: time-series data and the impact of empty guards.

Paper: twenty iterations of insert-window / read / delete-window leave
~9000 empty guards, yet read throughput stays flat (70-90 KOps/s band) —
get() and range queries skip empty guards for free.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from repro.workloads.timeseries import TimeSeriesWorkload
from _helpers import print_paper_comparison, run_once

ITERATIONS = 8
KEYS_PER_WINDOW = 2000
READS_PER_WINDOW = 1000


def test_timeseries_empty_guards(benchmark):
    def experiment():
        cfg = standard_config(num_keys=KEYS_PER_WINDOW, value_size=512, seed=19)
        # Denser guard selection so empty guards actually accumulate at
        # this scale, like the paper's 9000 by iteration twenty.
        cfg.option_overrides = {"pebblesdb": {"top_level_bits": 9}}
        run = fresh_run("pebblesdb", cfg)
        workload = TimeSeriesWorkload(
            run.db,
            run.env.storage,
            keys_per_window=KEYS_PER_WINDOW,
            reads_per_window=READS_PER_WINDOW,
            value_size=512,
        )
        return {"iters": workload.run(ITERATIONS)}

    iters = run_once(benchmark, experiment)["iters"]
    table = Table(
        "Figure 5.4 — time-series iterations (PebblesDB)",
        ["iteration", "write KOps/s", "read KOps/s", "delete KOps/s", "empty guards"],
    )
    for it in iters:
        table.add_row(
            it.iteration,
            f"{it.write_kops:.1f}",
            f"{it.read_kops:.1f}",
            f"{it.delete_kops:.1f}",
            it.empty_guards,
        )
    table.print()

    from repro.analysis.charts import sparkline

    print(f"read KOps/s trend : {sparkline([it.read_kops for it in iters])}")
    print(f"empty guards trend: {sparkline([it.empty_guards for it in iters])}")

    first, last = iters[0], iters[-1]
    print_paper_comparison(
        "Figure 5.4",
        [
            f"empty guards accumulate: paper ~9000 by iter 20 | measured "
            f"{last.empty_guards} by iter {ITERATIONS}",
            f"read throughput unaffected: paper flat band | measured "
            f"last/first = {last.read_kops / first.read_kops:.2f}x",
            f"write throughput unaffected: measured "
            f"last/first = {last.write_kops / first.write_kops:.2f}x",
        ],
    )
    assert last.empty_guards > first.empty_guards, "empty guards should accumulate"
    assert last.read_kops > 0.5 * first.read_kops, "reads must not collapse"
    assert last.write_kops > 0.5 * first.write_kops, "writes must not collapse"

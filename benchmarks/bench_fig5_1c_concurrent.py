"""Figure 5.1(c): multi-threaded writes, reads, and a mixed workload.

Paper: four threads, RocksDB parameters (large memtable / Level 0);
PebblesDB wins both the pure write and the mixed read/write workloads —
3.3x RocksDB's multithreaded write throughput.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import KV_STORES, print_paper_comparison, run_once

NUM_KEYS = 12000
VALUE_SIZE = 1024
THREADS = 4


def test_multithreaded_and_mixed(benchmark):
    def experiment():
        rows = {}
        for engine in KV_STORES:
            cfg = standard_config(
                num_keys=NUM_KEYS, value_size=VALUE_SIZE, threads=THREADS, seed=5
            )
            # The paper runs this experiment with RocksDB-style relaxed
            # Level-0 limits for every store.
            cfg.option_overrides = {
                eng: {"level0_slowdown_trigger": 20, "level0_stop_trigger": 24}
                for eng in KV_STORES
            }
            run = fresh_run(engine, cfg)
            bench = run.bench
            writes = bench.fill_random()
            reads = bench.read_random(4000)
            mixed = bench.mixed_read_write(reads=3000, writes=3000)
            rows[engine] = {
                "write": writes.kops,
                "read": reads.kops,
                "mixed": mixed.kops,
            }
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Figure 5.1(c) — 4-thread workloads (KOps/s)",
        ["store", "writes", "reads", "mixed"],
    )
    for engine in KV_STORES:
        r = rows[engine]
        table.add_row(engine, f"{r['write']:.1f}", f"{r['read']:.1f}", f"{r['mixed']:.1f}")
    table.print()

    p = rows["pebblesdb"]
    print_paper_comparison(
        "Figure 5.1(c)",
        [
            f"PebblesDB best writes: paper yes | measured "
            f"{p['write'] == max(r['write'] for r in rows.values())}",
            f"P/RocksDB writes: paper ~3.3x | measured "
            f"{p['write'] / rows['rocksdb']['write']:.2f}x",
            f"PebblesDB best mixed: paper yes | measured "
            f"{p['mixed'] == max(r['mixed'] for r in rows.values())}",
        ],
    )
    assert p["write"] == max(r["write"] for r in rows.values())

"""Read-path microbenchmark: decoded-block cache wall-clock speedup.

Unlike the per-figure benchmarks (which report *simulated* quantities),
the number under test here is **host wall-clock**: the decoded-block
cache exists purely to stop the pure-Python reproduction from re-parsing
sstable blocks it already parsed.  The benchmark runs the same random-read
workload over a warmed, compacted store twice — cache disabled, cache
enabled — and checks two things:

1. wall-clock speedup of the read phase (acceptance bar: >= 2x at the
   default workload size), and
2. **byte-identical simulated metrics** in both runs: device seconds, IO
   byte/op counts, and page-cache hit/miss/eviction totals must not move
   by a single unit, because the cache charges the exact simulated costs
   a raw read would have.

A third, ablation run isolates the **zero-copy decode** win from the
cache win: the cache-off configuration is repeated with
``zero_copy_blocks`` disabled (per-entry ``bytes()`` copies restored),
and both numbers plus their ratio land in the report's ``zero_copy``
section.  Zero-copy is host-side only, so the simulated metrics must be
identical there too.  Set ``READPATH_ZC_ABLATION=0`` to skip the extra
run.

The ablation also sweeps large values (4 KiB and 64 KiB, scaled-down
key counts): copy cost grows with the value size, so these points show
where zero-copy decode matters most.  Each lands in
``zero_copy["value_sweep"]`` with the same sim-identical check.

Results land in ``BENCH_readpath.json`` at the repo root (and in
pytest-benchmark's ``extra_info``).  Scale with ``READPATH_GETS`` /
``READPATH_KEYS`` env vars; CI uses a reduced op count.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.harness import fresh_run, standard_config
from _helpers import run_once

NUM_KEYS = int(os.environ.get("READPATH_KEYS", "12000"))
GETS = int(os.environ.get("READPATH_GETS", "1000000"))
VALUE_SIZE = 512
CACHE_BYTES = 32 * 1024 * 1024
ZC_ABLATION = os.environ.get("READPATH_ZC_ABLATION", "1") != "0"

#: Full-size runs must clear the acceptance bar; reduced runs (CI smoke)
#: amortize the warm-up over fewer reads, so they get a softer floor.
_FULL_SCALE = GETS >= 1_000_000
SPEEDUP_FLOOR = 2.0 if _FULL_SCALE else 1.2

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_readpath.json"


#: Zero-copy ablation points at larger values: (value_size, num_keys,
#: gets scale).  Key counts shrink so the datasets stay host-RAM sized.
VALUE_SWEEP = [(4096, 3000, 10), (65536, 400, 40)]


def _measure(
    block_cache_bytes: int,
    zero_copy: bool = True,
    value_size: int = VALUE_SIZE,
    num_keys: int = NUM_KEYS,
    gets: int = GETS,
):
    """One warmed-store random-read run; returns (wall, sim_metrics, stats)."""
    # Each measurement starts from a clean heap so an earlier run's
    # garbage cannot tax this run's timed loop.
    gc.collect()
    cfg = standard_config(
        num_keys=num_keys,
        value_size=value_size,
        seed=3,
        option_overrides={
            "pebblesdb": {
                "block_cache_bytes": block_cache_bytes,
                "zero_copy_blocks": zero_copy,
            }
        },
    )
    run = fresh_run("pebblesdb", cfg)
    run.bench.fill_random()
    run.db.compact_all()
    run.db.wait_idle()
    t0 = time.perf_counter()
    result = run.bench.read_random(gets)
    wall = time.perf_counter() - t0
    run.db.wait_idle()
    storage = run.env.storage
    sim = {
        "sim_seconds": run.env.clock.now,
        "bytes_read": storage.stats.bytes_read,
        "bytes_written": storage.stats.bytes_written,
        "read_ops": storage.stats.read_ops,
        "write_ops": storage.stats.write_ops,
        "page_cache_hits": storage.cache.stats.hits,
        "page_cache_misses": storage.cache.stats.misses,
        "page_cache_evictions": storage.cache.stats.evictions,
        "read_kops_simulated": round(result.kops, 6),
        "found_fraction": result.extra["found_fraction"],
    }
    stats = run.db.stats()
    cache_stats = {
        "hits": stats.block_cache_hits,
        "misses": stats.block_cache_misses,
        "hit_rate": round(stats.block_cache_hit_rate, 4),
        "resident_bytes": stats.block_cache_bytes,
    }
    run.db.close()
    return wall, sim, cache_stats


def test_readpath_cache_speedup(benchmark):
    def experiment():
        wall_off, sim_off, _ = _measure(0)
        wall_on, sim_on, cache_stats = _measure(CACHE_BYTES)
        report = {
            "engine": "pebblesdb",
            "num_keys": NUM_KEYS,
            "gets": GETS,
            "value_size": VALUE_SIZE,
            "block_cache_bytes": CACHE_BYTES,
            "wall_seconds_cache_off": round(wall_off, 3),
            "wall_seconds_cache_on": round(wall_on, 3),
            "speedup": round(wall_off / wall_on, 3),
            "sim_metrics_identical": sim_off == sim_on,
            "block_cache": cache_stats,
            "sim_metrics": sim_on,
        }
        if ZC_ABLATION:
            # Ablation: same cache-off run with value copies restored, so
            # the decode win is isolated from the cache win above.
            wall_copy, sim_copy, _ = _measure(0, zero_copy=False)
            report["zero_copy"] = {
                "wall_seconds_on": round(wall_off, 3),
                "wall_seconds_off": round(wall_copy, 3),
                "speedup": round(wall_copy / wall_off, 3),
                "sim_metrics_identical": sim_copy == sim_off,
                "value_sweep": [],
            }
            for value_size, keys, scale in VALUE_SWEEP:
                gets = max(GETS // scale, 1)
                wall_zc, sim_zc, _ = _measure(
                    0, value_size=value_size, num_keys=keys, gets=gets
                )
                wall_cp, sim_cp, _ = _measure(
                    0, zero_copy=False,
                    value_size=value_size, num_keys=keys, gets=gets,
                )
                report["zero_copy"]["value_sweep"].append(
                    {
                        "value_size": value_size,
                        "num_keys": keys,
                        "gets": gets,
                        "wall_seconds_on": round(wall_zc, 3),
                        "wall_seconds_off": round(wall_cp, 3),
                        "speedup": round(wall_cp / wall_zc, 3),
                        "sim_metrics_identical": sim_zc == sim_cp,
                    }
                )
        return report

    result = run_once(benchmark, experiment)
    _JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"\nread path ({GETS} gets, {NUM_KEYS} keys): "
        f"off={result['wall_seconds_cache_off']:.2f}s "
        f"on={result['wall_seconds_cache_on']:.2f}s "
        f"speedup={result['speedup']:.2f}x "
        f"(decoded-cache hit rate {result['block_cache']['hit_rate'] * 100:.1f}%)"
    )
    print(f"simulated metrics identical: {result['sim_metrics_identical']}")
    if "zero_copy" in result:
        zc = result["zero_copy"]
        print(
            f"zero-copy ablation (cache off): "
            f"copies={zc['wall_seconds_off']:.2f}s "
            f"zero-copy={zc['wall_seconds_on']:.2f}s "
            f"speedup={zc['speedup']:.2f}x"
        )
        for point in zc.get("value_sweep", []):
            print(
                f"zero-copy at {point['value_size']}B values: "
                f"copies={point['wall_seconds_off']:.2f}s "
                f"zero-copy={point['wall_seconds_on']:.2f}s "
                f"speedup={point['speedup']:.2f}x"
            )
    print(f"recorded to {_JSON_PATH.name}")

    assert result["sim_metrics_identical"], (
        "decoded-block cache changed a simulated metric — it must be "
        "invisible to the simulation"
    )
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"read-path speedup {result['speedup']:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    if "zero_copy" in result:
        assert result["zero_copy"]["sim_metrics_identical"], (
            "zero-copy decode changed a simulated metric — it is a "
            "host-side representation change and must be invisible"
        )
        for point in result["zero_copy"].get("value_sweep", []):
            assert point["sim_metrics_identical"], (
                f"zero-copy at {point['value_size']}B values changed a "
                f"simulated metric — it must be invisible"
            )

"""Observability overhead benchmark: tracing on vs tracing off.

The tracing subsystem promises two things at once:

1. **Zero perturbation** — instrumentation reads the simulated clock but
   never advances it, so every simulated quantity (device seconds, IO
   bytes/ops, stall totals) is byte-identical whether tracing is on or
   off.  This is asserted, not just recorded.
2. **Bounded host cost** — spans are real Python work (dict building,
   JSON encoding, sink writes), so the *wall-clock* cost of a traced run
   is the number under test.  The benchmark runs the same fill + read
   workload twice and records the trace-on / trace-off wall-clock ratio,
   plus spans written and trace bytes per operation.

Results land in ``BENCH_obs.json`` at the repo root (and in
pytest-benchmark's ``extra_info``).  Scale with ``OBS_KEYS`` /
``OBS_GETS`` env vars; CI uses a reduced op count.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.harness import fresh_run, standard_config
from repro.obs.trace import TraceSink
from _helpers import run_once

NUM_KEYS = int(os.environ.get("OBS_KEYS", "12000"))
GETS = int(os.environ.get("OBS_GETS", "40000"))
VALUE_SIZE = 512

#: Tracing every put/get/flush/compaction costs real host work.  The bar
#: is generous on purpose — the contract is "usable when on, free when
#: off" — but catches pathological regressions (e.g. spans allocated on
#: untraced runs, or O(n) sink flushes).
OVERHEAD_CEILING = 5.0

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _measure(traced: bool):
    """One fill+read run; returns (wall, sim_metrics, spans, trace_bytes)."""
    cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=3)
    run = fresh_run("pebblesdb", cfg)
    buffer = io.StringIO()
    sink = None
    if traced:
        sink = TraceSink(buffer)
        run.db.enable_tracing(sink)
    t0 = time.perf_counter()
    run.bench.fill_random()
    run.bench.read_random(GETS)
    run.db.wait_idle()
    wall = time.perf_counter() - t0
    storage = run.env.storage
    stats = run.db.stats()
    sim = {
        "sim_seconds": run.env.clock.now,
        "bytes_read": storage.stats.bytes_read,
        "bytes_written": storage.stats.bytes_written,
        "read_ops": storage.stats.read_ops,
        "write_ops": storage.stats.write_ops,
        "stall_seconds": round(stats.stall_seconds, 9),
        "write_amplification": round(stats.write_amplification, 6),
        "sstable_count": stats.sstable_count,
    }
    run.db.close()
    if sink is not None:
        sink.close()
    return wall, sim, (sink.spans_written if sink else 0), len(buffer.getvalue())


def test_tracing_overhead(benchmark):
    def experiment():
        wall_off, sim_off, _, _ = _measure(traced=False)
        wall_on, sim_on, spans, trace_bytes = _measure(traced=True)
        ops = NUM_KEYS + GETS
        return {
            "engine": "pebblesdb",
            "num_keys": NUM_KEYS,
            "gets": GETS,
            "value_size": VALUE_SIZE,
            "wall_seconds_trace_off": round(wall_off, 3),
            "wall_seconds_trace_on": round(wall_on, 3),
            "overhead_ratio": round(wall_on / wall_off, 3),
            "spans_written": spans,
            "trace_bytes": trace_bytes,
            "trace_bytes_per_op": round(trace_bytes / ops, 1),
            "sim_metrics_identical": sim_off == sim_on,
            "sim_metrics": sim_on,
        }

    result = run_once(benchmark, experiment)
    _JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"\ntracing overhead ({NUM_KEYS} puts + {GETS} gets): "
        f"off={result['wall_seconds_trace_off']:.2f}s "
        f"on={result['wall_seconds_trace_on']:.2f}s "
        f"ratio={result['overhead_ratio']:.2f}x "
        f"({result['spans_written']} spans, "
        f"{result['trace_bytes_per_op']:.0f} trace bytes/op)"
    )
    print(f"simulated metrics identical: {result['sim_metrics_identical']}")
    print(f"recorded to {_JSON_PATH.name}")

    assert result["sim_metrics_identical"], (
        "tracing changed a simulated metric — instrumentation must "
        "observe the simulation, never advance it"
    )
    assert result["spans_written"] > 0, "traced run produced no spans"
    assert result["overhead_ratio"] <= OVERHEAD_CEILING, (
        f"trace-on/off wall-clock ratio {result['overhead_ratio']:.2f}x "
        f"above the {OVERHEAD_CEILING}x ceiling"
    )

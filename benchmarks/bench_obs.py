"""Observability overhead benchmark: tracing, sampling modes, ledger.

The observability plane promises three things at once:

1. **Zero perturbation** — instrumentation reads the simulated clock but
   never advances it, so every simulated quantity (device seconds, IO
   bytes/ops, stall totals) is byte-identical whether tracing is on or
   off.  This is asserted, not just recorded.
2. **Bounded host cost** — spans are real Python work (dict building,
   JSON encoding, sink writes), so the *wall-clock* cost of a traced run
   is the number under test.  ``test_tracing_overhead`` measures full
   JSONL tracing; ``test_sampling_mode_overhead`` sweeps the
   ``trace_sample`` flight-recorder knob (``off``/``errors``/``1/N``)
   and holds the always-on default (``errors``) to ≤ 1.15x.
3. **Exact attribution** — the per-cause I/O ledger sums byte-for-byte
   to the device totals, so ``write_amplification`` decomposes into WAL
   + flush + per-level compaction + manifest with nothing left over
   (``test_ledger_exactness``).

Results merge into ``BENCH_obs.json`` at the repo root (one key per
test, existing keys preserved) and into pytest-benchmark's
``extra_info``.  Scale with ``OBS_KEYS`` / ``OBS_GETS`` env vars; CI
uses a reduced op count.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.harness import fresh_run, standard_config
from repro.obs.ledger import IoLedger
from repro.obs.trace import TraceSink
from _helpers import run_once

NUM_KEYS = int(os.environ.get("OBS_KEYS", "12000"))
GETS = int(os.environ.get("OBS_GETS", "40000"))
VALUE_SIZE = 512

#: Tracing every put/get/flush/compaction costs real host work.  The bar
#: is generous on purpose — the contract is "usable when on, free when
#: off" — but catches pathological regressions (e.g. spans allocated on
#: untraced runs, or O(n) sink flushes).
OVERHEAD_CEILING = 5.0

#: The always-on flight-recorder default must be near-free: its hot path
#: is one failed ``is None`` check per op (the ring only sees
#: error-path events), so 15% covers host noise, not real work.
ERRORS_MODE_CEILING = 1.15

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _record(key: str, value) -> None:
    """Merge one result section into BENCH_obs.json, keeping the rest."""
    data = {}
    if _JSON_PATH.exists():
        try:
            data = json.loads(_JSON_PATH.read_text())
        except ValueError:
            data = {}
    data[key] = value
    _JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _measure(traced: bool):
    """One fill+read run; returns (wall, sim_metrics, spans, trace_bytes)."""
    cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=3)
    run = fresh_run("pebblesdb", cfg)
    buffer = io.StringIO()
    sink = None
    if traced:
        sink = TraceSink(buffer)
        run.db.enable_tracing(sink)
    t0 = time.perf_counter()
    run.bench.fill_random()
    run.bench.read_random(GETS)
    run.db.wait_idle()
    wall = time.perf_counter() - t0
    storage = run.env.storage
    stats = run.db.stats()
    sim = {
        "sim_seconds": run.env.clock.now,
        "bytes_read": storage.stats.bytes_read,
        "bytes_written": storage.stats.bytes_written,
        "read_ops": storage.stats.read_ops,
        "write_ops": storage.stats.write_ops,
        "stall_seconds": round(stats.stall_seconds, 9),
        "write_amplification": round(stats.write_amplification, 6),
        "sstable_count": stats.sstable_count,
    }
    run.db.close()
    if sink is not None:
        sink.close()
    return wall, sim, (sink.spans_written if sink else 0), len(buffer.getvalue())


def test_tracing_overhead(benchmark):
    def experiment():
        wall_off, sim_off, _, _ = _measure(traced=False)
        wall_on, sim_on, spans, trace_bytes = _measure(traced=True)
        ops = NUM_KEYS + GETS
        return {
            "engine": "pebblesdb",
            "num_keys": NUM_KEYS,
            "gets": GETS,
            "value_size": VALUE_SIZE,
            "wall_seconds_trace_off": round(wall_off, 3),
            "wall_seconds_trace_on": round(wall_on, 3),
            "overhead_ratio": round(wall_on / wall_off, 3),
            "spans_written": spans,
            "trace_bytes": trace_bytes,
            "trace_bytes_per_op": round(trace_bytes / ops, 1),
            "sim_metrics_identical": sim_off == sim_on,
            "sim_metrics": sim_on,
        }

    result = run_once(benchmark, experiment)
    _record("tracing", result)

    print(
        f"\ntracing overhead ({NUM_KEYS} puts + {GETS} gets): "
        f"off={result['wall_seconds_trace_off']:.2f}s "
        f"on={result['wall_seconds_trace_on']:.2f}s "
        f"ratio={result['overhead_ratio']:.2f}x "
        f"({result['spans_written']} spans, "
        f"{result['trace_bytes_per_op']:.0f} trace bytes/op)"
    )
    print(f"simulated metrics identical: {result['sim_metrics_identical']}")
    print(f"recorded to {_JSON_PATH.name}")

    assert result["sim_metrics_identical"], (
        "tracing changed a simulated metric — instrumentation must "
        "observe the simulation, never advance it"
    )
    assert result["spans_written"] > 0, "traced run produced no spans"
    assert result["overhead_ratio"] <= OVERHEAD_CEILING, (
        f"trace-on/off wall-clock ratio {result['overhead_ratio']:.2f}x "
        f"above the {OVERHEAD_CEILING}x ceiling"
    )


# ----------------------------------------------------------------------
# Flight-recorder sampling-mode sweep
# ----------------------------------------------------------------------
def _measure_sampled(mode: str):
    """One fill+read run at a ``trace_sample`` mode; best figures only.

    Returns (wall, sim_metrics, recorder_summary).
    """
    cfg = standard_config(
        num_keys=NUM_KEYS,
        value_size=VALUE_SIZE,
        seed=3,
        option_overrides={"pebblesdb": {"trace_sample": mode}},
    )
    run = fresh_run("pebblesdb", cfg)
    t0 = time.perf_counter()
    run.bench.fill_random()
    run.bench.read_random(GETS)
    run.db.wait_idle()
    wall = time.perf_counter() - t0
    storage = run.env.storage
    stats = run.db.stats()
    sim = {
        "sim_seconds": run.env.clock.now,
        "bytes_read": storage.stats.bytes_read,
        "bytes_written": storage.stats.bytes_written,
        "read_ops": storage.stats.read_ops,
        "write_ops": storage.stats.write_ops,
        "stall_seconds": round(stats.stall_seconds, 9),
        "write_amplification": round(stats.write_amplification, 6),
        "sstable_count": stats.sstable_count,
    }
    summary = run.db.recorder.summary()
    run.db.close()
    return wall, sim, summary


def test_sampling_mode_overhead(benchmark):
    modes = ["off", "errors", "1/64", "1/8"]

    def experiment():
        # Two passes per mode, best-of: the sweep compares ~1.0x ratios,
        # so a single noisy wall-clock sample would dominate the signal.
        walls, sims, summaries = {}, {}, {}
        for mode in modes:
            best = None
            for _ in range(2):
                wall, sim, summary = _measure_sampled(mode)
                best = wall if best is None else min(best, wall)
                sims[mode] = sim
                summaries[mode] = summary
            walls[mode] = best
        return {
            "num_keys": NUM_KEYS,
            "gets": GETS,
            "value_size": VALUE_SIZE,
            "modes": {
                mode: {
                    "wall_seconds": round(walls[mode], 3),
                    "overhead_ratio": round(walls[mode] / walls["off"], 3),
                    "spans_recorded": summaries[mode]["recorded"],
                }
                for mode in modes
            },
            "sim_metrics_identical": all(
                sims[mode] == sims["off"] for mode in modes
            ),
        }

    result = run_once(benchmark, experiment)
    _record("sampling_sweep", result)

    print(f"\ntrace_sample sweep ({NUM_KEYS} puts + {GETS} gets):")
    for mode, row in result["modes"].items():
        print(
            f"  {mode:>6}: {row['wall_seconds']:.2f}s "
            f"({row['overhead_ratio']:.3f}x, "
            f"{row['spans_recorded']} records)"
        )
    print(f"simulated metrics identical: {result['sim_metrics_identical']}")

    assert result["sim_metrics_identical"], (
        "a trace_sample mode changed a simulated metric — the recorder "
        "must observe the simulation, never advance it"
    )
    errors_ratio = result["modes"]["errors"]["overhead_ratio"]
    assert errors_ratio <= ERRORS_MODE_CEILING, (
        f"always-on 'errors' mode costs {errors_ratio:.3f}x "
        f"(ceiling {ERRORS_MODE_CEILING}x)"
    )
    # Sampling captures real spans; clean runs record nothing in
    # errors mode (it only sees error-path events).
    assert result["modes"]["1/8"]["spans_recorded"] > 0
    assert result["modes"]["errors"]["spans_recorded"] == 0


# ----------------------------------------------------------------------
# Ledger exactness: write amplification decomposes with zero residue
# ----------------------------------------------------------------------
def test_ledger_exactness(benchmark):
    def experiment():
        cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=3)
        run = fresh_run("pebblesdb", cfg)
        run.bench.fill_random()
        run.bench.read_random(GETS)
        run.db.wait_idle()
        storage = run.env.storage
        stats = run.db.stats()
        ledger = IoLedger.from_storage(storage, "pebblesdb/")
        ledger.verify_against(storage)  # raises on any unattributed byte
        user_bytes = stats.user_bytes_written
        result = {
            "num_keys": NUM_KEYS,
            "value_size": VALUE_SIZE,
            "device_write_bytes": storage.stats.bytes_written,
            "ledger_write_bytes": dict(sorted(ledger.write_bytes.items())),
            "write_amplification": round(stats.write_amplification, 6),
            "amplification_by_cause": {
                cause: round(nbytes / user_bytes, 4)
                for cause, nbytes in sorted(ledger.write_bytes.items())
            },
            "exact": ledger.total_write_bytes == storage.stats.bytes_written,
        }
        run.db.close()
        return result

    result = run_once(benchmark, experiment)
    _record("ledger", result)

    print(f"\nwrite amplification {result['write_amplification']:.3f}x decomposes as:")
    for cause, amp in result["amplification_by_cause"].items():
        print(f"  {cause:>24}: {amp:.4f}x")
    assert result["exact"], "ledger does not sum to device write totals"
    total_amp = sum(result["amplification_by_cause"].values())
    assert abs(total_amp - result["write_amplification"]) < 0.01, (
        f"per-cause amplification sums to {total_amp:.4f}x, "
        f"reported write_amplification is {result['write_amplification']}x"
    )

"""Guard-parallel compaction acceptance benchmark: fillrandom under a
workers sweep.

Runs the same seeded fillrandom workload against PebblesDB with 1, 2, 4,
and 8 background workers under the guard-granularity conflict-map
scheduler (plus a 4-worker run with the level-serial scheduler for
comparison) and verifies the acceptance contract:

1. **speedup** — simulated fillrandom throughput at 4 workers must be at
   least 1.5x the single-worker run (independent guard compactions
   overlap on worker timelines instead of queueing behind each other);
2. **write amplification** — parallelism must not buy throughput with
   extra rewrites: the 4-worker write amplification must stay within
   ±5% of the single-worker value (in-flight outflow accounting keeps
   size triggers from over-compacting);
3. **parallelism** — the 4-worker run must actually overlap jobs
   (``compactions_parallel_peak > 1``);
4. **determinism** — repeating the 4-worker run yields an identical
   simulated clock and identical compaction counters.

Results land in ``BENCH_parallel_compaction.json`` at the repo root.
``--smoke`` shrinks the workload for CI; any contract violation exits
non-zero.

Run: ``PYTHONPATH=src python benchmarks/bench_parallel_compaction.py [--smoke]``
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import repro
from repro.engines.options import StoreOptions

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_compaction.json"

WORKER_SWEEP = (1, 2, 4, 8)
VALUE_SIZE = 512
KEY_SPACE = 3000
SEED = 7


def _options(workers: int, scheduler: str) -> StoreOptions:
    base = StoreOptions.for_preset("pebblesdb")
    return dataclasses.replace(
        base,
        memtable_bytes=8 * 1024,
        level1_max_bytes=32 * 1024,
        target_file_bytes=8 * 1024,
        background_workers=workers,
        compaction_scheduler=scheduler,
        # Dense guards so independent guard jobs exist to parallelize.
        top_level_bits=6,
        bit_decrement=1,
    )


def _fill_random(workers: int, scheduler: str, num_ops: int) -> Dict[str, object]:
    env = repro.Environment(cache_bytes=1 << 20)
    db = repro.open_store(
        "pebblesdb", env.storage, options=_options(workers, scheduler), prefix="db/"
    )
    rng = random.Random(SEED)
    value = b"v" * VALUE_SIZE
    wall0 = time.perf_counter()
    for _ in range(num_ops):
        db.put(b"key%06d" % rng.randrange(KEY_SPACE), value)
    db.wait_idle()
    wall = time.perf_counter() - wall0
    db.check_invariants()
    stats = db.stats()
    sim = env.clock.now
    record = {
        "workers": workers,
        "scheduler": scheduler,
        "sim_seconds": round(sim, 6),
        "kops_per_sec": round(num_ops / sim / 1000.0, 3) if sim else 0.0,
        "write_amplification": round(stats.write_amplification, 4),
        "stall_seconds": round(stats.stall_seconds, 6),
        "conflict_stall_seconds": round(stats.conflict_stall_seconds, 6),
        "compactions": stats.compactions,
        "compaction_conflicts": stats.compaction_conflicts,
        "compactions_parallel_peak": stats.compactions_parallel_peak,
        "wall_seconds": round(wall, 3),
    }
    db.close()
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced workload for CI smoke runs"
    )
    parser.add_argument("--num-ops", type=int, default=None)
    args = parser.parse_args(argv)
    num_ops = args.num_ops or (3000 if args.smoke else 8000)

    t0 = time.perf_counter()
    sweep: List[Dict[str, object]] = []
    for workers in WORKER_SWEEP:
        record = _fill_random(workers, "guard", num_ops)
        sweep.append(record)
        print(
            f"workers={workers} scheduler=guard: "
            f"{record['kops_per_sec']:>8.1f} KOps/s  "
            f"wa={record['write_amplification']:.2f}  "
            f"peak={record['compactions_parallel_peak']}  "
            f"stall={record['stall_seconds']:.3f}s"
        )
    level_serial = _fill_random(4, "level", num_ops)
    sweep.append(level_serial)
    print(
        f"workers=4 scheduler=level: "
        f"{level_serial['kops_per_sec']:>8.1f} KOps/s  "
        f"wa={level_serial['write_amplification']:.2f}  "
        f"peak={level_serial['compactions_parallel_peak']}"
    )

    by_workers = {r["workers"]: r for r in sweep if r["scheduler"] == "guard"}
    speedup = by_workers[1]["sim_seconds"] / by_workers[4]["sim_seconds"]
    wa_ratio = (
        by_workers[4]["write_amplification"] / by_workers[1]["write_amplification"]
    )
    repeat = _fill_random(4, "guard", num_ops)
    deterministic = all(
        repeat[key] == by_workers[4][key]
        for key in (
            "sim_seconds",
            "write_amplification",
            "compactions",
            "compaction_conflicts",
            "compactions_parallel_peak",
        )
    )

    failures = []
    if speedup < 1.5:
        failures.append(f"speedup {speedup:.2f}x at 4 workers (need >= 1.5x)")
    if abs(wa_ratio - 1.0) > 0.05:
        failures.append(
            f"write amplification drifted {wa_ratio:.3f}x at 4 workers (need ±5%)"
        )
    if by_workers[4]["compactions_parallel_peak"] < 2:
        failures.append("4-worker run never overlapped compactions")
    if not deterministic:
        failures.append("repeated 4-worker run diverged")

    wall = time.perf_counter() - t0
    payload = {
        "benchmark": "parallel_compaction",
        "smoke": args.smoke,
        "num_ops": num_ops,
        "value_size": VALUE_SIZE,
        "key_space": KEY_SPACE,
        "speedup_4_vs_1": round(speedup, 3),
        "write_amp_ratio_4_vs_1": round(wa_ratio, 4),
        "deterministic": deterministic,
        "passed": not failures,
        "failures": failures,
        "wall_seconds": round(wall, 3),
        "sweep": sweep,
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("-" * 70)
    print(
        f"4 workers vs 1: {speedup:.2f}x simulated throughput, "
        f"write-amp ratio {wa_ratio:.3f}, deterministic={deterministic}"
    )
    print(f"results -> {_JSON_PATH.name} ({wall:.1f}s wall)")
    if failures:
        for failure in failures:
            print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Key–value separation benchmark: the value log vs the plain tree.

Runs a seeded fillrandom + 50% overwrite + full compaction workload at
each value size in a 512 B → 64 KiB sweep, twice per size — once with
``value_separation_bytes`` set (values live in the garbage-collected
value log, the tree compacts pointers) and once without (the seed
behaviour: values ride through every compaction).  Reports simulated
write amplification, device bytes, and value-log GC counters per point.

Contract (any violation exits non-zero; CI runs ``--contract-only``):

1. **write amp** — at 64 KiB values the separated store's write
   amplification must be <= 2.0 (the tree moves 28-byte pointers, so
   amplification collapses to ~1x regardless of compaction depth);
2. **correctness differential** — at every size, a full scan of the
   separated store must equal the unseparated store's byte-for-byte;
3. **separation-off identity** — with separation disabled the feature
   must be invisible: two fresh runs of the same workload produce
   byte-identical file digests, no ``.vlg`` segment ever appears, and
   no MANIFEST edit carries a value-log tag (the byte-level guarantee
   that an upgraded binary rewrites nothing for existing stores).

Results land in ``BENCH_vlog.json`` (override with ``--out``).

Run: ``PYTHONPATH=src python benchmarks/bench_vlog.py [--contract-only]``
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import random
import sys
from pathlib import Path
from typing import Dict, Optional

import repro
from repro.engines.options import StoreOptions
from repro.version import ManifestReader, read_current
from repro.workloads.distributions import KeyCodec, value_bytes

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_vlog.json"

SEED = 11
SEPARATION_BYTES = 256
#: (value_size, num_keys) — keys scaled so each point writes a similar
#: user-byte volume and the sweep finishes in CI time.
SWEEP = [(512, 4000), (4096, 1500), (16384, 500), (65536, 200)]
WRITE_AMP_CEILING = 2.0


def _options(separation: Optional[int]) -> StoreOptions:
    return dataclasses.replace(
        StoreOptions.for_preset("pebblesdb"),
        memtable_bytes=256 * 1024,
        level1_max_bytes=1024 * 1024,
        target_file_bytes=512 * 1024,
        value_separation_bytes=separation,
        vlog_segment_bytes=1024 * 1024,
    )


def _digests(storage, prefix: str) -> Dict[str, str]:
    acct = storage.foreground_account("digest")
    out = {}
    for name in sorted(storage.list_files(prefix)):
        data = storage.read(name, 0, storage.size(name), acct, sequential=True)
        out[name] = hashlib.sha256(bytes(data)).hexdigest()
    return out


def _run_workload(value_size: int, num_keys: int, separation: Optional[int]):
    env = repro.Environment(cache_bytes=8 * 1024 * 1024)
    db = repro.open_store(
        "pebblesdb", env.storage, options=_options(separation), prefix="db/"
    )
    codec = KeyCodec(16)
    rng = random.Random(SEED)
    order = list(range(num_keys))
    rng.shuffle(order)
    for i in order:
        db.put(codec.encode(i), value_bytes(i, value_size))
    # Overwrite half the keys: garbage for the value-log GC to collect.
    for _ in range(num_keys // 2):
        i = rng.randrange(num_keys)
        db.put(codec.encode(i), value_bytes(i + num_keys, value_size))
    db.compact_all()
    db.wait_idle()
    contents = dict(db.scan())
    stats = db.stats()
    point = {
        "write_amplification": round(stats.write_amplification, 3),
        "user_mb_written": round(stats.user_bytes_written / 1e6, 2),
        "device_mb_written": round(stats.device_bytes_written / 1e6, 2),
        "sstables": stats.sstable_count,
    }
    for key in ("vlog_segments", "vlog_bytes_written", "vlog_gc_relocated",
                "vlog_dead_bytes"):
        if key in stats.extra:
            point[key] = stats.extra[key]
    db.close()
    return point, contents, env.storage


def _manifest_has_vlog_tags(storage, prefix: str) -> bool:
    acct = storage.foreground_account("digest")
    manifest = read_current(storage, acct, prefix)
    if manifest is None:
        return False
    for edit in ManifestReader(storage, manifest).edits(acct):
        if edit.vlog_dead or edit.deleted_vlog_segments:
            return True
    return False


def run_sweep(sweep) -> Dict:
    points = []
    failures = []
    for value_size, num_keys in sweep:
        sep_point, sep_contents, _ = _run_workload(
            value_size, num_keys, SEPARATION_BYTES
        )
        base_point, base_contents, _ = _run_workload(value_size, num_keys, None)
        identical = sep_contents == base_contents
        if not identical:
            failures.append(f"{value_size}B: separated contents diverge")
        points.append(
            {
                "value_size": value_size,
                "num_keys": num_keys,
                "separated": sep_point,
                "baseline": base_point,
                "contents_identical": identical,
            }
        )
        print(
            f"value={value_size:>6}B keys={num_keys:>5}  "
            f"write-amp separated={sep_point['write_amplification']:>6.2f}x "
            f"baseline={base_point['write_amplification']:>6.2f}x  "
            f"contents={'OK' if identical else 'DIVERGED'}"
        )
    largest = points[-1]
    if largest["separated"]["write_amplification"] > WRITE_AMP_CEILING:
        failures.append(
            f"separated write amp {largest['separated']['write_amplification']}x "
            f"at {largest['value_size']}B exceeds the {WRITE_AMP_CEILING}x ceiling"
        )
    return {"points": points, "failures": failures}


def run_identity_check(value_size: int = 4096, num_keys: int = 600) -> Dict:
    """Separation off ⇒ the feature's presence is byte-invisible."""
    failures = []
    _, _, storage_a = _run_workload(value_size, num_keys, None)
    _, _, storage_b = _run_workload(value_size, num_keys, None)
    digests_a = _digests(storage_a, "db/")
    digests_b = _digests(storage_b, "db/")
    if digests_a != digests_b:
        failures.append("separation-off runs are not byte-identical")
    vlg = [name for name in digests_a if name.endswith(".vlg")]
    if vlg:
        failures.append(f"separation-off run created segments: {vlg}")
    if _manifest_has_vlog_tags(storage_a, "db/"):
        failures.append("separation-off MANIFEST carries value-log tags")
    print(
        f"separation-off identity: {len(digests_a)} files, "
        f"digests {'identical' if digests_a == digests_b else 'DIVERGED'}, "
        f"vlog tags {'absent' if not _manifest_has_vlog_tags(storage_a, 'db/') else 'PRESENT'}"
    )
    return {
        "files": len(digests_a),
        "digests_identical": digests_a == digests_b,
        "vlog_artifacts": vlg,
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--contract-only",
        action="store_true",
        help="run only the contract points (64 KiB write amp + "
        "separation-off identity), not the full sweep",
    )
    parser.add_argument("--out", default=str(_JSON_PATH), metavar="PATH")
    args = parser.parse_args(argv)

    sweep = SWEEP[-1:] if args.contract_only else SWEEP
    sweep_report = run_sweep(sweep)
    identity_report = run_identity_check()
    failures = sweep_report["failures"] + identity_report["failures"]
    report = {
        "tool": "bench_vlog",
        "separation_bytes": SEPARATION_BYTES,
        "write_amp_ceiling": WRITE_AMP_CEILING,
        "contract_only": args.contract_only,
        "sweep": sweep_report["points"],
        "separation_off_identity": identity_report,
        "failures": failures,
        "passed": not failures,
    }
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"recorded to {args.out}")
    if failures:
        for failure in failures:
            print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
        return 1
    print("vlog contract: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

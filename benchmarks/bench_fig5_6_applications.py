"""Figure 5.6: YCSB through HyperDex and MongoDB.

Paper 5.6(a): HyperDex with PebblesDB beats HyperDex/HyperLevelDB on
every workload (up to +59% on Load E) but the gain is diluted by
HyperDex's own latency and its read-before-write behaviour.

Paper 5.6(b): MongoDB on an LSM engine beats WiredTiger everywhere;
PebblesDB matches RocksDB's throughput (MongoDB's latency dominates)
while writing ~40% less IO.
"""

from __future__ import annotations

import repro
from repro.analysis import Table
from repro.apps import HyperDexStore, MongoStore, YcsbAppAdapter
from repro.engines.options import StoreOptions
from repro.workloads import YCSB_WORKLOADS, YcsbRunner
from _helpers import print_paper_comparison, run_once

RECORDS = 4000
OPS = 1200


def _bench_options(preset: str) -> StoreOptions:
    # HyperDex configures its engines with small memtables (16 MB paper
    # scale); our presets are already scaled, use them as-is.
    return StoreOptions.for_preset(preset)


def _run_app(app_kind: str, engine: str):
    env = repro.Environment(cache_bytes=RECORDS * (16 + 1024) // 3)
    if engine in ("pebblesdb", "hyperleveldb", "rocksdb", "leveldb"):
        kv = repro.open_store(engine, env.storage, options=_bench_options(engine))
    else:
        kv = repro.open_store(engine, env.storage)
    app = HyperDexStore(kv) if app_kind == "hyperdex" else MongoStore(kv)
    adapter = YcsbAppAdapter(app)
    runner = YcsbRunner(adapter, env.storage, record_count=RECORDS, value_size=1024)
    results = {"Load A": runner.load().kops}
    for name in ("A", "B", "C", "F"):
        results[name] = runner.run(YCSB_WORKLOADS[name], OPS).kops
    results["E"] = runner.run(YCSB_WORKLOADS["E"], max(OPS // 6, 100)).kops
    results["Total-IO-MB"] = kv.stats().device_bytes_written / 1e6
    return results


def test_hyperdex_storage_engines(benchmark):
    def experiment():
        return {
            "rows": {
                engine: _run_app("hyperdex", engine)
                for engine in ("hyperleveldb", "pebblesdb")
            }
        }

    rows = run_once(benchmark, experiment)["rows"]
    phases = ["Load A", "A", "B", "C", "F", "E", "Total-IO-MB"]
    table = Table("Figure 5.6(a) — HyperDex (KOps/s; IO in MB)", ["engine"] + phases)
    for engine, r in rows.items():
        table.add_row(engine, *[f"{r[ph]:.2f}" for ph in phases])
    table.print()

    p, h = rows["pebblesdb"], rows["hyperleveldb"]
    print_paper_comparison(
        "Figure 5.6(a)",
        [
            f"Load A P/H: paper ~1.15x (diluted by app) | measured "
            f"{p['Load A'] / h['Load A']:.2f}x",
            f"gain smaller than raw-KV 2.7x: paper yes | measured "
            f"{p['Load A'] / h['Load A'] < 2.0}",
            f"IO P/H: paper <1x | measured {p['Total-IO-MB'] / h['Total-IO-MB']:.2f}x",
        ],
    )
    assert p["Load A"] >= 0.95 * h["Load A"]
    assert p["Total-IO-MB"] < h["Total-IO-MB"]


def test_mongodb_storage_engines(benchmark):
    def experiment():
        return {
            "rows": {
                engine: _run_app("mongo", engine)
                for engine in ("wiredtiger", "rocksdb", "pebblesdb")
            }
        }

    rows = run_once(benchmark, experiment)["rows"]
    phases = ["Load A", "A", "B", "C", "F", "E", "Total-IO-MB"]
    table = Table("Figure 5.6(b) — MongoDB (KOps/s; IO in MB)", ["engine"] + phases)
    for engine, r in rows.items():
        table.add_row(engine, *[f"{r[ph]:.2f}" for ph in phases])
    table.print()

    wt, rk, p = rows["wiredtiger"], rows["rocksdb"], rows["pebblesdb"]
    print_paper_comparison(
        "Figure 5.6(b)",
        [
            f"LSM engines beat WiredTiger on Load A: paper yes | measured "
            f"{p['Load A'] > wt['Load A'] and rk['Load A'] > wt['Load A']}",
            f"P ~= RocksDB throughput (app-bound): paper yes | measured "
            f"{p['Load A'] / rk['Load A']:.2f}x",
            f"IO P/RocksDB: paper ~0.6x | measured "
            f"{p['Total-IO-MB'] / rk['Total-IO-MB']:.2f}x",
        ],
    )
    assert p["Load A"] > wt["Load A"]
    assert p["Total-IO-MB"] < rk["Total-IO-MB"]

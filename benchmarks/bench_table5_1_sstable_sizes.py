"""Table 5.1: sstable size distribution, PebblesDB vs HyperLevelDB.

Paper (50M pairs, 33 GB): PebblesDB has a higher mean and much fatter
tail (p90 51 MB vs 16.6 MB) because guard fragments are never split at a
target file size, while HyperLevelDB clamps every compaction output.
Fewer, larger files in turn keep more of PebblesDB's index blocks in the
table cache (the Workload C effect).
"""

from __future__ import annotations

from repro.analysis import Table, sstable_size_distribution
from repro.harness import fresh_run, standard_config
from _helpers import print_paper_comparison, run_once

NUM_KEYS = 20000
VALUE_SIZE = 1024


def test_sstable_size_distribution(benchmark):
    def experiment():
        out = {}
        for engine in ("pebblesdb", "hyperleveldb"):
            run = fresh_run(
                engine, standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=11)
            )
            run.bench.fill_random()
            run.db.wait_idle()
            dist = sstable_size_distribution(run.db)
            out[engine] = dist
        return {"dists": out}

    dists = run_once(benchmark, experiment)["dists"]
    table = Table(
        "Table 5.1 — sstable size distribution (KB)",
        ["store", "count", "mean", "median", "p90", "p95"],
    )
    for engine, dist in dists.items():
        table.add_row(
            engine,
            dist.count,
            f"{dist.mean / 1024:.1f}",
            f"{dist.median / 1024:.1f}",
            f"{dist.p90 / 1024:.1f}",
            f"{dist.p95 / 1024:.1f}",
        )
    table.print()

    p, h = dists["pebblesdb"], dists["hyperleveldb"]
    print_paper_comparison(
        "Table 5.1",
        [
            f"PebblesDB fewer files: paper yes | measured {p.count < h.count}",
            f"mean P/H: paper ~1.3x | measured {p.mean / h.mean:.2f}x",
            f"p90 P/H: paper ~3.1x | measured {p.p90 / h.p90:.2f}x",
            f"p95 P/H: paper ~4.1x | measured {p.p95 / h.p95:.2f}x",
        ],
    )
    assert p.count < h.count
    assert p.p95 > h.p95

"""Beyond the paper: device sensitivity (section 6's open question).

The paper notes PebblesDB was not tested on hard drives but predicts
"the write behavior will be similar, although range query performance
may be affected" — HDDs punish the random reads an FLSM seek fans out
across a guard's sstables.  This benchmark runs the core micro-benchmarks
on the HDD model and checks both halves of that prediction.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from repro.sim.device import DeviceModel
from _helpers import print_paper_comparison, run_once

NUM_KEYS = 8000
VALUE_SIZE = 1024
ENGINES = ("pebblesdb", "hyperleveldb")


def _micro(device_factory):
    rows = {}
    for engine in ENGINES:
        cfg = standard_config(
            num_keys=NUM_KEYS,
            value_size=VALUE_SIZE,
            seed=31,
            device_factory=device_factory,
        )
        run = fresh_run(engine, cfg)
        bench = run.bench
        writes = bench.fill_random()
        run.db.compact_all()
        seeks = bench.seek_random(600)
        rows[engine] = {"write": writes.kops, "seek": seeks.kops}
    return rows


def test_hdd_vs_ssd(benchmark):
    def experiment():
        return {
            "ssd": _micro(DeviceModel.ssd_raid0),
            "hdd": _micro(DeviceModel.hdd),
        }

    rows = run_once(benchmark, lambda: {"rows": experiment()})["rows"]
    table = Table(
        "Device sensitivity — SSD-RAID0 vs HDD (KOps/s)",
        ["device", "store", "writes", "seeks"],
    )
    for device in ("ssd", "hdd"):
        for engine in ENGINES:
            r = rows[device][engine]
            table.add_row(device, engine, f"{r['write']:.1f}", f"{r['seek']:.2f}")
    table.print()

    write_ratio_ssd = rows["ssd"]["pebblesdb"]["write"] / rows["ssd"]["hyperleveldb"]["write"]
    write_ratio_hdd = rows["hdd"]["pebblesdb"]["write"] / rows["hdd"]["hyperleveldb"]["write"]
    seek_ratio_ssd = rows["ssd"]["pebblesdb"]["seek"] / rows["ssd"]["hyperleveldb"]["seek"]
    seek_ratio_hdd = rows["hdd"]["pebblesdb"]["seek"] / rows["hdd"]["hyperleveldb"]["seek"]
    print_paper_comparison(
        "Section 6 prediction",
        [
            f"write advantage survives on HDD: paper predicts yes | measured "
            f"P/H = {write_ratio_hdd:.2f}x (SSD: {write_ratio_ssd:.2f}x)",
            f"seek ratio on HDD vs SSD: paper predicts degradation | measured "
            f"{seek_ratio_hdd:.2f}x vs {seek_ratio_ssd:.2f}x",
            f"HDD slows everything: writes "
            f"{rows['ssd']['pebblesdb']['write'] / rows['hdd']['pebblesdb']['write']:.1f}x, "
            f"seeks "
            f"{rows['ssd']['pebblesdb']['seek'] / rows['hdd']['pebblesdb']['seek']:.1f}x",
        ],
    )
    assert write_ratio_hdd > 1.0, "write advantage must survive on HDD"
    assert rows["hdd"]["pebblesdb"]["seek"] < rows["ssd"]["pebblesdb"]["seek"]

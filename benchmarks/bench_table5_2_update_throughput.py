"""Table 5.2: insert then two full update rounds.

Paper (50M x 1KB): throughput drops as the store grows because inserts
stall on compaction; the others fall to ~50% of their initial rate while
PebblesDB keeps ~75%, ending at 2.15x HyperLevelDB.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import KV_STORES, print_paper_comparison, run_once

NUM_KEYS = 12000
VALUE_SIZE = 1024


def test_update_throughput(benchmark):
    def experiment():
        rows = {}
        for engine in KV_STORES:
            run = fresh_run(
                engine, standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=13)
            )
            bench = run.bench
            insert = bench.fill_random()
            round1 = bench.overwrite()
            round2 = bench.overwrite()
            rows[engine] = (insert.kops, round1.kops, round2.kops)
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Table 5.2 — update throughput (KOps/s)",
        ["store", "insert", "update round 1", "update round 2"],
    )
    for engine in KV_STORES:
        i, r1, r2 = rows[engine]
        table.add_row(engine, f"{i:.1f}", f"{r1:.1f}", f"{r2:.1f}")
    table.print()

    p, h = rows["pebblesdb"], rows["hyperleveldb"]
    retention_p = p[2] / p[0]
    retention_h = h[2] / h[0]
    print_paper_comparison(
        "Table 5.2",
        [
            f"PebblesDB fastest in every round: paper yes | measured "
            f"{all(rows['pebblesdb'][i] == max(r[i] for r in rows.values()) for i in range(3))}",
            f"final-round P/H: paper ~2.15x | measured {p[2] / h[2]:.2f}x",
            f"throughput retention P: paper ~75% | measured {retention_p:.0%}",
            f"throughput retention H: paper ~50% | measured {retention_h:.0%}",
        ],
    )
    assert p[2] > h[2]
    assert retention_p > retention_h, "PebblesDB should degrade least"

"""Sections 3.5 and 4.4: the FLSM tuning knobs.

* ``max_sstables_per_guard`` trades write IO for read/seek latency: at 1,
  FLSM behaves like LSM (most write IO, fastest seeks); larger values
  approach pure fragmented behaviour (least IO, slower seeks).
* Guard probability (``top_level_bits``): over-estimating the key count
  (sparser guards than needed) is harmless beyond skew; under-estimating
  floods the store with empty guards, which must stay performance-neutral
  (the Figure 5.4 claim from a different angle).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import print_paper_comparison, run_once

NUM_KEYS = 8000
VALUE_SIZE = 1024


def _run_with(pebbles_overrides):
    cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=33)
    cfg.option_overrides = {"pebblesdb": pebbles_overrides}
    run = fresh_run("pebblesdb", cfg)
    bench = run.bench
    bench.fill_random()
    run.db.wait_idle()
    amp = run.db.stats().write_amplification
    seeks = bench.seek_random(800)
    return amp, seeks.kops


def test_max_sstables_per_guard_tradeoff(benchmark):
    def experiment():
        rows = {}
        for cap in (1, 2, 4, 8):
            rows[cap] = _run_with(
                dict(
                    max_sstables_per_guard=cap,
                    enable_seek_based_compaction=False,
                    enable_aggressive_seek_compaction=False,
                )
            )
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Section 3.5 — max_sstables_per_guard trade-off",
        ["cap", "write amp", "seek KOps/s"],
    )
    for cap, (amp, kops) in rows.items():
        table.add_row(cap, f"{amp:.2f}", f"{kops:.2f}")
    table.print()

    amps = {cap: amp for cap, (amp, _) in rows.items()}
    print_paper_comparison(
        "Section 3.5",
        [
            f"cap=1 writes the most IO (LSM-like): measured "
            f"{amps[1] == max(amps.values())}",
            f"larger caps write less IO: amp(8)={amps[8]:.2f} < amp(1)={amps[1]:.2f}",
            f"paper: 'trade-off more write IO for lower read and range "
            f"query latencies' — measured amp spread "
            f"{amps[1] / amps[8]:.2f}x across the knob",
        ],
    )
    assert amps[1] == max(amps.values()), "cap=1 must write the most IO"
    # Caps 4 and 8 saturate the benefit at this scale; both must sit well
    # below cap=1 and the trend must be downward.
    assert amps[8] < 0.8 * amps[1] and amps[4] < 0.8 * amps[1]
    assert abs(amps[8] - amps[4]) < 0.5


def test_guard_probability_estimation(benchmark):
    def experiment():
        rows = {}
        # Guard density mis-tuning in both directions around the scaled
        # default of 13 bits: low bits = far too many guards for the key
        # count (most end up thin or empty), high bits = almost none
        # (all data concentrates in a few guards — the skew case).
        for label, bits in (
            ("dense/empty guards", 9),
            ("tuned", 13),
            ("sparse/skewed", 19),
        ):
            rows[label] = _run_with(dict(top_level_bits=bits))
        return {"rows": rows}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Section 4.4 — guard probability mis-estimation",
        ["tuning", "write amp", "seek KOps/s"],
    )
    for label, (amp, kops) in rows.items():
        table.add_row(label, f"{amp:.2f}", f"{kops:.2f}")
    table.print()

    tuned_seek = rows["tuned"][1]
    dense_seek = rows["dense/empty guards"][1]
    print_paper_comparison(
        "Section 4.4",
        [
            "paper: mis-estimating the key count is tolerable — surplus "
            "guards sit empty ('harmless'), too few guards skew data",
            f"dense/empty-guard seeks vs tuned: measured "
            f"{dense_seek / tuned_seek:.2f}x (must not collapse)",
            f"sparse/skewed amp vs tuned: measured "
            f"{rows['sparse/skewed'][0] / rows['tuned'][0]:.2f}x "
            f"(rebalance_guards() is the countermeasure, section 7)",
        ],
    )
    # Surplus guards (mostly thin or empty) must not collapse seeks.
    assert dense_seek > 0.5 * tuned_seek
"""Table 5.4 and section 5.5: memory and CPU consumption.

Paper: RocksDB's big memtables dominate its write-phase memory (896 MB);
PebblesDB carries ~300 MB more than HyperLevelDB on reads/seeks because
all sstable-level bloom filters stay resident.  CPU: PebblesDB's median
usage is ~1.7x the others (aggressive compaction).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import KV_STORES, print_paper_comparison, run_once

NUM_KEYS = 10000
VALUE_SIZE = 1024


def test_memory_and_cpu(benchmark):
    def experiment():
        rows = {}
        cpu = {}
        for engine in KV_STORES:
            cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=23)
            # RocksDB's defining trait in this table is its 16x memtable.
            cfg.option_overrides = {"rocksdb": {"memtable_bytes": 1024 * 1024}}
            run = fresh_run(engine, cfg)
            bench = run.bench
            bench.fill_random()
            mem_writes = run.db.stats().memory_bytes
            bench.read_random(2500)
            mem_reads = run.db.stats().memory_bytes
            bench.seek_random(1200)
            mem_seeks = run.db.stats().memory_bytes
            rows[engine] = (mem_writes, mem_reads, mem_seeks)
            # Section 5.5 reports CPU *utilization* during the run: the
            # same work done in less elapsed time is a busier CPU.
            cpu[engine] = run.env.cpu.total() / run.env.now
        return {"rows": rows, "cpu": cpu}

    result = run_once(benchmark, lambda: {"r": experiment()})["r"]
    rows, cpu = result["rows"], result["cpu"]
    table = Table(
        "Table 5.4 — memory consumption (KB) and CPU utilization",
        ["store", "after writes", "after reads", "after seeks", "CPU util"],
    )
    for engine in KV_STORES:
        w, r, s = rows[engine]
        table.add_row(
            engine, f"{w / 1024:.0f}", f"{r / 1024:.0f}", f"{s / 1024:.0f}",
            f"{cpu[engine]:.1%}",
        )
    table.print()

    print_paper_comparison(
        "Table 5.4 / section 5.5",
        [
            f"RocksDB highest write-phase memory (big memtables): paper yes | "
            f"measured {max(rows, key=lambda e: rows[e][0]) == 'rocksdb'}",
            f"PebblesDB read-phase memory >= HyperLevelDB: paper yes | measured "
            f"{rows['pebblesdb'][1] >= rows['hyperleveldb'][1]}",
            f"PebblesDB CPU vs HyperLevelDB: paper ~1.7x | measured "
            f"{cpu['pebblesdb'] / cpu['hyperleveldb']:.2f}x",
        ],
    )
    assert max(rows, key=lambda e: rows[e][0]) == "rocksdb"

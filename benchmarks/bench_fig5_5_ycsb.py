"""Figure 5.5: the YCSB suite (Table 5.3 workloads), four threads.

Paper: PebblesDB beats RocksDB on the write-heavy phases (Load A,
Load E, A) by 1.5-2x, is near parity on read-heavy workloads (B-D, F),
within ~6% on the scan-heavy E, and writes ~2x less total IO than
RocksDB over the whole suite.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from repro.workloads import YCSB_WORKLOADS
from _helpers import KV_STORES, print_paper_comparison, run_once

RECORDS = 8000
OPS = 2500
THREADS = 4


def _run_suite(engine):
    cfg = standard_config(
        num_keys=RECORDS, value_size=1024, threads=THREADS, seed=21
    )
    cfg.option_overrides = {
        eng: {"level0_slowdown_trigger": 20, "level0_stop_trigger": 24}
        for eng in KV_STORES
    }
    run = fresh_run(engine, cfg)
    ycsb = run.ycsb()
    results = {}
    results["Load A"] = ycsb.load("Load A").kops
    for name in ("A", "B", "C", "D", "F"):
        results[name] = ycsb.run(YCSB_WORKLOADS[name], OPS).kops
    # Load E then E, as Table 5.3 prescribes.
    run_e = fresh_run(engine, cfg)
    ycsb_e = run_e.ycsb()
    results["Load E"] = ycsb_e.load("Load E").kops
    results["E"] = ycsb_e.run(YCSB_WORKLOADS["E"], max(OPS // 5, 200)).kops
    total_io = (
        run.db.stats().device_bytes_written + run_e.db.stats().device_bytes_written
    )
    results["Total-IO-MB"] = total_io / 1e6
    return results


def test_ycsb_suite(benchmark):
    def experiment():
        return {"rows": {engine: _run_suite(engine) for engine in KV_STORES}}

    rows = run_once(benchmark, experiment)["rows"]
    phases = ["Load A", "A", "B", "C", "D", "F", "Load E", "E", "Total-IO-MB"]
    table = Table("Figure 5.5 — YCSB (KOps/s; Total-IO in MB)", ["store"] + phases)
    for engine in KV_STORES:
        table.add_row(engine, *[f"{rows[engine][ph]:.1f}" for ph in phases])
    table.print()

    p, r = rows["pebblesdb"], rows["rocksdb"]
    print_paper_comparison(
        "Figure 5.5",
        [
            f"Load A P/RocksDB: paper ~1.5-2x | measured {p['Load A'] / r['Load A']:.2f}x",
            f"Load E P/RocksDB: paper ~1.5-2x | measured {p['Load E'] / r['Load E']:.2f}x",
            f"Workload C near parity: paper ~1x | measured {p['C'] / r['C']:.2f}x",
            f"Workload E overhead small: paper ~6% | measured "
            f"{p['E'] / max(kv['E'] for kv in rows.values()):.2f}x of best",
            f"Total IO P/RocksDB: paper ~0.5x | measured "
            f"{p['Total-IO-MB'] / r['Total-IO-MB']:.2f}x",
        ],
    )
    assert p["Load A"] > r["Load A"], "PebblesDB must win the write-heavy load"
    assert p["Total-IO-MB"] < r["Total-IO-MB"], "PebblesDB must write less IO"

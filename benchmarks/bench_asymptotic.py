"""Section 3.7: asymptotic behaviour of FLSM vs LSM write cost.

The analysis says each FLSM item is written ~once per level (write cost
O(log_B n)) while leveled LSM rewrites each item ~B/2 times per level.
Executable check: as the dataset grows by 4x, write amplification grows
for both, but FLSM's stays well below LSM's and grows more slowly.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import print_paper_comparison, run_once

SIZES = [4000, 12000, 36000]
VALUE_SIZE = 256


def test_amplification_growth(benchmark):
    def experiment():
        curves = {"pebblesdb": [], "hyperleveldb": []}
        for engine in curves:
            for n in SIZES:
                run = fresh_run(
                    engine, standard_config(num_keys=n, value_size=VALUE_SIZE, seed=27)
                )
                run.bench.fill_random()
                run.db.wait_idle()
                curves[engine].append(run.db.stats().write_amplification)
        return {"curves": curves}

    curves = run_once(benchmark, experiment)["curves"]
    table = Table(
        "Section 3.7 — write amplification vs dataset size",
        ["store"] + [f"n={n}" for n in SIZES],
    )
    for engine, amps in curves.items():
        table.add_row(engine, *[f"{a:.2f}" for a in amps])
    table.print()

    p, h = curves["pebblesdb"], curves["hyperleveldb"]
    growth_p = p[-1] - p[0]
    growth_h = h[-1] - h[0]
    print_paper_comparison(
        "Section 3.7",
        [
            f"FLSM amp below LSM at every size: measured "
            f"{all(pa < ha for pa, ha in zip(p, h))}",
            f"FLSM amp growth (first->last): {growth_p:.2f} vs LSM {growth_h:.2f}",
        ],
    )
    assert all(pa < ha for pa, ha in zip(p, h))
    assert growth_p <= growth_h + 0.5

"""Section 5.2 'Impact of Different Optimizations' — the ablation study.

Paper: with no optimizations, range-query throughput drops 66% below
HyperLevelDB's; parallel seeks alone reduce the gap to 48%; seek-based
compaction alone to 7%; sstable bloom filters improve point reads 63%.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.harness import fresh_run, standard_config
from _helpers import print_paper_comparison, run_once

NUM_KEYS = 10000
VALUE_SIZE = 1024

VARIANTS = {
    "all-off": dict(
        enable_sstable_bloom=False,
        enable_parallel_seeks=False,
        enable_seek_based_compaction=False,
        enable_aggressive_seek_compaction=False,
    ),
    "parallel-seeks": dict(
        enable_sstable_bloom=False,
        enable_parallel_seeks=True,
        enable_seek_based_compaction=False,
        enable_aggressive_seek_compaction=False,
    ),
    "seek-compaction": dict(
        enable_sstable_bloom=False,
        enable_parallel_seeks=False,
        enable_seek_based_compaction=True,
        enable_aggressive_seek_compaction=True,
    ),
    "bloom-only": dict(
        enable_sstable_bloom=True,
        enable_parallel_seeks=False,
        enable_seek_based_compaction=False,
        enable_aggressive_seek_compaction=False,
    ),
    "all-on": dict(),
}


def _run_variant(overrides):
    cfg = standard_config(num_keys=NUM_KEYS, value_size=VALUE_SIZE, seed=25)
    if overrides:
        cfg.option_overrides = {"pebblesdb": overrides}
    run = fresh_run("pebblesdb", cfg)
    bench = run.bench
    bench.fill_random()
    reads = bench.read_random(2500)
    seeks = bench.seek_random(1500)
    return {"read": reads.kops, "seek": seeks.kops}


def test_optimization_ablation(benchmark):
    def experiment():
        return {"rows": {name: _run_variant(ov) for name, ov in VARIANTS.items()}}

    rows = run_once(benchmark, experiment)["rows"]
    table = Table(
        "Section 5.2 ablation — PebblesDB optimizations (KOps/s)",
        ["variant", "readrandom", "seekrandom"],
    )
    for name, r in rows.items():
        table.add_row(name, f"{r['read']:.1f}", f"{r['seek']:.1f}")
    table.print()

    print_paper_comparison(
        "Section 5.2 ablation",
        [
            f"bloom filters improve reads: paper +63% | measured "
            f"{rows['bloom-only']['read'] / rows['all-off']['read']:.2f}x",
            f"parallel seeks improve seeks: paper 66%->48% gap | measured "
            f"{rows['parallel-seeks']['seek'] / rows['all-off']['seek']:.2f}x",
            f"seek-compaction improves seeks: paper 66%->7% gap | measured "
            f"{rows['seek-compaction']['seek'] / rows['all-off']['seek']:.2f}x",
            f"everything on is best for seeks: measured "
            f"{rows['all-on']['seek'] >= max(rows['all-off']['seek'], rows['parallel-seeks']['seek'])}",
        ],
    )
    assert rows["bloom-only"]["read"] > rows["all-off"]["read"]
    assert rows["seek-compaction"]["seek"] > rows["all-off"]["seek"]
    assert rows["all-on"]["seek"] >= rows["all-off"]["seek"]

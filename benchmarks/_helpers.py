"""Shared helpers for the per-figure/table benchmark suite.

Every benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (the workloads are stateful), prints the rows the
paper's figure or table reports, and attaches the simulated metrics to
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.

Wall-clock numbers measured by pytest-benchmark tell you how long the
*simulation* took; the reproduced quantities (KOps/s, GB written,
amplification) are simulated and printed/recorded explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis import Table

#: The paper's four key-value stores, in its usual presentation order.
KV_STORES = ["pebblesdb", "hyperleveldb", "leveldb", "rocksdb"]


def run_once(benchmark, fn: Callable[[], Dict]) -> Dict:
    """Execute ``fn`` once under pytest-benchmark and return its result."""
    holder: Dict = {}

    def wrapper():
        holder["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    result = holder["result"]
    for key, value in result.items():
        if isinstance(value, (int, float, str)):
            benchmark.extra_info[key] = value
    return result


def print_paper_comparison(title: str, lines) -> None:
    """Emit a 'paper vs measured' block under the result table."""
    print()
    print(f"--- {title}: paper vs measured ---")
    for line in lines:
        print(f"  {line}")
    print()


def relative_table(title: str, metric: str, values: Dict[str, float], baseline: str) -> Table:
    """Table of absolute + relative-to-baseline values (paper bar style)."""
    table = Table(title, ["store", metric, f"vs {baseline}"])
    base = values[baseline]
    for store, value in values.items():
        rel = value / base if base else float("nan")
        table.add_row(store, f"{value:.2f}", f"{rel:.2f}x")
    return table

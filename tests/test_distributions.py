"""Request distributions and key/value encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.distributions import (
    KeyCodec,
    LatestGenerator,
    ScrambledZipfianGenerator,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    value_bytes,
    zipf_sanity_skew,
)


class TestKeyCodec:
    def test_fixed_width(self):
        codec = KeyCodec(16)
        key = codec.encode(123)
        assert len(key) == 16
        assert key.startswith(b"user")
        assert codec.decode(key) == 123

    def test_order_preserving(self):
        codec = KeyCodec(16)
        keys = [codec.encode(i) for i in (0, 5, 99, 100000)]
        assert keys == sorted(keys)

    @given(st.integers(min_value=0, max_value=10**11))
    def test_roundtrip(self, i):
        codec = KeyCodec(16)
        assert codec.decode(codec.encode(i)) == i

    def test_width_validation(self):
        with pytest.raises(ValueError):
            KeyCodec(3)


class TestValueBytes:
    def test_deterministic_and_sized(self):
        assert value_bytes(7, 100) == value_bytes(7, 100)
        assert len(value_bytes(7, 100)) == 100
        assert value_bytes(7, 100) != value_bytes(8, 100)


class TestGenerators:
    def test_sequential(self):
        gen = SequentialGenerator()
        assert [gen.next() for _ in range(4)] == [0, 1, 2, 3]

    def test_uniform_in_range(self):
        gen = UniformGenerator(100, seed=1)
        samples = [gen.next() for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)
        assert len(set(samples)) > 80  # covers most of the space

    def test_zipfian_skew(self):
        gen = ZipfianGenerator(10000, seed=2)
        skew = zipf_sanity_skew(gen, samples=20000)
        # Zipfian-0.99: hottest 1% of items take a large share of requests.
        assert skew > 0.3

    def test_zipfian_in_range(self):
        gen = ZipfianGenerator(500, seed=3)
        assert all(0 <= gen.next() < 500 for _ in range(5000))

    def test_zipfian_rank_zero_hottest(self):
        gen = ZipfianGenerator(1000, seed=4)
        counts = {}
        for _ in range(20000):
            v = gen.next()
            counts[v] = counts.get(v, 0) + 1
        assert counts.get(0, 0) == max(counts.values())

    def test_zipfian_grow_extends_range(self):
        gen = ZipfianGenerator(100, seed=5)
        gen.grow(200)
        assert gen.item_count == 200
        assert all(0 <= gen.next() < 200 for _ in range(1000))

    def test_scrambled_spreads_hot_items(self):
        gen = ScrambledZipfianGenerator(10000, seed=6)
        samples = [gen.next() for _ in range(5000)]
        hot = [s for s in samples if s < 100]
        # After scrambling, low indexes are no longer the hot set.
        assert len(hot) < len(samples) * 0.15

    def test_latest_prefers_recent(self):
        gen = LatestGenerator(1000, seed=7)
        samples = [gen.next() for _ in range(5000)]
        recent = sum(1 for s in samples if s >= 900)
        assert recent > len(samples) * 0.5
        assert all(0 <= s < 1000 for s in samples)

    def test_deterministic_given_seed(self):
        a = ZipfianGenerator(1000, seed=8)
        b = ZipfianGenerator(1000, seed=8)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_invalid_item_count(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            UniformGenerator(0)

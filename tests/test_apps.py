"""NoSQL application layers: document codec, HyperDex, MongoDB, adapter."""

import pytest

import repro
from repro.apps import (
    HyperDexStore,
    MongoStore,
    YcsbAppAdapter,
    decode_document,
    encode_document,
)
from repro.errors import InvalidArgumentError
from repro.workloads import YCSB_WORKLOADS, YcsbRunner
from hypothesis import given, settings, strategies as st


class TestDocumentCodec:
    def test_roundtrip_mixed_types(self):
        doc = {"name": "alice", "age": 30, "blob": b"\x00\xff", "neg": -5}
        assert decode_document(encode_document(doc)) == doc

    def test_empty_document(self):
        assert decode_document(encode_document({})) == {}

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            encode_document({"flag": True})

    @given(
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(
                st.binary(max_size=32),
                st.text(max_size=16),
                st.integers(min_value=-(2**62), max_value=2**62),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, doc):
        assert decode_document(encode_document(doc)) == doc


@pytest.fixture
def hyperdex():
    env = repro.Environment(cache_bytes=1 << 20)
    kv = repro.open_store("pebblesdb", env.storage)
    store = HyperDexStore(kv)
    store.add_space("users", ["city", "team"])
    return store, env


class TestHyperDex:
    def test_put_get(self, hyperdex):
        store, _ = hyperdex
        store.put("users", b"u1", {"city": "austin", "age": 31})
        assert store.get("users", b"u1") == {"city": "austin", "age": 31}

    def test_search_by_attribute(self, hyperdex):
        store, _ = hyperdex
        for i, city in enumerate(["austin", "austin", "shanghai"]):
            store.put("users", b"u%d" % i, {"city": city})
        assert sorted(store.search("users", "city", "austin")) == [b"u0", b"u1"]

    def test_update_moves_index_entry(self, hyperdex):
        store, _ = hyperdex
        store.put("users", b"u1", {"city": "austin"})
        store.put("users", b"u1", {"city": "tokyo"})
        assert store.search("users", "city", "austin") == []
        assert store.search("users", "city", "tokyo") == [b"u1"]

    def test_delete_cleans_indexes(self, hyperdex):
        store, _ = hyperdex
        store.put("users", b"u1", {"city": "austin"})
        assert store.delete("users", b"u1")
        assert store.get("users", b"u1") is None
        assert store.search("users", "city", "austin") == []
        assert not store.delete("users", b"u1")

    def test_unsearchable_attribute_rejected(self, hyperdex):
        store, _ = hyperdex
        with pytest.raises(InvalidArgumentError):
            store.search("users", "age", 31)

    def test_unknown_space_rejected(self, hyperdex):
        store, _ = hyperdex
        with pytest.raises(InvalidArgumentError):
            store.get("nope", b"k")

    def test_scan_in_key_order(self, hyperdex):
        store, _ = hyperdex
        for key in (b"c", b"a", b"b"):
            store.put("users", key, {"city": "x"})
        got = [k for k, _ in store.scan("users", b"a")]
        assert got == [b"a", b"b", b"c"]

    def test_read_before_write_costs_more_time(self):
        times = {}
        for rbw in (True, False):
            env = repro.Environment(cache_bytes=512 * 1024)
            kv = repro.open_store("pebblesdb", env.storage)
            store = HyperDexStore(kv, read_before_write=rbw, app_overhead=0.0)
            store.add_space("s", [])
            # Build a dataset large enough that gets cost real IO.
            for i in range(1500):
                store.put("s", b"k%06d" % i, {"v": b"x" * 256})
            t0 = env.now
            for i in range(500):
                store.put("s", b"k%06d" % i, {"v": b"y" * 256})
            times[rbw] = env.now - t0
        assert times[True] > times[False]


@pytest.fixture
def mongo():
    env = repro.Environment(cache_bytes=1 << 20)
    kv = repro.open_store("wiredtiger", env.storage)
    return MongoStore(kv), env


class TestMongo:
    def test_insert_assigns_id(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        doc_id = coll.insert_one({"x": 1})
        assert coll.find_one(doc_id) == {"_id": doc_id, "x": 1}

    def test_update_merges_fields(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        doc_id = coll.insert_one({"x": 1, "y": 2})
        assert coll.update_one(doc_id, {"y": 3, "z": 4})
        assert coll.find_one(doc_id) == {"_id": doc_id, "x": 1, "y": 3, "z": 4}
        assert not coll.update_one(b"missing", {"x": 0})

    def test_secondary_index_query(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        coll.create_index("team")
        a = coll.insert_one({"team": "red"})
        coll.insert_one({"team": "blue"})
        found = coll.find_by("team", "red")
        assert [d["_id"] for d in found] == [a]

    def test_index_backfills_existing_docs(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        doc_id = coll.insert_one({"team": "red"})
        coll.create_index("team")
        assert [d["_id"] for d in coll.find_by("team", "red")] == [doc_id]

    def test_index_updated_on_update(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        coll.create_index("team")
        doc_id = coll.insert_one({"team": "red"})
        coll.update_one(doc_id, {"team": "blue"})
        assert coll.find_by("team", "red") == []
        assert [d["_id"] for d in coll.find_by("team", "blue")] == [doc_id]

    def test_delete_removes_doc_and_index(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        coll.create_index("team")
        doc_id = coll.insert_one({"team": "red"})
        assert coll.delete_one(doc_id)
        assert coll.find_one(doc_id) is None
        assert coll.find_by("team", "red") == []

    def test_unindexed_query_rejected(self, mongo):
        store, _ = mongo
        with pytest.raises(InvalidArgumentError):
            store.collection("c").find_by("nope", 1)

    def test_collections_isolated(self, mongo):
        store, _ = mongo
        a = store.collection("a")
        b = store.collection("b")
        a.insert_one({"_id": b"k", "v": 1})
        assert b.find_one(b"k") is None

    def test_scan(self, mongo):
        store, _ = mongo
        coll = store.collection("c")
        for key in (b"k2", b"k1", b"k3"):
            coll.insert_one({"_id": key})
        assert [k for k, _ in coll.scan()] == [b"k1", b"k2", b"k3"]


class TestAdapter:
    @pytest.mark.parametrize("app_kind", ["hyperdex", "mongo"])
    def test_ycsb_through_app(self, app_kind):
        env = repro.Environment(cache_bytes=1 << 20)
        kv = repro.open_store("pebblesdb", env.storage)
        app = HyperDexStore(kv) if app_kind == "hyperdex" else MongoStore(kv)
        adapter = YcsbAppAdapter(app)
        runner = YcsbRunner(adapter, env.storage, record_count=400, value_size=128)
        runner.load()
        for name in ("A", "E"):
            result = runner.run(YCSB_WORKLOADS[name], 100)
            assert result.ops == 100

    def test_adapter_roundtrip(self):
        env = repro.Environment(cache_bytes=1 << 20)
        kv = repro.open_store("pebblesdb", env.storage)
        adapter = YcsbAppAdapter(HyperDexStore(kv))
        adapter.put(b"k1", b"v1")
        assert adapter.get(b"k1") == b"v1"
        adapter.put(b"k2", b"v2")
        it = adapter.seek(b"k1")
        assert (it.key(), it.value()) == (b"k1", b"v1")
        it.next()
        assert it.key() == b"k2"
        adapter.delete(b"k1")
        assert adapter.get(b"k1") is None

    def test_app_overhead_dilutes_engine_gain(self):
        """Paper section 5.4: app latency shrinks PebblesDB's advantage."""
        throughput = {}
        for overhead in (0.0, 150e-6):
            env = repro.Environment(cache_bytes=512 * 1024)
            kv = repro.open_store("pebblesdb", env.storage)
            app = HyperDexStore(kv, app_overhead=overhead)
            adapter = YcsbAppAdapter(app)
            t0 = env.now
            for i in range(500):
                adapter.put(b"k%05d" % i, b"v" * 128)
            throughput[overhead] = 500 / (env.now - t0)
        assert throughput[0.0] > 2 * throughput[150e-6]


class TestHyperDexRangeSearch:
    def test_range_over_int_attribute(self, hyperdex):
        store, _ = hyperdex
        store.add_space("emp", ["level"])
        for i, level in enumerate([3, 5, 7, 9, 11]):
            store.put("emp", b"e%d" % i, {"level": level})
        assert sorted(store.search_range("emp", "level", 5, 9)) == [b"e1", b"e2", b"e3"]

    def test_range_over_string_attribute(self, hyperdex):
        store, _ = hyperdex
        for key, city in [(b"a", "austin"), (b"b", "boston"), (b"s", "shanghai")]:
            store.put("users", key, {"city": city})
        assert sorted(store.search_range("users", "city", "a", "c")) == [b"a", b"b"]

    def test_range_empty_result(self, hyperdex):
        store, _ = hyperdex
        store.put("users", b"x", {"city": "austin"})
        assert store.search_range("users", "city", "y", "z") == []

    def test_range_unsearchable_rejected(self, hyperdex):
        store, _ = hyperdex
        with pytest.raises(InvalidArgumentError):
            store.search_range("users", "age", 1, 2)

    def test_range_reflects_updates(self, hyperdex):
        store, _ = hyperdex
        store.add_space("emp", ["level"])
        store.put("emp", b"e", {"level": 5})
        store.put("emp", b"e", {"level": 50})
        assert store.search_range("emp", "level", 1, 10) == []
        assert store.search_range("emp", "level", 40, 60) == [b"e"]

"""Bloom filter: no false negatives, bounded false positives, codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bloom import BloomFilter
from repro.errors import CorruptionError


class TestMembership:
    @given(st.sets(st.binary(min_size=1, max_size=24), max_size=200))
    @settings(max_examples=50)
    def test_no_false_negatives(self, keys):
        filt = BloomFilter.for_keys(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_false_positive_rate_near_theory(self):
        n = 5000
        keys = [b"present%08d" % i for i in range(n)]
        filt = BloomFilter.for_keys(keys, bits_per_key=10)
        probes = [b"absent%09d" % i for i in range(n)]
        fp = sum(1 for p in probes if filt.may_contain(p)) / n
        # ~0.8% expected at 10 bits/key; allow generous slack.
        assert fp < 0.05
        assert filt.expected_fpr() < 0.02

    def test_more_bits_fewer_false_positives(self):
        keys = [b"k%06d" % i for i in range(2000)]
        probes = [b"p%06d" % i for i in range(2000)]
        fp = {}
        for bits in (4, 16):
            filt = BloomFilter.for_keys(keys, bits_per_key=bits)
            fp[bits] = sum(1 for p in probes if filt.may_contain(p))
        assert fp[16] < fp[4]

    def test_empty_filter_rejects_everything_gracefully(self):
        filt = BloomFilter(0)
        assert filt.expected_fpr() == 0.0
        # may_contain may return False for anything; must not crash.
        filt.may_contain(b"x")


class TestCodec:
    @given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_encode_decode_preserves_membership(self, keys):
        filt = BloomFilter.for_keys(keys)
        clone = BloomFilter.decode(filt.encode())
        assert all(clone.may_contain(k) for k in keys)
        assert clone.num_probes == filt.num_probes
        assert clone.keys_added == filt.keys_added

    def test_decode_rejects_garbage(self):
        with pytest.raises(CorruptionError):
            BloomFilter.decode(b"not a bloom filter")

    def test_decode_rejects_truncated(self):
        filt = BloomFilter.for_keys([b"a", b"b"])
        with pytest.raises(CorruptionError):
            BloomFilter.decode(filt.encode()[:-3])


class TestSizing:
    def test_size_scales_with_keys(self):
        small = BloomFilter(100)
        large = BloomFilter(10000)
        assert large.size_bytes > small.size_bytes

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BloomFilter(-1)
        with pytest.raises(ValueError):
            BloomFilter(10, bits_per_key=0)

    def test_probe_count_clamped(self):
        assert 1 <= BloomFilter(10, bits_per_key=1).num_probes <= 30
        assert BloomFilter(10, bits_per_key=100).num_probes <= 30

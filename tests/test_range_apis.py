"""compact_range and approximate_size (LevelDB management APIs)."""

import random

import pytest

import repro
from repro.errors import InvalidArgumentError
from tests.conftest import make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


def fill_two_regions(db, n_each=800):
    model = {}
    rng = random.Random(13)
    for i in range(n_each):
        k = b"aa%06d" % rng.randrange(10**5)
        v = b"v" * 64
        db.put(k, v)
        model[k] = v
    for i in range(n_each):
        k = b"zz%06d" % rng.randrange(10**5)
        v = b"w" * 64
        db.put(k, v)
        model[k] = v
    return model


class TestApproximateSize:
    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_regions_sized_separately(self, engine, env):
        db = make_store(engine, env)
        fill_two_regions(db)
        db.flush_memtable()
        db.wait_idle()
        size_a = db.approximate_size(b"aa", b"ab")
        size_z = db.approximate_size(b"zz", b"z{")
        size_none = db.approximate_size(b"mm", b"nn")
        total = db.approximate_size(b"\x00", b"\xff")
        assert size_a > 0 and size_z > 0
        assert size_none < min(size_a, size_z)
        assert total >= max(size_a, size_z)
        # The two halves roughly partition the total.
        assert 0.3 < size_a / total < 0.8

    def test_empty_store(self, env):
        db = make_store("pebblesdb", env)
        assert db.approximate_size(b"a", b"z") == 0

    def test_bad_range_rejected(self, env):
        db = make_store("pebblesdb", env)
        with pytest.raises(InvalidArgumentError):
            db.approximate_size(b"z", b"a")


class TestCompactRange:
    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_range_data_preserved(self, engine, env):
        db = make_store(engine, env)
        model = fill_two_regions(db)
        db.compact_range(b"aa", b"ab")
        db.check_invariants()
        assert dict(db.scan()) == model

    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_range_tombstones_collected(self, engine, env):
        db = make_store(engine, env)
        model = fill_two_regions(db)
        for k in [key for key in model if key.startswith(b"aa")]:
            db.delete(k)
            del model[k]
        before = db.approximate_size(b"aa", b"ab")
        db.compact_range(b"aa", b"ab")
        db.compact_range(b"aa", b"ab")  # second pass reaches the bottom
        after = db.approximate_size(b"aa", b"ab")
        assert after < before
        assert dict(db.scan()) == model
        db.check_invariants()

    def test_compact_range_leaves_other_region_shallow(self, env):
        """Targeted compaction must not disturb unrelated key ranges."""
        db = make_store("hyperleveldb", env)
        fill_two_regions(db)
        db.flush_memtable()
        db.wait_idle()
        files_z_before = [
            f.number for f in db.live_files() if f.smallest.user_key >= b"zz"
        ]
        db.compact_range(b"aa", b"ab")
        files_z_after = [
            f.number for f in db.live_files() if f.smallest.user_key >= b"zz"
        ]
        # Some zz-region files may ride along via Level-0 overlap, but the
        # bulk of the region must be untouched.
        survivors = set(files_z_before) & set(files_z_after)
        assert len(survivors) >= len(files_z_before) // 2

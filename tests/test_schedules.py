"""Schedule exploration for the guard-parallel compaction scheduler.

The conflict map admits many legal schedules: any claim-disjoint set of
guard compactions may run concurrently, and the dispatch policy decides
which runnable candidate is submitted first.  Correctness must not
depend on the schedule — every get/scan must match the in-memory-model
oracle (the ``test_engine_model.py`` contract) under *every* dispatch
order and worker count — while a fixed (seed, worker count, policy) must
replay the exact same schedule, down to MANIFEST bytes.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

import pytest

import repro
from repro.engines.base import StoreStats
from tests.conftest import make_store

WORKERS = [1, 2, 4]
#: Seeds for the randomized dispatch policies (>= 20 per the acceptance
#: criteria, exercised at 4 workers where the schedule space is widest).
PERMUTATION_SEEDS = list(range(20))


def _run_workload(
    workers: int,
    policy_seed: int = None,
    scheduler: str = "guard",
    steps: int = 1100,
    check_gets: bool = True,
) -> Tuple[Dict[bytes, bytes], repro.Environment, object]:
    """One keyed workload run; returns (model, env, db) after wait_idle."""
    env = repro.Environment(cache_bytes=1 << 20)
    db = make_store(
        "pebblesdb",
        env,
        background_workers=workers,
        compaction_scheduler=scheduler,
    )
    if policy_seed is not None:
        rng = random.Random(policy_seed)
        db.set_dispatch_policy(lambda candidates: rng.randrange(len(candidates)))
    ops = random.Random(1234)
    model: Dict[bytes, bytes] = {}
    keyspace = [b"key%05d" % i for i in range(250)]
    for step in range(steps):
        key = ops.choice(keyspace)
        action = ops.random()
        if action < 0.6:
            # Values fat enough that the workload spans many flushes and
            # guard compactions — otherwise there is no schedule to vary.
            value = (b"v%06d" % step) * 24
            db.put(key, value)
            model[key] = value
        elif action < 0.75:
            db.delete(key)
            model.pop(key, None)
        elif check_gets:
            # The oracle check mid-run: the schedule in progress must
            # never surface a stale or phantom value.
            assert db.get(key) == model.get(key), (workers, policy_seed, step)
    db.wait_idle()
    db.check_invariants()
    return model, env, db


def _scan_state(db) -> Dict[bytes, bytes]:
    return dict(db.scan())


class TestScheduleExploration:
    def test_baseline_matches_oracle(self):
        model, _, db = _run_workload(workers=1)
        assert _scan_state(db) == model

    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("policy_seed", PERMUTATION_SEEDS[:4])
    def test_workers_and_policies_match_oracle(self, workers, policy_seed):
        """Every (worker count, dispatch permutation) pair is the oracle."""
        model, _, db = _run_workload(workers=workers, policy_seed=policy_seed)
        assert _scan_state(db) == model

    @pytest.mark.parametrize("policy_seed", PERMUTATION_SEEDS)
    def test_dispatch_permutations_identical_state(self, policy_seed):
        """20 seeded permutations of ready-job dispatch order at 4 workers
        all converge to the identical user-visible state."""
        model, _, db = _run_workload(
            workers=4, policy_seed=policy_seed, check_gets=False
        )
        assert _scan_state(db) == model

    def test_parallelism_actually_happens(self):
        """The schedule space being explored is real: at 4 workers the
        default policy overlaps compactions."""
        _, _, db = _run_workload(workers=4, check_gets=False)
        assert db.stats().compactions_parallel_peak >= 2

    def test_schedules_survive_crash_recovery(self):
        """A permuted schedule leaves a recoverable store behind."""
        model, env, db = _run_workload(workers=4, policy_seed=3, check_gets=False)
        db.flush_memtable()
        db.wait_idle()
        env.storage.crash()
        db2 = make_store("pebblesdb", env, background_workers=4)
        assert _scan_state(db2) == model
        db2.check_invariants()


def _manifest_bytes(env: repro.Environment) -> bytes:
    """Raw bytes of the live MANIFEST file."""
    acct = env.storage.foreground_account("test")
    names = sorted(
        n for n in env.storage.list_files("db/") if n.startswith("db/MANIFEST-")
    )
    assert names, "no MANIFEST file found"
    return b"".join(
        env.storage.read(name, 0, env.storage.size(name), acct) for name in names
    )


def _compaction_counters(stats: StoreStats) -> tuple:
    return (
        stats.compactions,
        stats.compaction_bytes_written,
        stats.flushes,
        stats.compaction_conflicts,
        stats.compactions_parallel_peak,
        round(stats.conflict_stall_seconds, 9),
        round(stats.stall_seconds, 9),
    )


class TestSchedulingDeterminism:
    """Guards against wall-clock or dict-order leaks into scheduling."""

    def test_same_seed_workers4_byte_identical(self):
        runs = []
        for _ in range(2):
            model, env, db = _run_workload(workers=4, check_gets=False)
            runs.append(
                (
                    model,
                    _manifest_bytes(env),
                    _compaction_counters(db.stats()),
                    round(env.clock.now, 12),
                )
            )
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1], "MANIFEST bytes diverged between runs"
        assert runs[0][2] == runs[1][2], "compaction counters diverged"
        assert runs[0][3] == runs[1][3], "simulated clock diverged"

    def test_same_seed_same_policy_byte_identical(self):
        """Determinism also holds under a seeded random dispatch policy."""
        runs = []
        for _ in range(2):
            _, env, db = _run_workload(workers=4, policy_seed=11, check_gets=False)
            runs.append((_manifest_bytes(env), _compaction_counters(db.stats())))
        assert runs[0] == runs[1]

    def test_worker_count_changes_schedule_not_state(self):
        """Completion order is a function of (seed, workers): different
        worker counts may differ in schedule but never in state."""
        state = {}
        for workers in WORKERS:
            model, _, db = _run_workload(workers=workers, check_gets=False)
            state[workers] = (_scan_state(db), model)
        for workers, (got, model) in state.items():
            assert got == model, f"workers={workers} diverged from the oracle"

"""WindowedHistogram: rotation boundaries, partial-window merge, and
byte-identical summaries across sharded and single-reducer views.

The stability bench and ``repro-trace stalls`` both reduce latency
streams through :class:`repro.obs.WindowedHistogram`; these tests pin
the window arithmetic (half-open boundaries), prove merging per-shard
reducers is exactly equivalent to recording everything on one reducer
(partial windows included), and hold the same determinism bar as
``test_obs.py``: same seed, byte-identical text output.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.obs import SUMMARY_PERCENTILES, WindowedHistogram
from tests.conftest import make_store


# ----------------------------------------------------------------------
# Window rotation
# ----------------------------------------------------------------------
class TestWindowRotation:
    def test_half_open_boundaries(self):
        wh = WindowedHistogram(0.002)
        assert wh.window_index(0.0) == 0
        assert wh.window_index(0.0019999) == 0
        # A sample recorded exactly on a boundary starts the next window.
        assert wh.window_index(0.002) == 1
        assert wh.window_index(0.004) == 2

    def test_record_rotates_on_the_boundary(self):
        wh = WindowedHistogram(1.0)
        wh.record(0.999999, 1e-3)
        wh.record(1.0, 2e-3)
        wh.record(1.000001, 3e-3)
        assert len(wh) == 2
        assert wh.window(0).count == 1
        assert wh.window(1).count == 2
        assert wh.window(2) is None

    def test_gaps_are_skipped_not_zero_filled(self):
        wh = WindowedHistogram(1.0)
        wh.record(0.5, 1e-3)
        wh.record(10.5, 1e-3)
        assert [index for index, _ in wh.windows()] == [0, 10]
        assert wh.total_count == 2

    def test_worst_and_worst_window(self):
        wh = WindowedHistogram(1.0)
        for at, value in ((0.1, 1e-4), (1.1, 5e-2), (2.1, 1e-4)):
            wh.record(at, value)
        assert wh.worst_window(0.99) == 1
        assert wh.worst(0.99) == wh.window(1).percentile(0.99)
        series = wh.percentile_series(0.99)
        assert [index for index, _ in series] == [0, 1, 2]
        assert max(value for _, value in series) == wh.worst(0.99)

    def test_empty_reducer_is_falsy_with_zero_worst(self):
        wh = WindowedHistogram(1.0)
        assert not wh
        assert wh.worst(0.99) == 0.0
        assert wh.worst_window(0.99) is None
        assert wh.summary() == []
        assert wh.to_text() == ""

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedHistogram(0.0)


# ----------------------------------------------------------------------
# Merging partial windows
# ----------------------------------------------------------------------
def _stream(n=4000, seed=13, span=0.08):
    rng = random.Random(seed)
    samples = []
    for _ in range(n):
        at = rng.random() * span
        # Mostly-fast latencies with a heavy tail, like a stall spike.
        value = rng.random() * 1e-4 + (5e-3 if rng.random() < 0.02 else 0.0)
        samples.append((at, value))
    return samples


class TestMerge:
    def test_split_mid_window_merge_equals_single_reducer(self):
        """Two shards that each saw half of every window must merge into
        exactly the reducer that saw all samples — bytes included."""
        samples = _stream()
        single = WindowedHistogram(0.002)
        for at, value in samples:
            single.record(at, value)
        left, right = WindowedHistogram(0.002), WindowedHistogram(0.002)
        half = len(samples) // 2  # cuts windows mid-stream on both sides
        for at, value in samples[:half]:
            left.record(at, value)
        for at, value in samples[half:]:
            right.record(at, value)
        left.merge(right)
        assert left.to_text() == single.to_text()
        assert left.total_count == single.total_count
        # Counts and bucketed quantiles are exact; only the running mean
        # may differ in the last ulp from the different addition order.
        for mine, theirs in zip(left.summary(), single.summary()):
            assert mine["count"] == theirs["count"]
            assert mine["max"] == theirs["max"]
            for name, _ in SUMMARY_PERCENTILES:
                assert mine[name] == theirs[name]
            assert mine["mean"] == pytest.approx(theirs["mean"])

    def test_four_shard_partition_merges_byte_identical(self):
        """The test_obs bar, applied to windows: partition the sample
        stream across 4 per-shard reducers (round-robin, the way a
        router sprays writes), merge, and compare text byte-for-byte
        with the single-reducer run."""
        samples = _stream()
        single = WindowedHistogram(0.002)
        for at, value in samples:
            single.record(at, value)
        shards = [WindowedHistogram(0.002) for _ in range(4)]
        for i, (at, value) in enumerate(samples):
            shards[i % 4].record(at, value)
        merged = WindowedHistogram(0.002)
        for shard in shards:
            merged.merge(shard)
        assert merged.to_text() == single.to_text()
        # Merge order must not matter either.
        reverse = WindowedHistogram(0.002)
        for shard in reversed(shards):
            reverse.merge(shard)
        assert reverse.to_text() == single.to_text()

    def test_merge_rejects_mismatched_widths_and_bucketing(self):
        wh = WindowedHistogram(0.002)
        with pytest.raises(ValueError):
            wh.merge(WindowedHistogram(0.004))
        with pytest.raises(ValueError):
            wh.merge(WindowedHistogram(0.002, lo=1.0))

    def test_merge_into_empty_is_a_copy(self):
        source = WindowedHistogram(0.002)
        for at, value in _stream(n=500):
            source.record(at, value)
        target = WindowedHistogram(0.002)
        target.merge(source)
        assert target.to_text() == source.to_text()

    def test_merge_of_two_empties_is_empty(self):
        a, b = WindowedHistogram(0.002), WindowedHistogram(0.002)
        a.merge(b)
        assert a.total_count == 0
        assert a.summary() == []

    def test_merging_empty_changes_nothing(self):
        full = WindowedHistogram(0.002)
        for at, value in _stream(n=500):
            full.record(at, value)
        before = full.to_text()
        full.merge(WindowedHistogram(0.002))
        assert full.to_text() == before

    def test_partial_final_window_survives_merge(self):
        """A stream that ends mid-window still merges exactly: the
        partial window's samples must not be dropped or rounded into a
        full window."""
        width = 0.002
        single = WindowedHistogram(width)
        left, right = WindowedHistogram(width), WindowedHistogram(width)
        samples = _stream(n=501)  # odd count → final window is partial
        for i, (at, value) in enumerate(samples):
            single.record(at, value)
            (left if i % 2 == 0 else right).record(at, value)
        last = max(single.window_index(at) for at, _ in samples)
        left.merge(right)
        assert left.to_text() == single.to_text()
        merged_last = max(i for i, _ in left.percentile_series(0.99))
        assert merged_last == last  # the partial window is present

    def test_merge_with_copy_of_self_doubles_counts_not_percentiles(self):
        """Self-merge sanity: counts double while every percentile stays
        within its bucket (the distribution is identical; only the
        intra-bucket rank interpolation shifts)."""
        from repro.obs.metrics import HIST_GROWTH

        mine = WindowedHistogram(0.002)
        twin = WindowedHistogram(0.002)
        for at, value in _stream(n=400):
            mine.record(at, value)
            twin.record(at, value)
        solo_summary = [dict(row) for row in mine.summary()]
        mine.merge(twin)
        assert mine.total_count == 2 * sum(r["count"] for r in solo_summary)
        for merged, solo in zip(mine.summary(), solo_summary):
            assert merged["count"] == 2 * solo["count"]
            assert merged["max"] == solo["max"]
            for name, _ in SUMMARY_PERCENTILES:
                assert merged[name] == pytest.approx(
                    solo[name], rel=HIST_GROWTH - 1.0
                )


# ----------------------------------------------------------------------
# Summary format
# ----------------------------------------------------------------------
class TestSummaryFormat:
    def test_summary_rows_carry_every_contract_percentile(self):
        wh = WindowedHistogram(0.01)
        for at, value in _stream(n=300):
            wh.record(at, value)
        rows = wh.summary()
        assert rows == sorted(rows, key=lambda r: r["window"])
        names = [name for name, _ in SUMMARY_PERCENTILES]
        for row in rows:
            assert set(names) <= set(row)
            assert row["start"] == row["window"] * wh.window_seconds
            assert row["count"] > 0
            # Quantiles are monotone within a row.
            values = [row[name] for name in names]
            assert values == sorted(values)
            assert row["max"] >= values[-1] * 0.0  # max present and >= 0

    def test_same_stream_same_text(self):
        a, b = WindowedHistogram(0.002), WindowedHistogram(0.002)
        for at, value in _stream():
            a.record(at, value)
        for at, value in _stream():
            b.record(at, value)
        assert a.to_text() == b.to_text()
        assert a.to_text()  # non-empty: the format test means something


# ----------------------------------------------------------------------
# End to end: engine workload -> windowed latencies, deterministically
# ----------------------------------------------------------------------
class TestEngineWindowDeterminism:
    def _run(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(
            "pebblesdb",
            env,
            background_workers=1,
            max_immutable_memtables=1,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=3,
            level0_stop_trigger=6,
            backpressure="graduated",
        )
        windows = WindowedHistogram(0.002)
        rng = random.Random(21)
        for step in range(2500):
            key = b"key%05d" % rng.randrange(300)
            before = env.clock.now
            db.put(key, (b"v%06d" % step) * 30)
            windows.record(before, env.clock.now - before)
        db.wait_idle()
        db.close()
        return windows

    def test_same_seed_byte_identical_windows(self):
        text_a = self._run().to_text()
        text_b = self._run().to_text()
        assert text_a, "no windows recorded"
        assert text_a == text_b

    def test_stalls_surface_in_worst_window_not_in_every_window(self):
        windows = self._run()
        series = [value for _, value in windows.percentile_series(0.99)]
        assert windows.worst(0.99) == max(series)
        # The workload stalls somewhere: the worst window is far above
        # the median one, which is the whole reason windows exist.
        median = sorted(series)[len(series) // 2]
        assert windows.worst(0.99) > median

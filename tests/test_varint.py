"""Varint codec: round-trips, boundaries, and corruption handling."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.util.varint import (
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_varint32_roundtrip(self, value):
        data = encode_varint32(value)
        decoded, offset = decode_varint32(data)
        assert decoded == value
        assert offset == len(data)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_varint64_roundtrip(self, value):
        data = encode_varint64(value)
        decoded, offset = decode_varint64(data)
        assert decoded == value
        assert offset == len(data)

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=20))
    def test_concatenated_stream(self, values):
        blob = b"".join(encode_varint64(v) for v in values)
        offset = 0
        out = []
        for _ in values:
            value, offset = decode_varint64(blob, offset)
            out.append(value)
        assert out == values
        assert offset == len(blob)


class TestBoundaries:
    def test_single_byte_values(self):
        for v in (0, 1, 127):
            assert len(encode_varint32(v)) == 1

    def test_two_byte_threshold(self):
        assert len(encode_varint32(127)) == 1
        assert len(encode_varint32(128)) == 2

    def test_max_lengths(self):
        assert len(encode_varint32(2**32 - 1)) == 5
        assert len(encode_varint64(2**64 - 1)) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint32(-1)
        with pytest.raises(ValueError):
            encode_varint64(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_varint32(2**32)


class TestCorruption:
    def test_truncated(self):
        data = encode_varint64(2**40)[:-1]
        with pytest.raises(CorruptionError):
            decode_varint64(data)

    def test_empty(self):
        with pytest.raises(CorruptionError):
            decode_varint32(b"")

    def test_endless_continuation(self):
        with pytest.raises(CorruptionError):
            decode_varint64(b"\xff" * 11)

    def test_varint32_overflow_encoding(self):
        # A valid varint64 that exceeds 32 bits must be rejected as varint32.
        data = encode_varint64(2**33)
        with pytest.raises(CorruptionError):
            decode_varint32(data)

"""Varint codec: round-trips, boundaries, and corruption handling."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.util.varint import (
    decode_varint32,
    decode_varint64,
    decode_varint_run,
    encode_varint32,
    encode_varint64,
)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_varint32_roundtrip(self, value):
        data = encode_varint32(value)
        decoded, offset = decode_varint32(data)
        assert decoded == value
        assert offset == len(data)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_varint64_roundtrip(self, value):
        data = encode_varint64(value)
        decoded, offset = decode_varint64(data)
        assert decoded == value
        assert offset == len(data)

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=20))
    def test_concatenated_stream(self, values):
        blob = b"".join(encode_varint64(v) for v in values)
        offset = 0
        out = []
        for _ in values:
            value, offset = decode_varint64(blob, offset)
            out.append(value)
        assert out == values
        assert offset == len(blob)


class TestBoundaries:
    def test_single_byte_values(self):
        for v in (0, 1, 127):
            assert len(encode_varint32(v)) == 1

    def test_two_byte_threshold(self):
        assert len(encode_varint32(127)) == 1
        assert len(encode_varint32(128)) == 2

    def test_max_lengths(self):
        assert len(encode_varint32(2**32 - 1)) == 5
        assert len(encode_varint64(2**64 - 1)) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint32(-1)
        with pytest.raises(ValueError):
            encode_varint64(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_varint32(2**32)


class TestCorruption:
    def test_truncated(self):
        data = encode_varint64(2**40)[:-1]
        with pytest.raises(CorruptionError):
            decode_varint64(data)

    def test_empty(self):
        with pytest.raises(CorruptionError):
            decode_varint32(b"")

    def test_endless_continuation(self):
        with pytest.raises(CorruptionError):
            decode_varint64(b"\xff" * 11)

    def test_varint32_overflow_encoding(self):
        # A valid varint64 that exceeds 32 bits must be rejected as varint32.
        data = encode_varint64(2**33)
        with pytest.raises(CorruptionError):
            decode_varint32(data)


def _scalar_run(buf, offset, count):
    """Reference: the batched decoder must equal ``count`` scalar calls —
    same values, same final offset, and the same error at the same point."""
    values = []
    for _ in range(count):
        value, offset = decode_varint64(buf, offset)
        values.append(value)
    return values, offset


class TestVarintRun:
    """decode_varint_run vs the scalar decoders (the fuzz satellite)."""

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=30))
    def test_matches_scalar_on_valid_streams(self, values):
        blob = b"".join(encode_varint64(v) for v in values)
        assert decode_varint_run(blob, 0, len(values)) == (values, len(blob))
        assert decode_varint_run(memoryview(blob), 0, len(values)) == (
            values,
            len(blob),
        )

    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=10),
        st.binary(max_size=12),
    )
    def test_trailing_garbage_error_parity(self, values, garbage):
        """Random bytes after a valid prefix: batched and scalar decoding
        agree on success values *and* on which error truncated/overlong
        input raises."""
        blob = b"".join(encode_varint64(v) for v in values) + garbage
        count = len(values) + 2  # force decoding into the garbage
        try:
            expected = _scalar_run(blob, 0, count)
        except CorruptionError as exc:
            with pytest.raises(CorruptionError) as excinfo:
                decode_varint_run(blob, 0, count)
            assert str(excinfo.value) == str(exc)
        else:
            assert decode_varint_run(blob, 0, count) == expected

    @given(st.binary(max_size=40), st.integers(min_value=0, max_value=8))
    def test_arbitrary_buffers_error_parity(self, blob, count):
        try:
            expected = _scalar_run(blob, 0, count)
        except CorruptionError as exc:
            with pytest.raises(CorruptionError) as excinfo:
                decode_varint_run(blob, 0, count)
            assert str(excinfo.value) == str(exc)
        else:
            assert decode_varint_run(blob, 0, count) == expected

    def test_truncated_mid_run(self):
        blob = encode_varint64(300) + encode_varint64(2**40)[:-1]
        with pytest.raises(CorruptionError, match="truncated varint"):
            decode_varint_run(blob, 0, 2)

    def test_overlong_encoding_rejected(self):
        # 10 continuation bytes: "varint too long", exactly like the
        # scalar decoder, even when the buffer ends right there.
        with pytest.raises(CorruptionError, match="varint too long"):
            decode_varint_run(b"\xff" * 10, 0, 1)
        with pytest.raises(CorruptionError, match="varint too long"):
            decode_varint64(b"\xff" * 10)

    def test_zero_count(self):
        assert decode_varint_run(b"anything", 3, 0) == ([], 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            decode_varint_run(b"", 0, -1)

    def test_offset_resumes_mid_buffer(self):
        blob = b"\x01" + encode_varint64(128) + encode_varint64(2**56)
        values, offset = decode_varint_run(blob, 1, 2)
        assert values == [128, 2**56]
        assert offset == len(blob)

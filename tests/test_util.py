"""CRC masking, MurmurHash3, and the internal-key codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.util.crc import crc32c, mask_crc, unmask_crc
from repro.util.keys import (
    KIND_DELETE,
    KIND_PUT,
    MAX_SEQUENCE,
    InternalKey,
    pack_internal_key,
    unpack_internal_key,
)
from repro.util.murmur import murmur3_32, murmur3_64


class TestCrc:
    @given(st.binary(max_size=256))
    def test_mask_roundtrip(self, data):
        crc = crc32c(data)
        assert unmask_crc(mask_crc(crc)) == crc

    def test_mask_changes_value(self):
        crc = crc32c(b"hello")
        assert mask_crc(crc) != crc

    def test_chaining(self):
        whole = crc32c(b"hello world")
        chained = crc32c(b" world", seed=crc32c(b"hello"))
        assert whole == chained

    def test_detects_flip(self):
        data = bytearray(b"some record payload")
        crc = crc32c(bytes(data))
        data[3] ^= 0x40
        assert crc32c(bytes(data)) != crc


class TestMurmur:
    def test_reference_vectors(self):
        # Reference values from the smhasher MurmurHash3_x86_32.
        assert murmur3_32(b"") == 0
        assert murmur3_32(b"", seed=1) == 0x514E28B7
        assert murmur3_32(b"hello") == 0x248BFA47
        assert murmur3_32(b"hello, world") == 0x149BBB7F
        assert murmur3_32(b"The quick brown fox jumps over the lazy dog") == 0x2E4FF723

    @given(st.binary(max_size=64))
    def test_deterministic(self, data):
        assert murmur3_32(data) == murmur3_32(data)
        assert murmur3_64(data) == murmur3_64(data)

    @given(st.binary(min_size=1, max_size=64))
    def test_seed_changes_hash(self, data):
        assert murmur3_32(data, 1) != murmur3_32(data, 2) or True  # rarely equal
        assert 0 <= murmur3_32(data) < 2**32
        assert 0 <= murmur3_64(data) < 2**64

    def test_distribution_of_trailing_bits(self):
        # ~1/2^k keys should have k trailing set bits: sanity for guards.
        from repro.core.guards import trailing_set_bits

        n = 20000
        count = sum(
            1
            for i in range(n)
            if trailing_set_bits(murmur3_32(b"key%08d" % i)) >= 6
        )
        expected = n / 64
        assert expected * 0.5 < count < expected * 2.0


class TestInternalKey:
    def test_ordering_user_key_then_seq_desc(self):
        a = InternalKey(b"a", 5, KIND_PUT)
        a_newer = InternalKey(b"a", 9, KIND_PUT)
        b = InternalKey(b"b", 1, KIND_PUT)
        assert a_newer < a  # newer version sorts first
        assert a < b
        assert a_newer < b

    def test_prefix_keys_order_correctly(self):
        # b"a" < b"ab" must hold regardless of sequence numbers.
        long_old = InternalKey(b"ab", 1, KIND_PUT)
        short_new = InternalKey(b"a", MAX_SEQUENCE, KIND_PUT)
        assert short_new < long_old

    @given(
        st.binary(min_size=1, max_size=24),
        st.integers(min_value=0, max_value=MAX_SEQUENCE),
        st.sampled_from([KIND_PUT, KIND_DELETE]),
    )
    def test_pack_roundtrip(self, user_key, seq, kind):
        key = InternalKey(user_key, seq, kind)
        assert unpack_internal_key(pack_internal_key(key)) == key

    def test_pack_rejects_short(self):
        with pytest.raises(CorruptionError):
            unpack_internal_key(b"\x01")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            InternalKey(b"k", 1, 7)

    def test_invalid_sequence_rejected(self):
        with pytest.raises(ValueError):
            InternalKey(b"k", MAX_SEQUENCE + 1, KIND_PUT)

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=8),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=2,
            max_size=50,
        )
    )
    def test_sort_matches_reference(self, items):
        keys = [InternalKey(k, s, KIND_PUT) for k, s in items]
        expected = sorted(keys, key=lambda ik: (ik.user_key, -ik.sequence))
        assert sorted(keys) == expected

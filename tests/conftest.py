"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.engines.options import StoreOptions

#: Engines implementing the full LSM/FLSM machinery (WAL, recovery, ...).
LSM_ENGINES = ["leveldb", "hyperleveldb", "rocksdb", "pebblesdb"]
#: All public engines.
ALL_ENGINES = LSM_ENGINES + ["btree", "wiredtiger"]


def tiny_options(preset: str, **overrides) -> StoreOptions:
    """Small memtables/levels so compaction dynamics appear fast in tests."""
    base = StoreOptions.for_preset(preset)
    defaults = dict(
        memtable_bytes=4 * 1024,
        level1_max_bytes=16 * 1024,
        target_file_bytes=8 * 1024,
        top_level_bits=6,
        bit_decrement=1,
    )
    defaults.update(overrides)
    return dataclasses.replace(base, **defaults)


@pytest.fixture
def env() -> repro.Environment:
    return repro.Environment(cache_bytes=4 * 1024 * 1024)


@pytest.fixture(params=LSM_ENGINES)
def lsm_engine(request) -> str:
    return request.param


@pytest.fixture(params=ALL_ENGINES)
def any_engine(request) -> str:
    return request.param


def make_store(engine: str, env: repro.Environment, **option_overrides):
    options = None
    if engine in LSM_ENGINES:
        options = tiny_options(engine, **option_overrides)
    return repro.open_store(engine, env.storage, options=options, prefix="db/")

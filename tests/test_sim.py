"""Simulation substrate: clock, device, cache, executor, aging."""

import pytest

from repro.sim.aging import FilesystemAging
from repro.sim.cache import PAGE_SIZE, PageCache
from repro.sim.clock import SimClock
from repro.sim.device import DeviceModel
from repro.sim.executor import BackgroundExecutor


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        assert clock.now == 1.5

    def test_advance_to_never_goes_back(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)


class TestDevice:
    def test_sequential_faster_than_random(self):
        dev = DeviceModel.ssd()
        assert dev.seq_read_time(4096) < dev.rand_read_time(4096)

    def test_bandwidth_scales_with_size(self):
        dev = DeviceModel.ssd()
        small = dev.seq_write_time(4096)
        large = dev.seq_write_time(4096 * 100)
        assert large > small * 10

    def test_hdd_random_much_slower_than_ssd(self):
        assert DeviceModel.hdd().rand_read_time(4096) > 20 * DeviceModel.ssd().rand_read_time(4096)

    def test_aging_factor_multiplies(self):
        fresh = DeviceModel.ssd()
        aged = DeviceModel.ssd()
        aged.aging_factor = 1.5
        assert aged.seq_write_time(65536) == pytest.approx(1.5 * fresh.seq_write_time(65536))


class TestAging:
    def test_fresh_filesystem_factor_one(self):
        assert FilesystemAging(0, 0.0).factor() == 1.0

    def test_factor_grows_with_churn_and_utilization(self):
        low = FilesystemAging(1, 0.5).factor()
        high = FilesystemAging(4, 0.95).factor()
        assert 1.0 < low < high <= 1.6

    def test_apply_sets_device(self):
        dev = DeviceModel.ssd()
        FilesystemAging(2, 0.89).apply(dev)
        assert dev.aging_factor > 1.1


class TestPageCache:
    def test_hit_after_insert(self):
        cache = PageCache(16 * PAGE_SIZE)
        assert not cache.access("f", 0)
        assert cache.access("f", 0)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = PageCache(2 * PAGE_SIZE)
        cache.access("f", 0)
        cache.access("f", 1)
        cache.access("f", 0)  # refresh page 0
        cache.access("f", 2)  # evicts page 1
        assert cache.access("f", 0)
        assert not cache.access("f", 1)

    def test_no_insert_mode_does_not_pollute(self):
        cache = PageCache(4 * PAGE_SIZE)
        cache.access("f", 0, insert=False)
        assert not cache.access("f", 0, insert=False)

    def test_access_range_counts_pages(self):
        cache = PageCache(64 * PAGE_SIZE)
        hits, misses = cache.access_range("f", 0, PAGE_SIZE * 3)
        assert (hits, misses) == (0, 3)
        hits, misses = cache.access_range("f", PAGE_SIZE, PAGE_SIZE * 2)
        assert (hits, misses) == (2, 0)

    def test_populate_then_drop_file(self):
        cache = PageCache(64 * PAGE_SIZE)
        cache.populate_range("f", 0, PAGE_SIZE * 4)
        assert cache.access("f", 3)
        cache.drop_file("f")
        assert not cache.access("f", 3)

    def test_zero_capacity_never_caches(self):
        cache = PageCache(0)
        cache.access("f", 0)
        assert not cache.access("f", 0)
        assert cache.size_bytes == 0


class TestExecutor:
    def test_jobs_apply_in_completion_order(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=1)
        order = []
        ex.submit("a", 1.0, lambda: order.append("a"))
        ex.submit("b", 1.0, lambda: order.append("b"))
        assert ex.drain() == 0  # nothing completed yet
        clock.advance(1.5)
        assert ex.drain() == 1
        assert order == ["a"]
        ex.wait_all()
        assert order == ["a", "b"]
        assert clock.now == pytest.approx(2.0)

    def test_single_worker_serializes(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=1)
        j1 = ex.submit("a", 2.0)
        j2 = ex.submit("b", 1.0)
        assert j1.completion == pytest.approx(2.0)
        assert j2.completion == pytest.approx(3.0)

    def test_two_workers_parallelize(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=2)
        j1 = ex.submit("a", 2.0)
        j2 = ex.submit("b", 1.0)
        assert j1.completion == pytest.approx(2.0)
        assert j2.completion == pytest.approx(1.0)

    def test_backlog_seconds(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=1)
        ex.submit("a", 3.0)
        assert ex.backlog_seconds() == pytest.approx(3.0)
        clock.advance(1.0)
        assert ex.backlog_seconds() == pytest.approx(2.0)

    def test_wait_for_advances_clock(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock)
        done = []
        job = ex.submit("a", 0.5, lambda: done.append(1))
        ex.wait_for(job)
        assert clock.now == pytest.approx(0.5)
        assert done == [1]

    def test_apply_can_submit_followup(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock)
        order = []

        def first():
            order.append("first")
            ex.submit("second", 0.1, lambda: order.append("second"))

        ex.submit("first", 0.1, first)
        ex.wait_all()
        assert order == ["first", "second"]

    def test_peek_next(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock)
        assert ex.peek_next() is None
        job = ex.submit("a", 1.0)
        assert ex.peek_next() is job

    def test_negative_cost_rejected(self):
        ex = BackgroundExecutor(SimClock())
        with pytest.raises(ValueError):
            ex.submit("bad", -1.0)

    def test_after_delays_start_even_with_free_worker(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=2)
        dep = ex.submit("dep", 2.0)
        # Worker 2 is idle, but the job must not start before its dep ends.
        job = ex.submit("job", 1.0, after=[dep])
        assert job.start == pytest.approx(2.0)
        assert job.completion == pytest.approx(3.0)

    def test_after_multiple_deps_waits_for_latest(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=4)
        d1 = ex.submit("d1", 1.0)
        d2 = ex.submit("d2", 3.0)
        job = ex.submit("job", 0.5, after=[d1, d2])
        assert job.start == pytest.approx(3.0)
        assert job.completion == pytest.approx(3.5)

    def test_after_composes_with_at(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=2)
        dep = ex.submit("dep", 1.0)
        # at= later than the dep completion wins...
        late = ex.submit("late", 1.0, at=5.0, after=[dep])
        assert late.start == pytest.approx(5.0)
        # ...and the dep completion wins over an earlier at=.
        early = ex.submit("early", 1.0, at=0.25, after=[dep])
        assert early.start == pytest.approx(1.0)

    def test_after_applies_in_completion_order(self):
        clock = SimClock()
        ex = BackgroundExecutor(clock, workers=2)
        order = []
        dep = ex.submit("dep", 2.0, lambda: order.append("dep"))
        ex.submit("fast", 0.5, lambda: order.append("fast"))
        ex.submit("chained", 0.5, lambda: order.append("chained"), after=[dep])
        ex.wait_all()
        assert order == ["fast", "dep", "chained"]

"""Edge cases and adversarial inputs across engines."""

import pytest

import repro
from repro.errors import InvalidArgumentError
from tests.conftest import ALL_ENGINES, LSM_ENGINES, make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


class TestInputValidation:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_empty_key_rejected_everywhere(self, engine, env):
        db = make_store(engine, env)
        with pytest.raises(InvalidArgumentError):
            db.put(b"", b"v")
        with pytest.raises(InvalidArgumentError):
            db.get(b"")

    def test_empty_value_allowed(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"k", b"")
        assert db.get(b"k") == b""

    def test_bytearray_inputs_coerced(self, env):
        db = make_store("pebblesdb", env)
        db.put(bytearray(b"k"), bytearray(b"v"))
        assert db.get(b"k") == b"v"


class TestExtremeValues:
    def test_large_values_cross_many_blocks(self, env):
        db = make_store("pebblesdb", env)
        big = bytes(range(256)) * 256  # 64 KiB value, bigger than memtable
        db.put(b"big", big)
        db.put(b"after", b"x")
        db.flush_memtable()
        assert db.get(b"big") == big

    def test_binary_keys_with_zero_and_ff(self, env):
        db = make_store("pebblesdb", env)
        keys = [b"\x00", b"\x00\x00", b"\xff", b"\xff\xff", b"\x00\xff", b"a\x00b"]
        for i, k in enumerate(keys):
            db.put(k, b"%d" % i)
        db.flush_memtable()
        for i, k in enumerate(keys):
            assert db.get(k) == b"%d" % i
        assert [k for k, _ in db.scan()] == sorted(keys)

    def test_many_versions_of_one_key(self, env):
        db = make_store("pebblesdb", env)
        for i in range(3000):
            db.put(b"hot", b"v%06d" % i)
        db.compact_all()
        assert db.get(b"hot") == b"v002999"
        # After full compaction only the newest version occupies space.
        assert sum(db.level_sizes()) < 64 * 1024

    def test_delete_nonexistent_key(self, env):
        db = make_store("pebblesdb", env)
        db.delete(b"ghost")  # must not raise
        assert db.get(b"ghost") is None

    def test_delete_then_reinsert(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"k", b"v1")
        db.delete(b"k")
        db.put(b"k", b"v2")
        db.compact_all()
        assert db.get(b"k") == b"v2"


class TestIterators:
    def test_seek_past_end(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"a", b"1")
        it = db.seek(b"zzz")
        assert not it.valid
        it.close()

    def test_seek_on_empty_store(self, env):
        db = make_store("pebblesdb", env)
        it = db.seek(b"a")
        assert not it.valid
        it.close()

    def test_exhausted_iterator_raises_on_key(self, env):
        db = make_store("pebblesdb", env)
        it = db.seek(b"a")
        with pytest.raises(InvalidArgumentError):
            it.key()
        it.close()

    def test_iterator_context_manager(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"a", b"1")
        with db.seek(b"a") as it:
            assert it.key() == b"a"

    def test_abandoned_iterators_dont_leak_file_refs(self, env):
        db = make_store("pebblesdb", env)
        for i in range(1500):
            db.put(b"k%05d" % i, b"v" * 64)
        db.flush_memtable()
        for i in range(50):
            it = db.seek(b"k%05d" % (i * 10))
            it.next()
            it.close()
        db.compact_all()
        # All retired files must actually be deleted once refs drop.
        assert not db._doomed_files
        db.check_invariants()

    def test_range_query_with_limit(self, env):
        db = make_store("pebblesdb", env)
        for i in range(100):
            db.put(b"k%03d" % i, b"v")
        rows = db.range_query(b"k000", b"k099", limit=7)
        assert len(rows) == 7


class TestMultiStoreSharedDevice:
    def test_two_stores_isolated_namespaces(self, env):
        a = repro.open_store("pebblesdb", env.storage, prefix="a/")
        b = repro.open_store("hyperleveldb", env.storage, prefix="b/")
        a.put(b"k", b"from-a")
        b.put(b"k", b"from-b")
        assert a.get(b"k") == b"from-a"
        assert b.get(b"k") == b"from-b"

    def test_io_accounting_separated(self, env):
        a = repro.open_store("pebblesdb", env.storage, prefix="a/")
        b = repro.open_store("pebblesdb", env.storage, prefix="b/")
        creation_footprint = b.stats().device_bytes_written  # MANIFEST etc.
        for i in range(300):
            a.put(b"k%04d" % i, b"v" * 100)
        assert a.stats().device_bytes_written > 300 * 100
        assert b.stats().device_bytes_written == creation_footprint


class TestStallBehaviour:
    def test_leveldb_stalls_more_than_hyperleveldb(self):
        stalls = {}
        for engine in ("leveldb", "hyperleveldb"):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store(engine, env)
            for i in range(4000):
                db.put(b"k%09d" % ((i * 2654435761) % 10**9), b"v" * 128)
            stalls[engine] = db.stats().stall_seconds
        assert stalls["leveldb"] > stalls["hyperleveldb"]

    def test_write_stall_time_counted(self, env):
        db = make_store("leveldb", env)
        for i in range(4000):
            db.put(b"k%09d" % ((i * 2654435761) % 10**9), b"v" * 128)
        assert db.stats().stall_seconds > 0


class TestSequenceSemantics:
    @pytest.mark.parametrize("engine", LSM_ENGINES)
    def test_monotonic_sequence(self, engine, env):
        db = make_store(engine, env)
        seqs = []
        for i in range(10):
            db.put(b"k", b"%d" % i)
            seqs.append(db.last_sequence)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_write_batch_is_atomic_in_sequence(self, env):
        from repro.util.keys import KIND_PUT

        db = make_store("pebblesdb", env)
        before = db.last_sequence
        db.write_batch([(KIND_PUT, b"a", b"1"), (KIND_PUT, b"b", b"2")])
        assert db.last_sequence == before + 2


class TestIteratorConsistency:
    def test_iterator_is_snapshot_consistent(self, env):
        """An open iterator never observes writes issued after seek() —
        LevelDB iterator semantics, enforced by sequence filtering."""
        db = make_store("pebblesdb", env)
        for i in range(200):
            db.put(b"k%04d" % (2 * i), b"orig")
        it = db.seek(b"k0000")
        seen = []
        step = 0
        while it.valid:
            seen.append((it.key(), it.value()))
            # Interleave writes that land inside the unvisited range.
            db.put(b"k%04d" % (2 * step + 1), b"late")
            db.put(seen[-1][0], b"overwritten")
            it.next()
            step += 1
        it.close()
        assert len(seen) == 200
        assert all(v == b"orig" for _, v in seen)

    def test_reverse_iterator_snapshot_consistent(self, env):
        db = make_store("pebblesdb", env)
        for i in range(100):
            db.put(b"k%03d" % i, b"orig")
        it = db.seek_reverse(b"k099")
        count = 0
        while it.valid:
            assert it.value() == b"orig"
            db.put(it.key(), b"mutated")
            db.delete(b"k%03d" % (count % 100))
            it.next()
            count += 1
        it.close()
        assert count == 100

"""Analysis helpers, report tables, options presets, and the harness."""

import pytest

import repro
from repro.analysis import (
    Table,
    fmt_bytes,
    fmt_ratio,
    space_amplification,
    sstable_size_distribution,
    write_amplification,
)
from repro.engines.base import StoreStats
from repro.engines.options import StoreOptions
from repro.harness import ExperimentConfig, fresh_run, standard_config
from repro.sim.aging import FilesystemAging


class TestAmplification:
    def test_write_amplification(self):
        stats = StoreStats(user_bytes_written=100, device_bytes_written=450)
        assert write_amplification(stats) == 4.5
        assert write_amplification(StoreStats()) == 0.0

    def test_space_amplification(self):
        assert space_amplification(150, 100) == 1.5
        assert space_amplification(10, 0) == 0.0

    def test_size_distribution_from_store(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=1500, value_size=256))
        run.bench.fill_random()
        run.db.wait_idle()
        dist = sstable_size_distribution(run.db)
        assert dist.count > 0
        assert dist.median <= dist.p90 <= dist.p95
        assert "mean=" in dist.row(unit=1024)

    def test_size_distribution_empty_store(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=100, value_size=64))
        dist = sstable_size_distribution(run.db)
        assert dist.count == 0


class TestReport:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.0 KB"
        assert "MB" in fmt_bytes(5 * 1024 * 1024)

    def test_fmt_ratio(self):
        assert fmt_ratio(250, 100) == "2.50x"
        assert fmt_ratio(1, 0) == "n/a"

    def test_table_renders(self):
        table = Table("Results", ["store", "kops"])
        table.add_row("pebblesdb", 116.8)
        table.add_row("hyperleveldb", 67.3)
        text = table.render()
        assert "Results" in text and "pebblesdb" in text

    def test_table_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")


class TestOptions:
    def test_presets_exist(self):
        for name in ("leveldb", "hyperleveldb", "rocksdb", "pebblesdb"):
            assert StoreOptions.for_preset(name).preset == name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            StoreOptions.for_preset("cassandra")

    def test_level_targets_grow_geometrically(self):
        opts = StoreOptions()
        assert opts.level_target_bytes(2) == 10 * opts.level_target_bytes(1)
        assert opts.level_target_bytes(0) > 0

    def test_scaled(self):
        opts = StoreOptions().scaled(2.0)
        assert opts.memtable_bytes == 2 * StoreOptions().memtable_bytes

    def test_rocksdb_relaxed_level0(self):
        assert StoreOptions.rocksdb().level0_stop_trigger > StoreOptions.hyperleveldb().level0_stop_trigger


class TestHarness:
    def test_default_cache_is_one_third_of_dataset(self):
        cfg = ExperimentConfig(num_keys=30000, value_size=1024)
        assert cfg.effective_cache_bytes() == pytest.approx(cfg.dataset_bytes / 3, rel=0.01)

    def test_cache_override(self):
        cfg = ExperimentConfig(cache_bytes=12345678)
        assert cfg.effective_cache_bytes() == 12345678

    def test_fresh_run_isolated_devices(self):
        a = fresh_run("pebblesdb", standard_config(num_keys=100, value_size=64))
        b = fresh_run("pebblesdb", standard_config(num_keys=100, value_size=64))
        a.db.put(b"k", b"v")
        assert b.db.get(b"k") is None

    def test_option_overrides_applied(self):
        cfg = standard_config(num_keys=100, value_size=64)
        cfg.option_overrides = {"pebblesdb": {"max_sstables_per_guard": 1}}
        run = fresh_run("pebblesdb", cfg)
        assert run.db.options.max_sstables_per_guard == 1

    def test_threads_scale_cpu(self):
        cfg = standard_config(num_keys=100, value_size=64, threads=4)
        run = fresh_run("pebblesdb", cfg)
        assert run.env.cpu.thread_scale == 4.0

    def test_aging_applied_to_device(self):
        cfg = standard_config(num_keys=100, value_size=64, aging=FilesystemAging(2, 0.89))
        run = fresh_run("pebblesdb", cfg)
        assert run.env.storage.device.aging_factor > 1.0

    def test_reopen_preserves_data(self):
        cfg = standard_config(num_keys=200, value_size=64)
        run = fresh_run("pebblesdb", cfg)
        run.db.put(b"k", b"v")
        run2 = run.reopen()
        assert run2.db.get(b"k") == b"v"


class TestPublicApi:
    def test_open_store_every_engine(self):
        env = repro.Environment()
        for engine in repro.ENGINES:
            db = repro.open_store(engine, env.storage)
            db.put(b"k", b"v")
            assert db.get(b"k") == b"v"

    def test_open_store_default_storage(self):
        db = repro.open_store("pebblesdb")
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"

    def test_unknown_engine_rejected(self):
        env = repro.Environment()
        with pytest.raises(ValueError):
            repro.open_store("bogusdb", env.storage)

    def test_environment_defaults(self):
        env = repro.Environment()
        assert env.now == 0.0
        assert env.storage.cache.capacity_bytes == env.cache_bytes


class TestOptionValidation:
    def test_presets_all_valid(self):
        for name in ("leveldb", "hyperleveldb", "rocksdb", "pebblesdb"):
            StoreOptions.for_preset(name)  # must not raise

    def test_bad_values_rejected(self):
        import dataclasses

        base = StoreOptions()
        for field, value in [
            ("memtable_bytes", 0),
            ("num_levels", 1),
            ("level0_stop_trigger", 1),  # below slowdown
            ("background_workers", 0),
            ("max_sstables_per_guard", 0),
            ("compression_ratio", 0.0),
            ("compression_ratio", 1.5),
            ("top_level_bits", 0),
            ("compaction_policy", "universal"),
        ]:
            with pytest.raises(ValueError):
                dataclasses.replace(base, **{field: value})

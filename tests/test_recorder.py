"""The flight recorder (:mod:`repro.obs.recorder`).

Contracts under test:

* ``trace_sample`` parsing and validation at the options layer;
* ``"errors"`` mode (the default) keeps the hot path uninstrumented
  (``store.tracer is None``) while capturing 100% of degraded/faulted
  events, and dumps the ring on degradation;
* ``"1/N"`` mode installs a sampling tracer whose output is same-seed
  deterministic and whose sampled traces are complete (never fragments);
* dumps are valid trace files: ``read_trace`` parses them and the
  ``repro-trace --report dump`` renderer exits zero;
* the recorder never perturbs the simulation: engine stats are
  byte-identical across ``off``/``errors`` runs of the same workload.
"""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro.obs.recorder import FlightRecorder, parse_sample_mode
from repro.obs.trace import read_trace
from repro.sim.faults import FaultInjector, FaultPlan
from repro.tools.trace import main as trace_main
from tests.conftest import make_store


def _fill(db, n=200):
    for i in range(n):
        db.put(b"key%05d" % i, b"v" * 64)


class TestSampleModeParsing:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("off", ("off", 0)),
            ("errors", ("errors", 0)),
            ("1/1", ("sample", 1)),
            ("1/64", ("sample", 64)),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert parse_sample_mode(spec) == expected

    @pytest.mark.parametrize("spec", ["", "all", "1/0", "1/-3", "1/x", "2/3"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_sample_mode(spec)

    def test_options_validate_the_knob(self):
        env = repro.Environment(cache_bytes=1 << 20)
        with pytest.raises(ValueError):
            make_store("pebblesdb", env, trace_sample="sometimes")
        with pytest.raises(ValueError):
            make_store("pebblesdb", env, trace_ring_capacity=0)


class TestRing:
    def test_ring_is_bounded(self):
        clock = repro.Environment(cache_bytes=1 << 20).clock
        rec = FlightRecorder(component="t", seed=1, clock=clock, capacity=16)
        for i in range(100):
            rec.point("tick", n=i)
        assert len(rec) == 16
        records = rec.records()
        # Oldest evicted, newest kept, order preserved.
        assert [r["attrs"]["n"] for r in records] == list(range(84, 100))

    def test_off_mode_records_and_dumps_nothing(self, tmp_path):
        rec = FlightRecorder(component="t", mode="off", dump_dir=str(tmp_path))
        rec.point("tick")
        assert not rec.enabled
        assert len(rec) == 0
        assert rec.dump("whatever") is None
        assert os.listdir(tmp_path) == []

    def test_dump_cap(self, tmp_path):
        rec = FlightRecorder(
            component="t", mode="errors", dump_dir=str(tmp_path), max_dumps=2
        )
        rec.point("tick")
        paths = [rec.dump(f"r{i}") for i in range(4)]
        assert [p is not None for p in paths] == [True, True, False, False]
        assert rec.last_reason == "r3"  # in-memory state still tracks


class TestErrorsMode:
    def test_default_mode_keeps_hot_path_untraced(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        assert db.options.trace_sample == "errors"
        assert db.tracer is None
        assert db.recorder.enabled
        db.close()

    def test_transient_retries_are_recorded(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        _fill(db, 100)
        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(0, op="append", name_pattern="db/*.sst")
            )
        )
        db.flush_memtable()
        db.wait_idle()
        env.storage.set_fault_injector(None)
        names = [r["name"] for r in db.recorder.records()]
        assert "fault.retry" in names
        assert not db.is_degraded
        db.close()

    def test_degradation_dumps_the_ring(self, tmp_path):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env, trace_dump_dir=str(tmp_path))
        _fill(db, 150)
        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(
                    0,
                    op="append",
                    name_pattern="db/MANIFEST-*",
                    kind="persistent",
                )
            )
        )
        db.flush_memtable()
        db.wait_idle()
        assert db.is_degraded
        names = [r["name"] for r in db.recorder.records()]
        assert "fault.degraded" in names
        assert db.recorder.dumps >= 1
        assert db.recorder.last_reason.startswith("degraded:")
        dumps = sorted(os.listdir(tmp_path))
        assert dumps and dumps[0].startswith("flight-")
        env.storage.set_fault_injector(None)
        db.close()

    def test_dump_is_a_valid_trace_file_and_renders(self, tmp_path):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env, trace_dump_dir=str(tmp_path))
        _fill(db, 100)
        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(
                    0,
                    op="append",
                    name_pattern="db/MANIFEST-*",
                    kind="persistent",
                )
            )
        )
        db.flush_memtable()
        db.wait_idle()
        env.storage.set_fault_injector(None)
        path = db.recorder.dump_paths[0]
        spans = read_trace(path)
        assert spans[0]["name"] == "flight.dump"
        assert spans[0]["attrs"]["reason"].startswith("degraded:")
        assert trace_main([path, "--report", "dump"]) == 0
        db.close()

    def test_flight_recorder_property(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        summary = json.loads(db.get_property("repro.flight-recorder"))
        assert summary["mode"] == "errors"
        assert summary["dumps"] == 0
        assert "repro.flight-recorder" in db.property_names()
        db.close()


class TestSamplingMode:
    def test_sampling_tracer_installed(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env, trace_sample="1/8")
        assert db.tracer is db.recorder.tracer
        db.close()

    def test_one_in_n_samples_complete_traces(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env, trace_sample="1/8")
        _fill(db, 400)
        for i in range(0, 400, 2):
            db.get(b"key%05d" % i)
        db.wait_idle()
        records = db.recorder.records()
        assert records, "sampled nothing at 1/8"
        # Sampled roots are full traces: every record's trace id belongs
        # to a sampled root, and child spans reference in-trace parents.
        get_spans = [r for r in records if r["name"] == "get"]
        sampled_gets = len(get_spans)
        assert 0 < sampled_gets <= 200 // 8 + 1
        by_id = {(r["trace"], r["span"]): r for r in records}
        for r in records:
            if r.get("parent") and r["kind"] not in ("background", "event"):
                assert (r["trace"], r["parent"]) in by_id

    def test_same_seed_ring_is_byte_identical(self):
        def run():
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, trace_sample="1/4")
            _fill(db, 300)
            db.wait_idle()
            text = json.dumps(db.recorder.records(), sort_keys=True)
            db.close()
            return text

        assert run() == run()

    def test_recorder_does_not_perturb_the_simulation(self):
        def run(mode):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, trace_sample=mode)
            _fill(db, 300)
            db.compact_all()
            db.wait_idle()
            stats = db.stats()
            db.close()
            return vars(stats), env.clock.now

        off_stats, off_now = run("off")
        err_stats, err_now = run("errors")
        sampled_stats, sampled_now = run("1/4")
        assert off_stats == err_stats == sampled_stats
        assert off_now == err_now == sampled_now

"""Statistical properties of the YCSB runner's request streams."""

import pytest

import repro
from repro.harness import fresh_run, standard_config
from repro.workloads import YCSB_WORKLOADS, YcsbRunner, YcsbWorkload


class CountingStore:
    """A stub store that counts operations instead of executing them."""

    def __init__(self):
        self.puts = []
        self.gets = []
        self.seeks = []
        self.nexts = 0

    class _It:
        def __init__(self, outer):
            self.outer = outer
            self.valid = True

        def next(self):
            self.outer.nexts += 1
            return True

        def close(self):
            pass

        def key(self):
            return b""

        def value(self):
            return b""

    def put(self, key, value):
        self.puts.append(key)

    def get(self, key):
        self.gets.append(key)
        return b"x"

    def delete(self, key):
        pass

    def seek(self, key):
        self.seeks.append(key)
        return self._It(self)

    def stats(self):
        from repro.engines.base import StoreStats

        return StoreStats()


class _FakeStorage:
    def __init__(self):
        from repro.sim.clock import SimClock

        self.clock = SimClock()


def run_counting(workload: YcsbWorkload, ops=4000, records=2000):
    db = CountingStore()
    runner = YcsbRunner(db, _FakeStorage(), record_count=records, value_size=64)
    runner._inserted = records  # skip the load phase
    runner.run(workload, ops)
    return db


class TestOperationMixes:
    def test_workload_a_half_reads_half_updates(self):
        db = run_counting(YCSB_WORKLOADS["A"])
        total = len(db.gets) + len(db.puts)
        assert total == 4000
        assert 0.45 < len(db.gets) / total < 0.55

    def test_workload_b_mostly_reads(self):
        db = run_counting(YCSB_WORKLOADS["B"])
        assert len(db.gets) / 4000 > 0.9
        assert 0.02 < len(db.puts) / 4000 < 0.09

    def test_workload_c_only_reads(self):
        db = run_counting(YCSB_WORKLOADS["C"])
        assert len(db.puts) == 0
        assert len(db.gets) == 4000

    def test_workload_e_mostly_scans(self):
        db = run_counting(YCSB_WORKLOADS["E"])
        assert len(db.seeks) / 4000 > 0.9
        # Scan lengths are uniform 1..100: mean next()/seek ~ 50.
        mean_scan = db.nexts / len(db.seeks)
        assert 35 < mean_scan < 65

    def test_workload_f_rmw_pairs_reads_and_writes(self):
        db = run_counting(YCSB_WORKLOADS["F"])
        # 50% plain reads + 50% RMW (get+put): puts ~ 2000, gets ~ 4000.
        assert 0.4 < len(db.puts) / 4000 < 0.6
        assert len(db.gets) > len(db.puts) * 1.5


class TestRequestSkew:
    def test_zipfian_workloads_have_hot_keys(self):
        db = run_counting(YCSB_WORKLOADS["A"], ops=6000)
        counts = {}
        for key in db.gets + db.puts:
            counts[key] = counts.get(key, 0) + 1
        total = sum(counts.values())
        top = sorted(counts.values(), reverse=True)[: max(1, len(counts) // 100)]
        assert sum(top) / total > 0.05, "zipfian stream must concentrate requests"

    def test_latest_workload_prefers_recent_records(self):
        db = run_counting(YCSB_WORKLOADS["D"], ops=6000, records=2000)
        runner_codec = YcsbRunner(
            CountingStore(), _FakeStorage(), record_count=2000
        ).codec
        recent = sum(1 for k in db.gets if runner_codec.decode(k) >= 1500)
        assert recent / max(1, len(db.gets)) > 0.5

    def test_inserts_are_new_keys(self):
        db = run_counting(YCSB_WORKLOADS["D"], ops=4000, records=1000)
        codec = YcsbRunner(CountingStore(), _FakeStorage(), record_count=1000).codec
        fresh = [k for k in db.puts if codec.decode(k) >= 1000]
        assert len(fresh) == len(db.puts), "workload D writes are inserts"


class TestEndToEndDeterminism:
    def test_same_seed_same_results(self):
        results = []
        for _ in range(2):
            run = fresh_run("pebblesdb", standard_config(num_keys=500, value_size=128, seed=4))
            ycsb = run.ycsb()
            ycsb.load()
            r = ycsb.run(YCSB_WORKLOADS["A"], 200)
            results.append((r.kops, r.device_bytes_written, run.env.now))
        assert results[0] == results[1]

"""Backup/repair round-trips over fault-injected stores.

The disaster-recovery tools must compose with the fault-injection
substrate: a store that survived transient storage faults backs up and
restores byte-for-byte; a backup taken before a crash restores the
pre-crash state; a fault *during* the backup itself refuses loudly
rather than producing a torn backup, and a clean retry succeeds; and
RepairDB reconstructs a store whose metadata was lost mid-fault-storm.
"""

import dataclasses
import random

import pytest

import repro
from repro.engines.options import StoreOptions
from repro.errors import ReproError, TransientIOError
from repro.sim.faults import FaultInjector, FaultPlan
from repro.tools.backup import create_backup, restore_backup
from repro.tools.repair import repair_store


def _tiny(preset, **kw):
    base = StoreOptions.for_preset(preset)
    return dataclasses.replace(
        base,
        memtable_bytes=4 * 1024,
        level1_max_bytes=16 * 1024,
        target_file_bytes=8 * 1024,
        top_level_bits=6,
        bit_decrement=1,
        sync_writes=True,
        **kw,
    )


def _open(env, prefix="db/"):
    return repro.open_store(
        "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix=prefix
    )


def _fill(db, n, tag, model, seed=7):
    rng = random.Random(seed)
    for i in range(n):
        k = b"key%06d" % rng.randrange(4000)
        v = b"%s-%05d" % (tag, i)
        db.put(k, v)
        model[k] = v


class TestBackupCrashRestore:
    def test_backup_then_crash_then_restore(self):
        """backup -> keep writing -> power failure -> restore -> verify."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(env)
        model = {}
        _fill(db, 1200, b"pre", model)
        db.wait_idle()
        create_backup(env.storage, "db/", "backup/")

        # Divergent post-backup writes, then the machine dies mid-flight.
        _fill(db, 600, b"post", dict(model), seed=8)
        env.storage.crash()

        restore_backup(env.storage, "backup/", "db/")
        db2 = _open(env)
        assert dict(db2.scan()) == model
        db2.check_invariants()
        db2.close()

    def test_backup_of_fault_survivor_roundtrips(self):
        """A store that retried through transient faults backs up cleanly."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(env)
        model = {}
        _fill(db, 300, b"calm", model)
        db.wait_idle()
        # Storm: background sstable appends (flush/compaction) fail
        # transiently; the engine's retry loop must absorb them.
        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(0, op="append", name_pattern="db/*.sst", times=2)
            )
        )
        _fill(db, 600, b"storm", model, seed=9)
        db.flush_memtable()
        db.wait_idle()
        env.storage.set_fault_injector(None)
        assert db.stats().transient_fault_retries > 0

        create_backup(env.storage, "db/", "backup/")
        restore_backup(env.storage, "backup/", "restored/")
        db2 = repro.open_store(
            "pebblesdb",
            env.storage,
            options=_tiny("pebblesdb"),
            prefix="restored/",
        )
        assert dict(db2.scan()) == model
        db2.check_invariants()
        db2.close()
        db.close()

    def test_fault_during_backup_refuses_then_retries_clean(self):
        """A read fault mid-backup propagates; the torn destination is not
        restorable, and a clean retry produces a good backup."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(env)
        model = {}
        _fill(db, 1000, b"v", model)
        db.flush_memtable()
        db.wait_idle()

        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(1, op="read", name_pattern="db/*.sst")
            )
        )
        with pytest.raises(TransientIOError):
            create_backup(env.storage, "db/", "backup/")
        env.storage.set_fault_injector(None)
        # The aborted attempt never published a CURRENT: restoring from it
        # must be rejected rather than yielding a half-copied store.
        with pytest.raises(ReproError):
            restore_backup(env.storage, "backup/", "restored/")

        create_backup(env.storage, "db/", "backup/")
        restore_backup(env.storage, "backup/", "restored/")
        db2 = repro.open_store(
            "pebblesdb",
            env.storage,
            options=_tiny("pebblesdb"),
            prefix="restored/",
        )
        assert dict(db2.scan()) == model
        db2.close()
        db.close()


class TestRepairFaultedStore:
    def test_repair_after_fault_storm_and_metadata_loss(self):
        """Store weathers transient faults, crashes, loses its MANIFEST;
        RepairDB brings every surviving committed write back."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(env)
        model = {}
        _fill(db, 800, b"a", model)
        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(0, op="append", name_pattern="db/*.sst", times=2)
            )
        )
        _fill(db, 400, b"b", model, seed=11)
        db.flush_memtable()
        db.wait_idle()
        env.storage.set_fault_injector(None)
        db.close()

        env.storage.crash()
        for name in list(env.storage.list_files("db/")):
            base = name[3:]
            if base == "CURRENT" or base.startswith("MANIFEST-"):
                env.storage.delete(name)

        report = repair_store(env.storage, "db/")
        assert report.tables_recovered > 0
        db2 = _open(env)
        assert dict(db2.scan()) == model
        db2.check_invariants()
        db2.close()

    def test_backup_restore_then_repair_compose(self):
        """Restore a backup, lose the restored metadata, repair it."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(env)
        model = {}
        _fill(db, 900, b"x", model)
        db.wait_idle()
        create_backup(env.storage, "db/", "backup/")
        db.close()

        restore_backup(env.storage, "backup/", "restored/")
        for name in list(env.storage.list_files("restored/")):
            base = name[len("restored/"):]
            if base == "CURRENT" or base.startswith("MANIFEST-"):
                env.storage.delete(name)
        repair_store(env.storage, "restored/")
        db2 = repro.open_store(
            "pebblesdb",
            env.storage,
            options=_tiny("pebblesdb"),
            prefix="restored/",
        )
        assert dict(db2.scan()) == model
        db2.check_invariants()
        db2.close()

"""Leveled LSM engine: operations, compaction behaviour, invariants."""

import random

import pytest

import repro
from tests.conftest import make_store, tiny_options


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=2 * 1024 * 1024)


def fill(db, n, value_size=64, seed=0, prefix=b"key"):
    rng = random.Random(seed)
    model = {}
    for i in range(n):
        k = prefix + b"%09d" % rng.randrange(10**8)
        v = b"v%04d" % i + b"x" * value_size
        db.put(k, v)
        model[k] = v
    return model


class TestBasicOps:
    def test_put_get_delete(self, env):
        db = make_store("hyperleveldb", env)
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_overwrite_returns_latest(self, env):
        db = make_store("hyperleveldb", env)
        for i in range(10):
            db.put(b"k", b"v%d" % i)
        assert db.get(b"k") == b"v9"

    def test_get_missing(self, env):
        db = make_store("hyperleveldb", env)
        assert db.get(b"nothing") is None

    def test_empty_key_rejected(self, env):
        db = make_store("hyperleveldb", env)
        with pytest.raises(repro.engines.base.InvalidArgumentError):
            db.put(b"", b"v")

    def test_write_batch_applies_all(self, env):
        from repro.util.keys import KIND_DELETE, KIND_PUT

        db = make_store("hyperleveldb", env)
        db.put(b"gone", b"x")
        db.write_batch([(KIND_PUT, b"a", b"1"), (KIND_DELETE, b"gone", b"")])
        assert db.get(b"a") == b"1"
        assert db.get(b"gone") is None

    def test_closed_store_rejects_ops(self, env):
        db = make_store("hyperleveldb", env)
        db.close()
        with pytest.raises(repro.errors.StoreClosedError):
            db.put(b"k", b"v")


class TestPersistence:
    def test_data_survives_flush_and_compaction(self, env):
        db = make_store("leveldb", env)
        model = fill(db, 2000, seed=1)
        db.compact_all()
        db.check_invariants()
        for k in random.Random(2).sample(list(model), 100):
            assert db.get(k) == model[k]

    def test_deletes_survive_compaction(self, env):
        db = make_store("hyperleveldb", env)
        model = fill(db, 1500, seed=3)
        doomed = random.Random(4).sample(list(model), 200)
        for k in doomed:
            db.delete(k)
            del model[k]
        db.compact_all()
        for k in doomed[:50]:
            assert db.get(k) is None
        for k in random.Random(5).sample(list(model), 50):
            assert db.get(k) == model[k]

    def test_tombstones_garbage_collected_at_bottom(self, env):
        db = make_store("hyperleveldb", env)
        model = fill(db, 1000, seed=6)
        for k in list(model):
            db.delete(k)
        db.force_full_compaction()
        # After full compaction of an all-deleted dataset, nearly all
        # data should be gone from storage.
        assert sum(db.level_sizes()) < 20 * 1024
        assert list(db.scan()) == []


class TestIterators:
    def test_scan_sorted_and_complete(self, env):
        db = make_store("hyperleveldb", env)
        model = fill(db, 1200, seed=7)
        got = list(db.scan())
        assert [k for k, _ in got] == sorted(model)
        assert dict(got) == model

    def test_seek_positions_correctly(self, env):
        db = make_store("hyperleveldb", env)
        for i in range(100):
            db.put(b"k%04d" % (i * 2), b"v")
        it = db.seek(b"k0051")
        assert it.key() == b"k0052"
        it.next()
        assert it.key() == b"k0054"
        it.close()

    def test_range_query_inclusive(self, env):
        db = make_store("hyperleveldb", env)
        for i in range(20):
            db.put(b"k%02d" % i, b"%d" % i)
        rows = db.range_query(b"k05", b"k08")
        assert [k for k, _ in rows] == [b"k05", b"k06", b"k07", b"k08"]

    def test_scan_skips_tombstones(self, env):
        db = make_store("hyperleveldb", env)
        for i in range(50):
            db.put(b"k%02d" % i, b"v")
        for i in range(0, 50, 2):
            db.delete(b"k%02d" % i)
        keys = [k for k, _ in db.scan()]
        assert keys == [b"k%02d" % i for i in range(1, 50, 2)]

    def test_iterator_stable_across_interleaved_writes(self, env):
        db = make_store("hyperleveldb", env)
        fill(db, 800, seed=8, prefix=b"a")
        it = db.seek(b"a")
        seen = 0
        prev = None
        while it.valid and seen < 400:
            key = it.key()
            assert prev is None or key > prev
            prev = key
            # Interleave writes that trigger flushes/compactions.
            db.put(b"zz%05d" % seen, b"w" * 64)
            it.next()
            seen += 1
        it.close()
        db.check_invariants()


class TestCompactionMechanics:
    def test_levels_fill_downward(self, env):
        db = make_store("hyperleveldb", env)
        fill(db, 3000, seed=9)
        db.wait_idle()
        sizes = db.level_sizes()
        assert sum(sizes[1:]) > 0, "data never left level 0"
        db.check_invariants()

    def test_disjoint_invariant_below_level0(self, env):
        db = make_store("leveldb", env)
        fill(db, 2500, seed=10)
        db.wait_idle()
        db.check_invariants()  # asserts per-level disjointness

    def test_trivial_move_on_sequential_load(self, env):
        db = make_store("hyperleveldb", env)
        for i in range(3000):
            db.put(b"seq%08d" % i, b"v" * 64)
        db.wait_idle()
        stats = db.stats()
        # Sequential fill should cost close to 2x user bytes (WAL+flush):
        # compaction moves files without rewriting.
        assert stats.write_amplification < 3.0

    def test_random_load_amplification_higher_than_sequential(self, env):
        env_a = repro.Environment(cache_bytes=2 * 1024 * 1024)
        env_b = repro.Environment(cache_bytes=2 * 1024 * 1024)
        db_seq = make_store("hyperleveldb", env_a)
        db_rand = make_store("hyperleveldb", env_b)
        for i in range(2500):
            db_seq.put(b"seq%08d" % i, b"v" * 64)
        fill(db_rand, 2500, seed=11)
        db_seq.wait_idle()
        db_rand.wait_idle()
        assert (
            db_rand.stats().write_amplification
            > db_seq.stats().write_amplification
        )

    def test_compaction_trace_records_rewrites(self, env):
        db = make_store("leveldb", env)
        db.compaction_trace = []
        fill(db, 2000, seed=12)
        db.wait_idle()
        assert db.compaction_trace, "no compactions traced"
        level, inputs, outputs, written = db.compaction_trace[0]
        assert inputs and written >= 0

    def test_rocksdb_preset_writes_more_than_hyperleveldb(self):
        results = {}
        for preset in ("rocksdb", "hyperleveldb"):
            env = repro.Environment(cache_bytes=2 * 1024 * 1024)
            db = make_store(preset, env)
            fill(db, 2500, seed=13)
            db.wait_idle()
            results[preset] = db.stats().write_amplification
        assert results["rocksdb"] > results["hyperleveldb"]


class TestStats:
    def test_counters(self, env):
        db = make_store("hyperleveldb", env)
        db.put(b"a", b"1")
        db.get(b"a")
        db.get(b"b")
        db.delete(b"a")
        it = db.seek(b"a")
        it.close()
        s = db.stats()
        assert (s.puts, s.gets, s.deletes, s.seeks) == (1, 2, 1, 1)
        assert s.user_bytes_written == 3  # a+1 then a (delete counts key)

    def test_write_amplification_at_least_wal_plus_flush(self, env):
        db = make_store("hyperleveldb", env)
        fill(db, 1500, seed=14)
        db.flush_memtable()
        s = db.stats()
        assert s.write_amplification > 1.5

    def test_memory_accounting_positive(self, env):
        db = make_store("hyperleveldb", env)
        fill(db, 500, seed=15)
        assert db.stats().memory_bytes > 0

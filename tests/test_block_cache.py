"""Decoded-block cache: LRU behavior, invalidation, metrics neutrality.

The cache is host-side memoization of parsed sstable blocks — it must
change wall-clock only, never a simulated number.  The tests here cover
the cache data structure itself, its wiring into the engines (eviction
on compaction, stats surfacing), the PageCache per-file index it rides
along with, and the headline invariant: byte-identical simulated metrics
with the cache on or off.
"""

import pytest

from repro.harness import fresh_run, standard_config
from repro.sim.cache import PAGE_SIZE, PageCache
from repro.sstable.block_cache import DecodedBlock, DecodedBlockCache
from repro.util.keys import KIND_PUT, MAX_SEQUENCE, InternalKey


def _block(nbytes: int) -> DecodedBlock:
    """A dummy decoded block charging exactly ``nbytes`` to the budget."""
    return DecodedBlock([], nbytes)


def _entries(*user_keys: bytes):
    return [(InternalKey(k, 10, KIND_PUT), b"v-" + k) for k in user_keys]


class TestDecodedBlock:
    def test_nbytes_includes_entry_overhead(self):
        block = DecodedBlock(_entries(b"a", b"b"), 100)
        assert block.nbytes > 100

    def test_keys_lazy_and_memoized(self):
        block = DecodedBlock(_entries(b"a", b"b", b"c"), 10)
        keys = block.keys
        assert [k.user_key for k in keys] == [b"a", b"b", b"c"]
        assert block.keys is keys

    def test_bisect_matches_key_array(self):
        block = DecodedBlock(_entries(b"a", b"c", b"e"), 10)
        probe = InternalKey(b"c", 2**56 - 1, KIND_PUT)
        without_keys = block.bisect(probe)
        block.keys  # materialize, then bisect again via the array
        assert block.bisect(probe) == without_keys == 1


class TestDecodedBlockCache:
    def test_hit_and_miss_counters(self):
        cache = DecodedBlockCache(1024)
        assert cache.get(7, 0) is None
        cache.put(7, 0, _block(100))
        assert cache.get(7, 0) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.insertions == 1

    def test_lru_eviction_under_byte_budget(self):
        cache = DecodedBlockCache(1000)
        cache.put(1, 0, _block(400))
        cache.put(1, 4096, _block(400))
        cache.get(1, 0)  # refresh the first block
        cache.put(1, 8192, _block(400))  # budget forces one eviction
        assert cache.stats.evictions == 1
        assert cache.get(1, 0) is not None  # refreshed, survived
        assert cache.get(1, 4096) is None  # LRU victim
        assert cache.size_bytes <= 1000

    def test_oversized_item_is_not_cached(self):
        cache = DecodedBlockCache(100)
        cache.put(1, 0, _block(101))
        assert len(cache) == 0
        assert cache.get(1, 0) is None

    def test_replace_same_key_adjusts_size(self):
        cache = DecodedBlockCache(1000)
        cache.put(1, 0, _block(300))
        cache.put(1, 0, _block(500))
        assert len(cache) == 1
        assert cache.size_bytes == 500

    def test_drop_file_invalidates_only_that_file(self):
        cache = DecodedBlockCache(10_000)
        cache.put(1, 0, _block(100))
        cache.put(1, 4096, _block(100))
        cache.put(2, 0, _block(100))
        cache.drop_file(1)
        assert cache.get(1, 0) is None
        assert cache.get(1, 4096) is None
        assert cache.get(2, 0) is not None
        assert cache.cached_files() == {2}
        assert cache.size_bytes == 100

    def test_eviction_keeps_file_index_consistent(self):
        cache = DecodedBlockCache(1000)
        for file_id in range(10):
            cache.put(file_id, 0, _block(250))  # evicts as it goes
        assert cache.size_bytes <= 1000
        # Every indexed file must still have its block resident.
        for file_id in cache.cached_files():
            assert cache.get(file_id, 0) is not None
        # drop_file on an evicted file is a no-op, not an error.
        cache.drop_file(0)


class TestPageCacheFileIndex:
    def test_drop_file_with_many_files_cached(self):
        cache = PageCache(10_000 * PAGE_SIZE)
        for file_id in range(200):
            cache.populate_range(file_id, 0, 4 * PAGE_SIZE)
        cache.drop_file(137)
        for page in range(4):
            assert not cache.access(137, page, insert=False)
        assert cache.access(136, 0, insert=False)
        assert cache.access(138, 3, insert=False)
        assert cache.size_bytes == 199 * 4 * PAGE_SIZE

    def test_index_consistent_after_evictions(self):
        cache = PageCache(16 * PAGE_SIZE)
        for file_id in range(20):
            cache.populate_range(file_id, 0, 4 * PAGE_SIZE)
        indexed = sum(len(pages) for pages in cache._file_pages.values())
        assert indexed == len(cache._pages) == 16
        for file_id in range(20):
            cache.drop_file(file_id)
        assert cache.size_bytes == 0
        assert not cache._file_pages


def _warmed_run(engine="pebblesdb", **option_overrides):
    cfg = standard_config(
        num_keys=2500,
        value_size=256,
        seed=11,
        option_overrides={engine: option_overrides} if option_overrides else {},
    )
    run = fresh_run(engine, cfg)
    run.bench.fill_random()
    run.db.wait_idle()
    return run


class TestStoreIntegration:
    def test_stats_and_property_surface_cache_traffic(self):
        run = _warmed_run()
        run.bench.read_random(400)
        stats = run.db.stats()
        assert stats.block_cache_hits + stats.block_cache_misses > 0
        assert 0.0 <= stats.block_cache_hit_rate <= 1.0
        prop = run.db.get_property("repro.block-cache")
        assert prop is not None and prop.startswith("hits=")
        run.db.close()

    def test_disabled_cache_reports_disabled(self):
        run = _warmed_run(block_cache_bytes=0)
        run.bench.read_random(100)
        stats = run.db.stats()
        assert stats.block_cache_hits == 0
        assert stats.block_cache_misses == 0
        assert run.db.get_property("repro.block-cache") == "disabled"
        run.db.close()

    def test_compaction_invalidates_dead_files(self):
        run = _warmed_run()
        run.bench.read_random(400)  # warm the decoded cache
        cache = run.db._block_cache
        assert cache is not None and len(cache) > 0
        run.db.compact_all()
        run.db.wait_idle()
        live = set(run.db.sstable_file_numbers())
        assert cache.cached_files() <= live
        # Reads after invalidation still return every key.
        result = run.bench.read_random(400)
        assert result.extra["found_fraction"] == 1.0
        run.db.close()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            _warmed_run(block_cache_bytes=-1)


class TestMetricsNeutrality:
    """The acceptance invariant: the cache never moves a simulated number."""

    @pytest.mark.parametrize("engine", ["pebblesdb", "leveldb"])
    def test_simulated_metrics_identical_cache_on_vs_off(self, engine):
        def observe(block_cache_bytes):
            # A tiny table cache forces reader reopens, exercising the
            # metadata-memoization path in SSTableReader.open as well.
            run = _warmed_run(
                engine,
                block_cache_bytes=block_cache_bytes,
                table_cache_size=4,
            )
            run.db.compact_all()
            read = run.bench.read_random(800)
            seek = run.bench.seek_random(200, nexts=5)
            run.db.wait_idle()
            storage = run.env.storage
            observed = (
                run.env.clock.now,
                storage.stats.bytes_read,
                storage.stats.bytes_written,
                storage.stats.read_ops,
                storage.stats.write_ops,
                dict(storage.stats.read_by_account),
                storage.cache.stats.hits,
                storage.cache.stats.misses,
                storage.cache.stats.evictions,
                read.elapsed_seconds,
                read.extra["found_fraction"],
                seek.elapsed_seconds,
            )
            hit_traffic = run.db.stats().block_cache_hits
            run.db.close()
            return observed, hit_traffic

        with_cache, hits_on = observe(32 * 1024 * 1024)
        without_cache, hits_off = observe(0)
        assert hits_on > 0, "cache must actually serve hits for this to test anything"
        assert hits_off == 0
        assert with_cache == without_cache


class TestEvictionOnError:
    """A decode failure must purge the file from the decoded cache: stale
    host-side entries for a corrupt or replaced file can never be served."""

    def _table(self):
        from repro.sim.storage import SimulatedStorage
        from repro.sstable import SSTableBuilder, SSTableReader

        storage = SimulatedStorage(cache=PageCache(1 << 20))
        acct = storage.foreground_account()
        builder = SSTableBuilder(block_size=256)
        for i in range(200):
            builder.add(InternalKey(b"key%04d" % i, i + 1, KIND_PUT), b"v" * 20)
        blob, _, _ = builder.finish()
        storage.create("t.sst")
        storage.append("t.sst", blob, acct)
        storage.sync("t.sst", acct)
        cache = DecodedBlockCache(1 << 20)
        reader = SSTableReader.open(
            storage, "t.sst", acct, block_cache=cache, cache_key=7
        )
        return storage, acct, cache, reader

    def test_corrupt_block_purges_whole_file(self):
        from repro.errors import CorruptionError

        storage, acct, cache, reader = self._table()
        reader.get(b"key0000", MAX_SEQUENCE, acct)  # caches early blocks
        assert 7 in cache.cached_files()
        # Corrupt the last data block (not yet decoded or cached).
        last = reader._index[-1]
        storage.write_at("t.sst", last.offset + 5, b"\xff", acct)
        storage.cache.clear()  # force a device read of the corrupt bytes
        with pytest.raises(CorruptionError):
            reader.get(b"key0199", MAX_SEQUENCE, acct)
        assert 7 not in cache.cached_files(), (
            "decode failure must drop every cached entry of the file"
        )

    def test_corrupt_open_leaves_no_metadata_cached(self):
        from repro.errors import CorruptionError
        from repro.sstable import SSTableReader

        storage, acct, cache, reader = self._table()
        # Sever the footer of a *different* copy and open it against the
        # same cache: nothing of it may be cached after the failure.
        size = storage.size("t.sst")
        blob = storage.read("t.sst", 0, size, acct)
        storage.create("u.sst")
        storage.append("u.sst", blob[: size - 3], acct)
        with pytest.raises(CorruptionError):
            SSTableReader.open(storage, "u.sst", acct, block_cache=cache, cache_key=8)
        assert 8 not in cache.cached_files()

"""Key–value separation: the garbage-collected value log.

Covers the subsystem end to end: pointer/record codecs, the MANIFEST
liveness tags, engine round-trips over separated values (gets, scans,
reverse scans, snapshots, reopen), GC relocation and deterministic
segment retirement, honest write-amplification accounting, crash safety
against torn value-log appends, and backup/repair over separated stores.
"""

import dataclasses
import hashlib
import random

import pytest

import repro
from repro.errors import CorruptionError
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sstable.format import ValuePointer
from repro.tools.backup import create_backup, restore_backup
from repro.tools.repair import repair_store
from repro.util.keys import KIND_PUT, KIND_VPTR
from repro.version.manifest import VersionEdit
from repro.vlog import ValueLog, decode_record, encode_record
from tests.conftest import LSM_ENGINES, tiny_options

SEP = 64  # separation threshold used throughout: values >= 64 B split


def _options(engine, **overrides):
    overrides.setdefault("value_separation_bytes", SEP)
    overrides.setdefault("vlog_segment_bytes", 4096)
    return tiny_options(engine, **overrides)


def _open(engine, env, **overrides):
    return repro.open_store(
        engine, env.storage, options=_options(engine, **overrides), prefix="db/"
    )


def _fill(db, n=300, seed=7, key_space=150):
    """Mixed small/large workload; returns the expected final contents."""
    rng = random.Random(seed)
    expect = {}
    for i in range(n):
        key = b"key%04d" % rng.randrange(key_space)
        size = rng.choice([8, 80, 500])  # below, at, and past the threshold
        value = (b"%02x" % (i % 256)) * (size // 2)
        db.put(key, value)
        expect[key] = value
    for _ in range(n // 10):
        key = b"key%04d" % rng.randrange(key_space)
        db.delete(key)
        expect.pop(key, None)
    return expect


def _digests(storage, prefix="db/"):
    acct = storage.foreground_account("digest")
    return {
        name: hashlib.sha256(
            bytes(storage.read(name, 0, storage.size(name), acct, sequential=True))
        ).hexdigest()
        for name in sorted(storage.list_files(prefix))
    }


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class TestCodecs:
    def test_value_pointer_round_trip(self):
        pointer = ValuePointer(segment=7, offset=123456, record_length=532, value_length=500)
        assert ValuePointer.decode(pointer.encode()) == pointer

    def test_value_pointer_rejects_truncation_and_trailing(self):
        encoded = ValuePointer(1, 2, 3, 4).encode()
        with pytest.raises(CorruptionError):
            ValuePointer.decode(encoded[:-1])
        with pytest.raises(CorruptionError):
            ValuePointer.decode(encoded + b"\x00")

    def test_record_round_trip(self):
        record = encode_record(b"k", b"v" * 100, 42)
        assert decode_record(record) == (b"k", b"v" * 100, 42)

    def test_record_detects_corruption(self):
        record = bytearray(encode_record(b"k", b"v" * 100, 42))
        record[30] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_record(bytes(record))

    def test_manifest_vlog_tags_round_trip(self):
        edit = VersionEdit(vlog_dead=[(3, 100), (9, 7)], deleted_vlog_segments=[3])
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.vlog_dead == [(3, 100), (9, 7)]
        assert decoded.deleted_vlog_segments == [3]

    def test_empty_vlog_tags_encode_to_nothing(self):
        # The byte-identity guarantee for separation-off stores.
        assert VersionEdit(last_sequence=5).encode() == VersionEdit(
            last_sequence=5, vlog_dead=[], deleted_vlog_segments=[]
        ).encode()


# ----------------------------------------------------------------------
# Engine round-trips
# ----------------------------------------------------------------------
class TestSeparatedReads:
    @pytest.mark.parametrize("engine", LSM_ENGINES)
    def test_round_trip_flush_compact_reopen(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(engine, env)
        expect = _fill(db)
        db.flush_memtable()
        assert dict(db.scan()) == expect
        db.compact_all()
        db.wait_idle()
        for key, value in expect.items():
            assert db.get(key) == value
        fwd = list(db.scan())
        assert fwd == list(reversed(list(db.scan_reverse())))
        db.close()
        db2 = _open(engine, env)
        assert dict(db2.scan()) == expect
        db2.close()

    def test_snapshot_pins_separated_values(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        expect = _fill(db)
        snap = db.get_snapshot()
        frozen = dict(expect)
        for key in list(expect):
            db.put(key, b"X" * 200)  # all separated, all shadowing
        db.compact_all()
        db.wait_idle()
        assert dict(db.scan(snapshot=snap)) == frozen
        for key, value in list(frozen.items())[:20]:
            assert db.get(key, snapshot=snap) == value
        db.release_snapshot(snap)
        db.close()

    def test_gc_under_open_snapshot_then_after_release(self):
        """GC must not free records a snapshot still reads; once released,
        further compaction may retire the garbage."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        keys = [b"key%04d" % i for i in range(60)]
        for key in keys:
            db.put(key, b"old" * 100)
        db.flush_memtable()
        snap = db.get_snapshot()
        for _ in range(4):  # churn: garbage across many segments
            for key in keys:
                db.put(key, b"new" * 100)
            db.flush_memtable()
        db.compact_all()
        db.wait_idle()
        assert all(db.get(k, snapshot=snap) == b"old" * 100 for k in keys)
        assert all(db.get(k) == b"new" * 100 for k in keys)
        db.release_snapshot(snap)
        db.compact_all()
        db.wait_idle()
        assert all(db.get(k) == b"new" * 100 for k in keys)
        db.close()

    def test_mixed_small_values_stay_inline(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        db.put(b"small", b"x" * (SEP - 1))
        db.put(b"large", b"y" * SEP)
        db.flush_memtable()
        stats = db.stats()
        # Exactly one record crossed the threshold.
        assert stats.extra["vlog_segments"] >= 1
        vl = db._vlog
        assert vl.records_written == 1
        assert db.get(b"small") == b"x" * (SEP - 1)
        assert db.get(b"large") == b"y" * SEP
        db.close()


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
class TestAccounting:
    def test_write_amp_counts_vlog_bytes(self):
        """write_amp = (wal + vlog + sstable + ...) / user bytes — the
        value log's device writes must not vanish from the numerator."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        expect = _fill(db)
        db.compact_all()
        db.wait_idle()
        stats = db.stats()
        written = env.storage.stats.written_by_account
        by_account = {
            name: v for name, v in written.items() if name.startswith("db/")
        }
        vlog_bytes = sum(v for n, v in by_account.items() if "vlog" in n)
        assert vlog_bytes > 0
        assert stats.device_bytes_written == sum(by_account.values())
        assert stats.write_amplification == pytest.approx(
            stats.device_bytes_written / stats.user_bytes_written
        )
        db.close()

    def test_user_bytes_use_original_value_sizes(self):
        """Separation must not shrink the denominator: user bytes are the
        bytes the user wrote, not the pointer bytes the tree stores."""

        def user_bytes(separation):
            env = repro.Environment(cache_bytes=1 << 20)
            db = repro.open_store(
                "pebblesdb",
                env.storage,
                options=tiny_options(
                    "pebblesdb", value_separation_bytes=separation
                ),
                prefix="db/",
            )
            for i in range(50):
                db.put(b"key%04d" % i, b"v" * 400)
            total = db.stats().user_bytes_written
            db.close()
            return total

        assert user_bytes(SEP) == user_bytes(None)


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------
class TestGC:
    def _churn(self, db, rounds=5, keys=80):
        for version in range(rounds):
            for i in range(keys):
                db.put(b"key%04d" % i, (b"%d" % version) * 300)
            db.flush_memtable()
        db.compact_all()
        db.wait_idle()

    @pytest.mark.parametrize("engine", ["leveldb", "pebblesdb"])
    def test_gc_relocates_and_retires(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open(engine, env)
        self._churn(db)
        vl = db._vlog
        assert vl.segments_retired > 0, "churn retired no segment"
        live = {name for name in env.storage.list_files("db/") if name.endswith(".vlg")}
        assert len(live) == len(vl.segment_numbers())
        # Every surviving value still resolves.
        for i in range(80):
            assert db.get(b"key%04d" % i) == b"4" * 300
        db.close()

    def test_gc_deterministic_across_repeats(self):
        """Same seeded workload, same schedule => identical segment state
        and identical on-disk bytes, ten times over."""
        lines, digests = set(), set()
        for _ in range(10):
            env = repro.Environment(cache_bytes=1 << 20)
            db = _open("pebblesdb", env)
            _fill(db)
            self._churn(db, rounds=3, keys=60)
            lines.add(db.get_property("repro.vlog"))
            db.close()
            digests.add(tuple(sorted(_digests(env.storage).items())))
        assert len(lines) == 1, f"GC state diverged: {lines}"
        assert len(digests) == 1, "on-disk state diverged across repeats"

    def test_dead_counters_survive_reopen(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        self._churn(db, rounds=3)
        before = (db._vlog.data_bytes(), db._vlog.dead_bytes())
        db.close()
        db2 = _open("pebblesdb", env)
        assert (db2._vlog.data_bytes(), db2._vlog.dead_bytes()) == before
        db2.close()


# ----------------------------------------------------------------------
# Separation off: byte-for-byte invisibility
# ----------------------------------------------------------------------
class TestSeparationOff:
    def test_disabled_runs_are_identical_and_vlog_free(self):
        def run():
            env = repro.Environment(cache_bytes=1 << 20)
            db = repro.open_store(
                "pebblesdb", env.storage, options=tiny_options("pebblesdb"),
                prefix="db/",
            )
            _fill(db)
            db.compact_all()
            db.wait_idle()
            db.close()
            return _digests(env.storage)

        a, b = run(), run()
        assert a == b
        assert not any(name.endswith(".vlg") for name in a)


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------
class TestCrashSafety:
    def test_unsynced_vlog_tail_never_serves_wrong_data(self):
        """Crash with unsynced vlog+WAL tail: recovery returns a prefix of
        acknowledged writes, never a torn value."""
        for crash_after in (1, 5, 20, 60, 119):
            env = repro.Environment(cache_bytes=1 << 20)
            db = _open("pebblesdb", env, sync_writes=True)
            model = {}
            for i in range(crash_after):
                key = b"key%03d" % (i % 40)
                value = b"v%05d" % i * 20
                db.put(key, value)
                model[key] = value
            env.storage.crash()
            db2 = _open("pebblesdb", env, sync_writes=True)
            assert dict(db2.scan()) == model, f"crash after {crash_after}"
            # Recovered store keeps working, including new separated writes.
            db2.put(b"post", b"crash" * 40)
            assert db2.get(b"post") == b"crash" * 40
            db2.close()

    def test_torn_vlog_append_burns_sequences(self):
        """A failed vlog append aborts the write, and its sequence range
        is burned so phantom records can never collide with later writes."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        db.put(b"ok", b"x" * 200)
        seq_before = db._last_sequence
        plan = FaultPlan.from_string("persistent:append:db/*.vlg:at=0:times=1")
        env.storage.set_fault_injector(FaultInjector(plan))
        with pytest.raises(repro.errors.ReproError):
            db.put(b"doomed", b"y" * 200)
        env.storage.set_fault_injector(None)
        assert db._last_sequence > seq_before, "failed write burned no sequence"
        assert db.get(b"doomed") is None
        assert db.get(b"ok") == b"x" * 200
        db.put(b"after", b"z" * 200)
        assert db.get(b"after") == b"z" * 200
        db.close()
        db2 = _open("pebblesdb", env)
        state = dict(db2.scan())
        assert state[b"ok"] == b"x" * 200 and state[b"after"] == b"z" * 200
        assert b"doomed" not in state
        db2.close()

    def test_replay_rejects_pointers_when_separation_disabled(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env, sync_writes=True)
        db.put(b"big", b"x" * 500)
        env.storage.crash()
        with pytest.raises(CorruptionError):
            repro.open_store(
                "pebblesdb", env.storage, options=tiny_options("pebblesdb"),
                prefix="db/",
            )

    def test_batch_with_torn_pointer_drops_whole(self):
        """Unsynced batch whose vlog bytes were lost: the batch vanishes
        atomically (no half-applied small keys)."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)  # sync_writes off: tail is losable
        db.write_batch([(KIND_PUT, b"base", b"b" * 200)], sync=True)
        db.write_batch(
            [
                (KIND_PUT, b"small", b"s"),
                (KIND_PUT, b"large", b"L" * 400),
            ]
        )
        env.storage.crash()
        db2 = _open("pebblesdb", env)
        state = dict(db2.scan())
        applied = state == {b"base": b"b" * 200, b"small": b"s", b"large": b"L" * 400}
        dropped = state == {b"base": b"b" * 200}
        assert applied or dropped, f"partial batch visible: {state}"
        db2.close()


# ----------------------------------------------------------------------
# Tools
# ----------------------------------------------------------------------
class TestTools:
    def test_backup_restore_covers_segments(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env)
        expect = _fill(db)
        db.flush_memtable()
        db.wait_idle()
        report = create_backup(env.storage, "db/", "bak/")
        assert any(name.endswith(".vlg") for name in report.names)
        restore_backup(env.storage, "bak/", "restored/")
        db2 = repro.open_store(
            "pebblesdb", env.storage, options=_options("pebblesdb"),
            prefix="restored/",
        )
        assert dict(db2.scan()) == expect
        db2.close()
        db.close()

    def test_repair_rebuilds_separated_store(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = _open("pebblesdb", env, sync_writes=True)
        expect = _fill(db, n=150)
        db.flush_memtable()
        db.wait_idle()
        db.close()
        # Lose the metadata; the data files survive.
        for name in list(env.storage.list_files("db/")):
            base = name[len("db/"):]
            if base.startswith("MANIFEST-") or base == "CURRENT":
                env.storage.delete(name)
        report = repair_store(env.storage, "db/")
        assert report.tables_corrupt == 0
        db2 = _open("pebblesdb", env)
        assert dict(db2.scan()) == expect
        # Allocator must not re-use surviving segment numbers.
        db2.put(b"fresh", b"f" * 300)
        db2.flush_memtable()
        assert db2.get(b"fresh") == b"f" * 300
        db2.close()

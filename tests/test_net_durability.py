"""Durability of the process serving mode: log shipping, supervised
auto-restart, graceful handoff, and the client retry budget.

The headline contract (ISSUE 7): a same-seed run with a mid-workload
worker kill converges to the *byte-identical* per-shard state digest of
an uninterrupted run for all acknowledged writes.  The differential
chaos tests below sweep seeded kill points across both sides of the
ship boundary:

* ``before_ship`` — the commit was applied in the worker but its ship
  record never reached the parent, and the client was never acked; the
  client's retry re-applies it (exactly once) in the replacement worker.
* ``after_ship`` — the record reached the parent but the client was
  never acked; replay restores the commit *and* the dedup table, so the
  client's retry deduplicates (``applied == False``) instead of
  double-applying.

Both land on the digest of the no-crash run because replaying the full
ship log re-issues the exact ``write_batch`` sequence the original
worker executed (engine storage bytes are a pure function of that
sequence under sequential driving).
"""

import asyncio
import time

import pytest

from repro.net.client import ClusterClient
from repro.net.errors import (
    RetriesExhaustedError,
    ServerUnavailableError,
    ShardDegradedError,
)
from repro.net.mp import (
    SHARD_ACTIVE,
    SHARD_DEGRADED,
    ProcessKVServer,
)
from repro.net.server import ServerConfig
from repro.sim.faults import KillPoint
from repro.workloads.distributions import KeyCodec, value_bytes

CODEC = KeyCodec(16)


def K(i):
    return CODEC.encode(i)


def V(i, size=64):
    return value_bytes(i, size)


def config(shards=2, num_keys=400, seed=7, **overrides):
    overrides.setdefault("heartbeat_interval", 0.05)
    overrides.setdefault("restart_backoff_base", 0.01)
    overrides.setdefault("restart_backoff_max", 0.05)
    return ServerConfig(
        shards=shards,
        uniform_keys=num_keys,
        seed=seed,
        cache_bytes=1 << 20,
        **overrides,
    )


def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def open_client(server, **overrides):
    # Generous retry budget: a supervised restart (process spawn +
    # replay) can take around a second, and retries must outlast it.
    overrides.setdefault("max_retries", 40)
    overrides.setdefault("backoff_base", 0.01)
    overrides.setdefault("backoff_max", 0.25)
    return await ClusterClient.open_loopback(server, **overrides)


def shard_keys(server, shard, count, start=0):
    """The first ``count`` workload keys that route to ``shard``."""
    router = server.router
    keys = []
    i = start
    while len(keys) < count:
        if router.shard_for(K(i)) == shard:
            keys.append(i)
        i += 1
    return keys


# ----------------------------------------------------------------------
# Headline contract: crash-during-group-commit differential
# ----------------------------------------------------------------------
class TestCrashDifferential:
    async def _drive(self, server, indices):
        """Sequential puts then gets; returns (applied flags, digests)."""
        client = await open_client(server)
        applied = []
        for i in indices:
            applied.append(await client.put(K(i), V(i)))
        for i in indices:
            assert await client.get(K(i)) == V(i), f"acknowledged key {i} lost"
        await server.wait_idle()
        digests = server.state_digests()
        await client.aclose()
        return applied, digests

    def _differential(self, seed):
        kill = KillPoint.seeded(seed, lo=2, hi=6)
        indices = list(range(24))

        async def main():
            # Uninterrupted run: the reference digests.
            baseline = ProcessKVServer(config(supervise=False))
            base_applied, base_digests = await self._drive(baseline, indices)
            await baseline.aclose()
            assert all(base_applied)

            # Same seed, same ops — but shard 0's worker dies at the
            # seeded group-commit boundary and the supervisor restores it.
            server = ProcessKVServer(config())
            server.arm_worker_kill(0, kill.after_commits, kill.mode)
            crash_applied, crash_digests = await self._drive(server, indices)
            restarts = server.registry.value("supervisor.restarts", shard=0)
            await server.aclose()

            assert restarts >= 1, "the armed kill never fired"
            # No acknowledged write lost, no double apply: byte-identical.
            assert crash_digests == base_digests
            # after_ship: the killed commit was shipped, so the client's
            # retry deduplicates — exactly one False.  before_ship: the
            # retry re-applies it — all True.
            if kill.mode == "after_ship":
                assert crash_applied.count(False) == 1
            else:
                assert all(crash_applied)

        run(main())

    def test_seeded_kill_converges_seed1(self):
        self._differential(1)  # before_ship (see KillPoint.seeded)

    def test_seeded_kill_converges_seed7(self):
        self._differential(7)  # after_ship

    def test_both_modes_explicitly(self):
        # The seeded points above cover both modes; pin them explicitly
        # too so a KillPoint hash change cannot silently lose coverage.
        async def main():
            results = {}
            for mode in ("before_ship", "after_ship"):
                server = ProcessKVServer(config())
                server.arm_worker_kill(0, 3, mode)
                applied, digests = await self._drive(server, list(range(24)))
                await server.aclose()
                results[mode] = digests
                if mode == "after_ship":
                    assert applied.count(False) == 1
                else:
                    assert all(applied)
            assert results["before_ship"] == results["after_ship"]

        run(main())


# ----------------------------------------------------------------------
# Supervisor: death detection, hang detection, restart storms
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_auto_restart_after_kill(self):
        async def main():
            server = ProcessKVServer(config())
            client = await open_client(server)
            assert await client.put(K(1), b"survives")
            shard = client.router.shard_for(K(1))
            server._workers[shard].process.kill()
            # No manual restart: the supervisor notices and replays.
            assert await wait_for(
                lambda: server.worker_alive(shard)
                and server.shard_state(shard) == SHARD_ACTIVE
                and server.registry.value("supervisor.restarts", shard=shard)
                >= 1
            )
            assert await client.get(K(1)) == b"survives"
            await client.aclose()
            await server.aclose()

        run(main())

    def test_hang_detection(self):
        async def main():
            server = ProcessKVServer(config(heartbeat_timeout=0.3))
            client = await open_client(server)
            assert await client.put(K(1), b"survives-hang")
            shard = client.router.shard_for(K(1))
            # Stop the worker's control loop (the ping deadline misses)
            # while its process stays alive.
            reply = server._workers[shard].call("hang", 60.0)
            assert reply == ("hanging",)
            assert await wait_for(
                lambda: server.registry.value(
                    "supervisor.heartbeat_misses", shard=shard
                )
                >= 1
                and server.registry.value("supervisor.restarts", shard=shard)
                >= 1
                and server.shard_state(shard) == SHARD_ACTIVE
            )
            assert await client.get(K(1)) == b"survives-hang"
            await client.aclose()
            await server.aclose()

        run(main())

    def test_restart_storm_trips_breaker_then_resume(self):
        async def main():
            server = ProcessKVServer(
                config(
                    max_consecutive_restarts=2,
                    restart_probation=30.0,  # storms never look healthy
                )
            )
            client = await open_client(server, max_retries=30)
            shard = 0
            keys = shard_keys(server, shard, 10)
            # Every restarted worker dies on its next fresh commit.
            server.arm_worker_kill(shard, 1, "after_ship", repeat=True)
            acked = []
            with pytest.raises(ShardDegradedError):
                for i in keys:
                    await client.put(K(i), V(i))
                    acked.append(i)
            assert server.shard_state(shard) == SHARD_DEGRADED
            assert (
                server.registry.value("supervisor.breaker_trips", shard=shard)
                >= 1
            )
            # Sticky: still DEGRADED, immediately (no retry loop).
            before = client.stats.retries
            with pytest.raises(ShardDegradedError):
                await client.get(K(keys[0]))
            assert client.stats.retries == before
            # Operator clears the fault and resumes: replay brings back
            # every write that reached the ship log.
            server.clear_worker_kill(shard)
            server.resume_shard(shard)
            assert server.shard_state(shard) == SHARD_ACTIVE
            for i in acked:
                assert await client.get(K(i)) == V(i)
            assert await client.put(K(keys[-1]), b"post-resume")
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Graceful handoff (rolling restart)
# ----------------------------------------------------------------------
class TestHandoff:
    def test_handoff_under_concurrent_writes(self):
        async def main():
            server = ProcessKVServer(config())
            client = await open_client(server, max_retries=30)
            indices = list(range(60))

            async def writer():
                for i in indices:
                    assert await client.put(K(i), V(i)) is not None
                return True

            task = asyncio.ensure_future(writer())
            await asyncio.sleep(0.05)  # let some writes land first
            duration = await asyncio.to_thread(server.handoff_shard, 0)
            assert await task  # no write errored — only transient retries
            assert duration > 0
            assert server.registry.value("handoff.count", shard=0) == 1
            assert server.registry.value("handoff.last_seconds", shard=0) > 0
            for i in indices:
                assert await client.get(K(i)) == V(i)
            await server.wait_idle()
            assert server.shard_state(0) == SHARD_ACTIVE
            await client.aclose()
            await server.aclose()

        run(main())

    def test_handoff_refused_while_not_active(self):
        async def main():
            server = ProcessKVServer(config(supervise=False))
            server._shard_states[0] = SHARD_DEGRADED
            with pytest.raises(Exception):
                server.handoff_shard(0)
            server._shard_states[0] = SHARD_ACTIVE
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Snapshots: log truncation + logical restore
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_snapshot_truncates_log_and_restores(self):
        async def main():
            server = ProcessKVServer(
                config(shards=1, supervise=False, snapshot_interval=5)
            )
            client = await open_client(server)
            for i in range(12):
                assert await client.put(K(i), V(i))
            # Kill + restart: the drainer EOFs, so everything shipped
            # (records 1..12 and the snapshots at 5 and 10) is durable.
            server._workers[0].process.kill()
            server.restart_shard(0)
            snap_bytes, log_bytes = server.shiplog_sizes()[0]
            assert snap_bytes > 0, "no snapshot was shipped"
            # The log was truncated at the snapshot: only the records
            # after commit 10 remain, so it is far smaller than the snap.
            assert 0 < log_bytes < snap_bytes
            # Logical restore: every acknowledged write is back.
            for i in range(12):
                assert await client.get(K(i)) == V(i)
            assert await client.put(K(100), b"post-restore")
            assert await client.get(K(100)) == b"post-restore"
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Worker shutdown escalation (satellite a)
# ----------------------------------------------------------------------
class TestShutdownEscalation:
    def test_hung_worker_is_terminated_and_pipe_closed(self):
        async def main():
            server = ProcessKVServer(config(shards=1, supervise=False))
            handle = server._workers[0]
            # The control loop stops reading, so the graceful shutdown
            # message is never seen; shutdown() must escalate.
            assert handle.call("hang", 60.0) == ("hanging",)
            start = time.monotonic()
            handle.shutdown(timeout=0.3)
            elapsed = time.monotonic() - start
            assert not handle.alive
            assert handle.conn.closed
            assert elapsed < 10  # escalation, not a full hang wait
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Client retry budget (satellite b)
# ----------------------------------------------------------------------
class TestRetryBudget:
    def test_backoff_is_deterministic_and_capped(self):
        async def main():
            server = ProcessKVServer(config(shards=1, supervise=False))
            a = await open_client(server, retry_budget=1.0)
            b = await open_client(server, retry_budget=1.0)
            delays_a = [a._backoff_delay(5, n) for n in range(6)]
            delays_b = [b._backoff_delay(5, n) for n in range(6)]
            assert delays_a == delays_b  # same seed inputs, same delays
            assert all(d <= a._backoff_max for d in delays_a)
            # Jitter keeps delays in [0.5, 1.0) of the exponential value.
            for n, d in enumerate(delays_a):
                nominal = min(a._backoff_base * (2 ** n), a._backoff_max)
                assert 0.5 * nominal <= d < nominal
            await a.aclose()
            await b.aclose()
            await server.aclose()

        run(main())

    def test_budget_exhaustion_raises_distinct_error(self):
        async def main():
            server = ProcessKVServer(config(shards=1, supervise=False))
            client = await open_client(
                server, max_retries=50, retry_budget=0.05
            )
            server._workers[0].process.kill()
            server._workers[0].process.join(10)
            with pytest.raises(RetriesExhaustedError) as excinfo:
                await client.get(K(1))
            error = excinfo.value
            assert isinstance(error, ServerUnavailableError)  # compat
            assert error.attempts >= 1
            assert error.backoff_spent <= 0.05
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Admission control under supervised restart (ISSUE 8)
# ----------------------------------------------------------------------
class TestOverloadDuringRestart:
    def test_throttled_clients_lose_nothing_across_restart(self):
        """Concurrent writers squeezed through a tiny write-debt cap
        while shard 0's worker dies at a shipped-but-unacked commit: the
        supervisor restores the shard, every OVERLOADED shed is retried
        through, zero acknowledged writes are lost, and the shipped
        commit deduplicates on retry instead of double-applying."""

        async def main():
            server = ProcessKVServer(
                config(max_write_debt=2, overload_retry_after=0.001)
            )
            try:
                clients = [await open_client(server) for _ in range(4)]
                shard = 0
                keys = shard_keys(server, shard, 96)
                # after_ship: the group commit the kill lands on was
                # shipped to the parent but never acked — the clients'
                # retries of its writes must dedup, not re-apply.
                server.arm_worker_kill(shard, 8, "after_ship")
                acked = {}
                applied_flags = []

                async def hammer(client, chunk):
                    for i in chunk:
                        applied_flags.append(await client.put(K(i), V(i)))
                        acked[i] = V(i)

                await asyncio.gather(
                    *(
                        hammer(client, keys[n::4])
                        for n, client in enumerate(clients)
                    )
                )
                restarts = server.registry.value(
                    "supervisor.restarts", shard=shard
                )
                assert restarts >= 1, "the armed kill never fired"
                backoffs = sum(
                    client.stats.overload_backoffs for client in clients
                )
                assert backoffs > 0, "admission control never shed a write"
                # The shipped-unacked group commit held >= 1 write; each
                # of its retries was recognised as a duplicate.  Nothing
                # else may dedup, and nothing may be lost.
                dedups = applied_flags.count(False)
                assert 1 <= dedups <= len(clients)
                assert len(acked) == len(keys)
                reader = clients[0]
                for i, value in acked.items():
                    assert await reader.get(K(i)) == value, (
                        f"acknowledged key {i} lost across restart"
                    )
                for client in clients:
                    await client.aclose()
            finally:
                await server.aclose()

        run(main())

    def test_overload_alone_never_loses_or_duplicates(self):
        """No crash, just pressure: the cap sheds writes, every retry
        lands exactly once (all puts applied, none deduplicated)."""

        async def main():
            server = ProcessKVServer(
                config(max_write_debt=2, overload_retry_after=0.001)
            )
            try:
                clients = [await open_client(server) for _ in range(4)]
                keys = list(range(80))
                applied_flags = []

                async def hammer(client, chunk):
                    for i in chunk:
                        applied_flags.append(await client.put(K(i), V(i)))

                await asyncio.gather(
                    *(
                        hammer(client, keys[n::4])
                        for n, client in enumerate(clients)
                    )
                )
                backoffs = sum(
                    client.stats.overload_backoffs for client in clients
                )
                assert backoffs > 0, "admission control never shed a write"
                assert all(applied_flags)  # no spurious dedup
                reader = clients[0]
                for i in keys:
                    assert await reader.get(K(i)) == V(i)
                for client in clients:
                    await client.aclose()
            finally:
                await server.aclose()

        run(main())

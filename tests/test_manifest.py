"""Version edits, MANIFEST persistence, and the CURRENT pointer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.sim.storage import SimulatedStorage
from repro.util.keys import KIND_PUT, InternalKey
from repro.version import (
    FileMetadata,
    ManifestReader,
    ManifestWriter,
    VersionEdit,
    read_current,
    set_current,
)
from repro.version.manifest import GUARD_KEY, GUARD_NONE, GUARD_SENTINEL


def meta(number, lo=b"a", hi=b"z", size=100, entries=10):
    return FileMetadata(
        number=number,
        smallest=InternalKey(lo, 1, KIND_PUT),
        largest=InternalKey(hi, 2, KIND_PUT),
        file_size=size,
        num_entries=entries,
    )


class TestFileMetadata:
    def test_roundtrip(self):
        m = meta(7)
        decoded, offset = FileMetadata.decode(m.encode(), 0)
        assert (decoded.number, decoded.file_size, decoded.num_entries) == (7, 100, 10)
        assert decoded.smallest == m.smallest and decoded.largest == m.largest

    def test_overlaps(self):
        m = meta(1, b"c", b"f")
        assert m.overlaps(b"a", b"c")
        assert m.overlaps(b"d", b"e")
        assert m.overlaps(b"f", b"z")
        assert not m.overlaps(b"g", b"z")
        assert not m.overlaps(b"a", b"b")
        assert m.overlaps(None, None)

    def test_allowed_seeks_derived_from_size(self):
        small = meta(1, size=1000)
        big = meta(2, size=100 * 1024 * 1024)
        assert small.allowed_seeks == 100
        assert big.allowed_seeks > small.allowed_seeks


class TestVersionEdit:
    def test_roundtrip_full(self):
        edit = VersionEdit(last_sequence=99, next_file_number=12, log_number=4)
        edit.add_file(0, meta(1), GUARD_NONE)
        edit.add_file(2, meta(2), GUARD_SENTINEL)
        edit.add_file(3, meta(3), GUARD_KEY, b"guardkey")
        edit.delete_file(1, 5)
        edit.new_guards.append((2, b"g1"))
        edit.deleted_guards.append((3, b"g2"))
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.last_sequence == 99
        assert decoded.next_file_number == 12
        assert decoded.log_number == 4
        assert [(l, m.number, mk, gk) for l, m, mk, gk in decoded.new_files] == [
            (0, 1, GUARD_NONE, b""),
            (2, 2, GUARD_SENTINEL, b""),
            (3, 3, GUARD_KEY, b"guardkey"),
        ]
        assert decoded.deleted_files == [(1, 5)]
        assert decoded.new_guards == [(2, b"g1")]
        assert decoded.deleted_guards == [(3, b"g2")]

    def test_empty_edit_roundtrip(self):
        assert VersionEdit.decode(VersionEdit().encode()).last_sequence is None

    def test_unknown_tag_rejected(self):
        with pytest.raises(CorruptionError):
            VersionEdit.decode(b"\xee")

    @given(
        st.lists(st.tuples(st.integers(0, 6), st.integers(1, 1000)), max_size=10),
        st.lists(st.tuples(st.integers(1, 6), st.binary(min_size=1, max_size=12)), max_size=6),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, deletions, guards):
        edit = VersionEdit()
        edit.deleted_files = deletions
        edit.new_guards = guards
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.deleted_files == deletions
        assert decoded.new_guards == guards


class TestManifestLog:
    def test_append_replay(self):
        storage = SimulatedStorage()
        acct = storage.foreground_account()
        writer = ManifestWriter(storage, "MANIFEST-1")
        e1 = VersionEdit(last_sequence=1)
        e1.add_file(0, meta(1), GUARD_NONE)
        e2 = VersionEdit(last_sequence=2)
        e2.delete_file(0, 1)
        writer.append(e1, acct)
        writer.append(e2, acct)
        edits = list(ManifestReader(storage, "MANIFEST-1").edits(acct))
        assert len(edits) == 2
        assert edits[0].new_files[0][1].number == 1
        assert edits[1].deleted_files == [(0, 1)]

    def test_current_pointer(self):
        storage = SimulatedStorage()
        acct = storage.foreground_account()
        assert read_current(storage, acct, "db/") is None
        storage.create("db/MANIFEST-7")
        set_current(storage, "db/MANIFEST-7", acct, "db/")
        assert read_current(storage, acct, "db/") == "db/MANIFEST-7"
        # Repointing replaces atomically.
        storage.create("db/MANIFEST-8")
        set_current(storage, "db/MANIFEST-8", acct, "db/")
        assert read_current(storage, acct, "db/") == "db/MANIFEST-8"

    def test_current_survives_crash(self):
        storage = SimulatedStorage()
        acct = storage.foreground_account()
        storage.create("db/MANIFEST-1")
        storage.sync("db/MANIFEST-1", acct)
        set_current(storage, "db/MANIFEST-1", acct, "db/")
        storage.crash()
        assert read_current(storage, acct, "db/") == "db/MANIFEST-1"

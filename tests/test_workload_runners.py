"""db_bench, YCSB, and time-series workload drivers."""

import pytest

import repro
from repro.harness import fresh_run, standard_config
from repro.workloads import DBBench, YCSB_WORKLOADS, YcsbRunner, YcsbWorkload
from repro.workloads.timeseries import TimeSeriesWorkload


@pytest.fixture
def run():
    return fresh_run("pebblesdb", standard_config(num_keys=1200, value_size=128))


class TestDBBench:
    def test_fill_then_read(self, run):
        bench = run.bench
        result = bench.fill_random()
        assert result.ops == 1200
        assert result.kops > 0
        assert result.device_bytes_written > result.user_bytes_written
        reads = bench.read_random(300)
        assert reads.extra["found_fraction"] == 1.0

    def test_fillseq_cheaper_io_than_fillrandom_for_lsm(self):
        seq = fresh_run("hyperleveldb", standard_config(num_keys=2000, value_size=128))
        rand = fresh_run("hyperleveldb", standard_config(num_keys=2000, value_size=128))
        r_seq = seq.bench.fill_seq()
        seq.db.wait_idle()
        r_rand = rand.bench.fill_random()
        rand.db.wait_idle()
        assert seq.db.stats().device_bytes_written < rand.db.stats().device_bytes_written

    def test_overwrite_and_delete(self, run):
        bench = run.bench
        bench.fill_random()
        over = bench.overwrite(400)
        assert over.ops == 400
        dels = bench.delete_random(300)
        assert dels.ops == 300

    def test_seek_with_nexts_named_rangequery(self, run):
        bench = run.bench
        bench.fill_random()
        result = bench.seek_random(50, nexts=10)
        assert result.name == "rangequery10"
        assert result.elapsed_seconds > 0

    def test_mixed_workload(self, run):
        bench = run.bench
        bench.fill_random()
        result = bench.mixed_read_write(reads=200, writes=200)
        assert result.ops == 400

    def test_result_row_renders(self, run):
        bench = run.bench
        result = bench.fill_random(100)
        row = result.row()
        assert "fillrandom" in row and "KOps/s" in row


class TestYcsb:
    def test_workload_table_matches_paper(self):
        """Table 5.3 definitions."""
        assert YCSB_WORKLOADS["A"].read == 0.5 and YCSB_WORKLOADS["A"].update == 0.5
        assert YCSB_WORKLOADS["B"].read == 0.95
        assert YCSB_WORKLOADS["C"].read == 1.0
        assert YCSB_WORKLOADS["D"].request_distribution == "latest"
        assert YCSB_WORKLOADS["E"].scan == 0.95
        assert YCSB_WORKLOADS["F"].read_modify_write == 0.5

    def test_proportions_validated(self):
        with pytest.raises(ValueError):
            YcsbWorkload("bad", "x", read=0.5, update=0.2)

    def test_load_and_run_all_workloads(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=800, value_size=128))
        ycsb = run.ycsb()
        load = ycsb.load()
        assert load.ops == 800
        for name in "ABCDEF":
            result = ycsb.run(YCSB_WORKLOADS[name], 150)
            assert result.ops == 150
            assert result.elapsed_seconds > 0, name

    def test_workload_c_is_read_only(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=600, value_size=128))
        ycsb = run.ycsb()
        ycsb.load()
        before = run.db.stats().puts
        ycsb.run(YCSB_WORKLOADS["C"], 200)
        assert run.db.stats().puts == before

    def test_run_requires_load(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=100, value_size=64))
        with pytest.raises(RuntimeError):
            run.ycsb().run(YCSB_WORKLOADS["A"], 10)

    def test_inserts_extend_keyspace(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=400, value_size=64))
        ycsb = run.ycsb()
        ycsb.load()
        ycsb.run(YCSB_WORKLOADS["D"], 400)  # 5% inserts
        assert ycsb._inserted > 400


class TestTimeSeries:
    def test_iterations_and_empty_guards(self):
        run = fresh_run("pebblesdb", standard_config(num_keys=1000, value_size=128))
        workload = TimeSeriesWorkload(
            run.db,
            run.env.storage,
            keys_per_window=400,
            reads_per_window=150,
            value_size=128,
        )
        results = workload.run(iterations=3)
        assert len(results) == 3
        assert all(r.write_kops > 0 and r.read_kops > 0 for r in results)
        # Guards accumulate across dead windows.
        assert results[-1].empty_guards >= results[0].empty_guards


class TestExtendedDbBench:
    def test_read_missing_finds_nothing(self, run):
        bench = run.bench
        bench.fill_random()
        result = bench.read_missing(300)
        assert result.extra["found_fraction"] == 0.0
        assert result.kops > 0

    def test_read_missing_cheaper_than_read_random(self):
        """Bloom filters answer most missing-key lookups without any IO;
        the dataset must exceed the page cache for hits to pay IO."""
        run = fresh_run("pebblesdb", standard_config(num_keys=6000, value_size=256))
        bench = run.bench
        bench.fill_random()
        run.db.compact_all()
        hit = bench.read_random(400)
        miss = bench.read_missing(400)
        assert miss.device_bytes_read < hit.device_bytes_read

    def test_read_hot_faster_than_read_random(self, run):
        bench = run.bench
        bench.fill_random()
        run.db.compact_all()
        bench.read_hot(100)  # warm the hot set
        hot = bench.read_hot(400)
        cold = bench.read_random(400)
        assert hot.kops > cold.kops

    def test_read_seq_scans_in_order(self, run):
        bench = run.bench
        bench.fill_random()
        result = bench.read_seq(500)
        assert result.name == "readseq"
        assert result.ops == 500

    def test_fill_sync_slower_than_async(self):
        sync = fresh_run("pebblesdb", standard_config(num_keys=800, value_size=128))
        normal = fresh_run("pebblesdb", standard_config(num_keys=800, value_size=128))
        r_sync = sync.bench.fill_sync()
        r_async = normal.bench.fill_random()
        assert r_sync.kops < r_async.kops
        # The option is restored afterwards.
        assert sync.db.options.sync_writes is False


class TestLatencyPercentiles:
    def test_percentiles_collected_and_ordered(self, run):
        bench = run.bench
        writes = bench.fill_random()
        assert writes.latencies and len(writes.latencies) == writes.ops
        assert writes.percentile(0.5) <= writes.percentile(0.99)
        reads = bench.read_random(200)
        assert reads.percentile(0.5) > 0
        assert "p50" in writes.row() and "p99" in writes.row()

    def test_write_tail_reflects_stalls(self):
        """p99 write latency under compaction pressure far exceeds p50 —
        the stall behaviour behind the paper's throughput numbers."""
        run = fresh_run("leveldb", standard_config(num_keys=6000, value_size=512))
        writes = run.bench.fill_random()
        assert writes.stall_seconds > 0
        assert writes.percentile(0.999) > 5 * writes.percentile(0.5)

    def test_unsampled_result_percentile_zero(self):
        from repro.workloads.db_bench import BenchResult

        r = BenchResult("x", 1, 1.0, 0, 0, 0)
        assert r.percentile(0.99) == 0.0

"""Corruption robustness: flipped bits must be detected, never served."""

import random

import pytest

import repro
from repro.errors import CorruptionError
from tests.conftest import make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


def _loaded(env, n=1200):
    db = make_store("pebblesdb", env, sync_writes=True)
    rng = random.Random(31)
    model = {}
    for i in range(n):
        k = b"key%06d" % rng.randrange(10**5)
        v = b"v%05d" % i
        db.put(k, v)
        model[k] = v
    db.flush_memtable()
    db.wait_idle()
    return db, model


def _flip(storage, name, offset):
    acct = storage.foreground_account()
    byte = storage.read(name, offset, 1, acct)
    storage.write_at(name, offset, bytes([byte[0] ^ 0x5A]), acct)


class TestSstableCorruption:
    def test_data_block_flip_detected_on_read(self, env):
        db, model = _loaded(env)
        tables = [n for n in env.storage.list_files("db/") if n.endswith(".sst")]
        victim = tables[0]
        # Flip a byte early in the file: inside some data block.
        _flip(env.storage, victim, 10)
        env.storage.cache.clear()
        db._table_cache.clear()
        detected = 0
        for k in list(model)[:300]:
            try:
                db.get(k)
            except CorruptionError:
                detected += 1
        assert detected > 0, "corrupted block served without detection"

    def test_scan_raises_not_garbage(self, env):
        db, model = _loaded(env)
        tables = [n for n in env.storage.list_files("db/") if n.endswith(".sst")]
        _flip(env.storage, tables[0], 25)
        env.storage.cache.clear()
        db._table_cache.clear()
        with pytest.raises(CorruptionError):
            for key, value in db.scan():
                assert key in model  # anything yielded must still be valid

    def test_random_flips_never_return_wrong_values(self, env):
        """Fuzz: any single flipped byte either leaves reads correct
        (metadata slack / untouched region) or raises CorruptionError —
        silent wrong answers are unacceptable."""
        db, model = _loaded(env, n=600)
        tables = [n for n in env.storage.list_files("db/") if n.endswith(".sst")]
        rng = random.Random(7)
        probes = rng.sample(list(model), 60)
        for trial in range(12):
            victim = rng.choice(tables)
            size = env.storage.size(victim)
            offset = rng.randrange(size)
            _flip(env.storage, victim, offset)
            env.storage.cache.clear()
            db._table_cache.clear()
            for k in probes:
                try:
                    got = db.get(k)
                except CorruptionError:
                    continue
                assert got is None or got == model[k], (
                    f"silent corruption: {k} -> {got!r} (flip at "
                    f"{victim}:{offset})"
                )
            _flip(env.storage, victim, offset)  # restore

    def test_wal_corruption_below_sync_boundary_raises(self, env):
        """With sync_writes=True every record was acknowledged durable, so
        damage below the synced boundary is data loss and recovery refuses
        to silently truncate (strict mode follows sync_writes)."""
        db = make_store("pebblesdb", env, sync_writes=True)
        for i in range(30):
            db.put(b"k%02d" % i, b"v")
        logs = [n for n in env.storage.list_files("db/") if n.endswith(".log")]
        assert logs
        _flip(env.storage, logs[0], 40)
        env.storage.crash()
        with pytest.raises(CorruptionError):
            make_store("pebblesdb", env, sync_writes=True)

    def test_wal_corruption_truncates_replay_when_lenient(self, env):
        db = make_store("pebblesdb", env, sync_writes=True)
        for i in range(30):
            db.put(b"k%02d" % i, b"v")
        logs = [n for n in env.storage.list_files("db/") if n.endswith(".log")]
        assert logs
        _flip(env.storage, logs[0], 40)
        env.storage.crash()
        db2 = make_store(
            "pebblesdb", env, sync_writes=True, strict_wal_recovery=False
        )
        # Replay stops at the corrupt record; everything before it and
        # nothing bogus afterwards.
        got = dict(db2.scan())
        for k, v in got.items():
            assert v == b"v" and k.startswith(b"k")
        db2.check_invariants()

"""Differential testing: FLSM and LSM engines must agree exactly.

The two engines share only the sstable/WAL/manifest substrate — the
entire level/guard organization differs.  Feeding both the same operation
stream and comparing every read is a powerful oracle for compaction
correctness (versions, tombstones, boundaries).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.util.keys import KIND_PUT
from tests.conftest import make_store

KEYS = [b"dk%03d" % i for i in range(120)]

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "get", "scan", "batch"]),
        st.sampled_from(KEYS),
        st.binary(min_size=1, max_size=24),
    ),
    min_size=10,
    max_size=150,
)


def _mk(engine):
    env = repro.Environment(cache_bytes=1 << 20)
    return make_store(engine, env)


@given(ops=ops_strategy)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pebbles_and_lsm_agree(ops):
    a = _mk("pebblesdb")
    b = _mk("hyperleveldb")
    for op, key, value in ops:
        if op == "put":
            a.put(key, value)
            b.put(key, value)
        elif op == "delete":
            a.delete(key)
            b.delete(key)
        elif op == "batch":
            batch = [(KIND_PUT, key, value), (KIND_PUT, key + b"~", value)]
            a.write_batch(batch)
            b.write_batch(batch)
        elif op == "get":
            assert a.get(key) == b.get(key)
        else:
            got_a = list(a.scan(key))
            got_b = list(b.scan(key))
            assert got_a == got_b
    assert dict(a.scan()) == dict(b.scan())
    a.check_invariants()
    b.check_invariants()


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_long_differential_run_with_compaction(seed):
    a = _mk("pebblesdb")
    b = _mk("leveldb")
    rng = random.Random(seed)
    keyspace = [b"key%05d" % i for i in range(600)]
    for step in range(5000):
        key = rng.choice(keyspace)
        roll = rng.random()
        if roll < 0.6:
            value = b"v%07d" % step
            a.put(key, value)
            b.put(key, value)
        elif roll < 0.75:
            a.delete(key)
            b.delete(key)
        elif roll < 0.95:
            assert a.get(key) == b.get(key), (seed, step, key)
        else:
            it_a, it_b = a.seek(key), b.seek(key)
            for _ in range(5):
                assert it_a.valid == it_b.valid
                if not it_a.valid:
                    break
                assert it_a.key() == it_b.key()
                assert it_a.value() == it_b.value()
                it_a.next()
                it_b.next()
            it_a.close()
            it_b.close()
        if step % 2000 == 1999:
            a.compact_all()
            b.compact_all()
    assert dict(a.scan()) == dict(b.scan())
    a.check_invariants()
    b.check_invariants()


@pytest.mark.parametrize("seed", [5, 31])
def test_guard_parallel_vs_level_serial(seed):
    """The two schedulers differ only in *when* compactions run: the
    guard-parallel conflict map and the whole-level serializer must agree
    on every read and on the final durable state."""
    env_p = repro.Environment(cache_bytes=1 << 20)
    env_s = repro.Environment(cache_bytes=1 << 20)
    a = make_store(
        "pebblesdb", env_p, background_workers=4, compaction_scheduler="guard"
    )
    b = make_store(
        "pebblesdb", env_s, background_workers=4, compaction_scheduler="level"
    )
    rng = random.Random(seed)
    keyspace = [b"key%05d" % i for i in range(300)]
    for step in range(2000):
        key = rng.choice(keyspace)
        roll = rng.random()
        if roll < 0.6:
            value = (b"v%06d" % step) * 8
            a.put(key, value)
            b.put(key, value)
        elif roll < 0.72:
            a.delete(key)
            b.delete(key)
        else:
            assert a.get(key) == b.get(key), (seed, step, key)
    a.wait_idle()
    b.wait_idle()
    assert dict(a.scan()) == dict(b.scan())
    # The guard scheduler actually overlapped work; the serial one never did.
    assert a.stats().compactions_parallel_peak >= 2
    assert b.stats().compactions_parallel_peak <= 1
    a.check_invariants()
    b.check_invariants()


def test_guard_parallel_vs_level_serial_durable_state():
    """After wait_idle + crash, both schedulers recover identical state."""
    env_p = repro.Environment(cache_bytes=1 << 20)
    env_s = repro.Environment(cache_bytes=1 << 20)
    a = make_store(
        "pebblesdb",
        env_p,
        background_workers=4,
        compaction_scheduler="guard",
        sync_writes=True,
    )
    b = make_store(
        "pebblesdb",
        env_s,
        background_workers=2,
        compaction_scheduler="level",
        sync_writes=True,
    )
    rng = random.Random(77)
    for step in range(1200):
        key = b"key%04d" % rng.randrange(300)
        if rng.random() < 0.8:
            value = (b"v%05d" % step) * 6
            a.put(key, value)
            b.put(key, value)
        else:
            a.delete(key)
            b.delete(key)
    a.wait_idle()
    b.wait_idle()
    env_p.storage.crash()
    env_s.storage.crash()
    a2 = make_store("pebblesdb", env_p, sync_writes=True)
    b2 = make_store("pebblesdb", env_s, sync_writes=True)
    assert dict(a2.scan()) == dict(b2.scan())
    a2.check_invariants()
    b2.check_invariants()


def test_differential_after_crash_recovery():
    env_a = repro.Environment(cache_bytes=1 << 20)
    env_b = repro.Environment(cache_bytes=1 << 20)
    a = make_store("pebblesdb", env_a, sync_writes=True)
    b = make_store("hyperleveldb", env_b, sync_writes=True)
    rng = random.Random(99)
    for step in range(1500):
        key = b"key%04d" % rng.randrange(400)
        if rng.random() < 0.8:
            value = b"v%05d" % step
            a.put(key, value)
            b.put(key, value)
        else:
            a.delete(key)
            b.delete(key)
    env_a.storage.crash()
    env_b.storage.crash()
    a2 = make_store("pebblesdb", env_a, sync_writes=True)
    b2 = make_store("hyperleveldb", env_b, sync_writes=True)
    assert dict(a2.scan()) == dict(b2.scan())

"""Backup/restore tool and the ASCII chart helpers."""

import random

import pytest

import repro
from repro.analysis.charts import grouped_bar_chart, hbar_chart, sparkline
from repro.errors import ReproError
from repro.tools.backup import create_backup, restore_backup
from tests.conftest import make_store


class TestBackupRestore:
    def _loaded_store(self, env, n=1200):
        db = make_store("pebblesdb", env, sync_writes=True)
        rng = random.Random(21)
        model = {}
        for i in range(n):
            k = b"key%06d" % rng.randrange(10**5)
            v = b"v%05d" % i
            db.put(k, v)
            model[k] = v
        db.wait_idle()
        return db, model

    def test_backup_and_restore_roundtrip(self, env):
        db, model = self._loaded_store(env)
        report = create_backup(env.storage, "db/", "backup/")
        assert report.files_copied > 1
        assert report.bytes_copied > 0

        # Destroy the original store completely.
        db.close()
        for name in list(env.storage.list_files("db/")):
            env.storage.delete(name)

        restore_backup(env.storage, "backup/", "db/")
        db2 = make_store("pebblesdb", env, sync_writes=True)
        assert dict(db2.scan()) == model
        db2.check_invariants()

    def test_backup_is_isolated_from_later_writes(self, env):
        db, model = self._loaded_store(env, n=600)
        create_backup(env.storage, "db/", "backup/")
        db.put(b"later", b"write")
        db.close()
        restore_backup(env.storage, "backup/", "restored/")
        db2 = repro.open_store("pebblesdb", env.storage, prefix="restored/")
        got = dict(db2.scan())
        assert got == model
        assert b"later" not in got

    def test_backup_requires_existing_store(self, env):
        with pytest.raises(ReproError):
            create_backup(env.storage, "nothing/", "backup/")

    def test_same_prefix_rejected(self, env):
        self._loaded_store(env, n=50)
        with pytest.raises(ReproError):
            create_backup(env.storage, "db/", "db/")
        with pytest.raises(ReproError):
            restore_backup(env.storage, "db/", "db/")

    def test_restore_from_non_backup_rejected(self, env):
        with pytest.raises(ReproError):
            restore_backup(env.storage, "void/", "db/")


class TestCharts:
    def test_hbar_chart_renders_all_entries(self):
        chart = hbar_chart(
            "Write amp", {"pebblesdb": 6.5, "rocksdb": 11.3}, unit="x",
            baseline="pebblesdb",
        )
        assert "pebblesdb" in chart and "rocksdb" in chart
        assert "(1.74x)" in chart
        assert "█" in chart

    def test_hbar_chart_empty(self):
        assert "(no data)" in hbar_chart("t", {})

    def test_grouped_bar_chart(self):
        chart = grouped_bar_chart(
            "micro",
            ["writes", "reads"],
            {"pebblesdb": [100.0, 12.0], "hyperleveldb": [50.0, 11.0]},
        )
        assert "writes:" in chart and "reads:" in chart
        assert chart.count("pebblesdb") == 2

    def test_sparkline_shape(self):
        line = sparkline([1, 2, 3, 4, 3, 2, 1])
        assert len(line) == 7
        assert line[0] == "▁" and line[3] == "█"
        assert sparkline([]) == ""
        assert sparkline([5, 5]) == "▄▄"

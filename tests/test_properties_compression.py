"""GetProperty introspection and the compression claim (section 5.1)."""

import random

import pytest

import repro
from tests.conftest import make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


def fill(db, n, seed=0):
    rng = random.Random(seed)
    for i in range(n):
        db.put(b"key%09d" % rng.randrange(10**8), b"v%04d" % i + b"x" * 128)


class TestProperties:
    def test_stats_property(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 300, seed=1)
        text = db.get_property("repro.stats")
        assert "puts=300" in text
        assert "write-amplification=" in text

    def test_levels_and_files_per_level(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 1500, seed=2)
        db.wait_idle()
        levels = db.get_property("repro.levels").split()
        assert len(levels) == db.options.num_levels
        total_files = sum(
            int(db.get_property(f"repro.num-files-at-level{i}"))
            for i in range(db.options.num_levels)
        )
        assert total_files == len(db.sstable_file_numbers())

    def test_sstables_layout_property(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 800, seed=3)
        db.flush_memtable()
        assert "Level 0" in db.get_property("repro.sstables")

    def test_memory_property(self, env):
        db = make_store("hyperleveldb", env)
        fill(db, 300, seed=4)
        assert int(db.get_property("repro.approximate-memory-usage")) > 0

    def test_pebbles_guard_properties(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 2500, seed=5)
        db.compact_all()
        guards = [int(x) for x in db.get_property("repro.guards").split()]
        assert sum(guards) > 0
        assert db.get_property("repro.empty-guards") is not None
        assert db.get_property("repro.uncommitted-guards") is not None

    def test_unknown_property_none(self, env):
        db = make_store("pebblesdb", env)
        assert db.get_property("repro.nonsense") is None
        assert db.get_property("repro.num-files-at-levelX") is None
        # LSM engine has no guard properties.
        db2 = make_store("hyperleveldb", env, )
        assert db2.get_property("repro.guards") is None


class TestCompression:
    def _amp(self, engine, ratio, seed=7):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(engine, env, compression_ratio=ratio)
        fill(db, 2500, seed=seed)
        db.wait_idle()
        return db.stats().write_amplification

    def test_compression_reduces_device_writes(self):
        assert self._amp("pebblesdb", 0.5) < self._amp("pebblesdb", 1.0)

    def test_relative_results_unchanged_by_compression(self):
        """Paper section 5.1: 'compression does not change any of our
        performance results; it simply leads to a smaller dataset'."""
        for ratio in (1.0, 0.5):
            p = self._amp("pebblesdb", ratio)
            h = self._amp("hyperleveldb", ratio)
            assert p < h, f"ordering must hold at compression ratio {ratio}"

    def test_compressed_store_reads_correctly(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env, compression_ratio=0.5)
        rng = random.Random(8)
        model = {}
        for i in range(1200):
            k = b"key%07d" % rng.randrange(10**6)
            v = b"val%05d" % i
            db.put(k, v)
            model[k] = v
        db.compact_all()
        for k in random.Random(9).sample(list(model), 100):
            assert db.get(k) == model[k]
        db.check_invariants()

    def test_space_usage_scales_with_ratio(self):
        live = {}
        for ratio in (1.0, 0.5):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, compression_ratio=ratio)
            fill(db, 1500, seed=10)
            db.flush_memtable()
            db.wait_idle()
            live[ratio] = env.storage.total_live_bytes("db/")
        assert live[0.5] < 0.75 * live[1.0]

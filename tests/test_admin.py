"""The read-only admin plane (``Op.ADMIN`` + ``aggregate_admin``).

Contracts under test:

* ``Op.ADMIN`` requests round-trip through the wire codec;
* every section answers on a loopback cluster with well-formed output
  (Prometheus text, health JSON, an exact ledger, percentile series);
* the flagship invariant — loopback and process serving modes answer
  **byte-identically** for every section on the same seed, because both
  aggregate the same picklable per-shard parts through one function;
* unknown sections are a clean miss (``found=False`` → ``None``), not
  an error.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net.client import BlockingClusterClient, ClusterClient
from repro.net.mp import ProcessKVServer
from repro.net.protocol import Op, Request, decode_payload
from repro.net.server import ADMIN_SECTIONS, KVServer, ServerConfig, aggregate_admin
from repro.obs.ledger import IoLedger
from repro.obs.metrics import MetricsRegistry

SECTIONS = ("metrics", "health", "ledger", "windows")


def config(**overrides):
    base = dict(shards=2, uniform_keys=2000, seed=7, cache_bytes=1 << 20)
    base.update(overrides)
    return ServerConfig(**base)


async def _drive(server, n=200):
    client = await ClusterClient.open_loopback(server)
    for i in range(n):
        await client.put(f"user{i:016d}".encode(), b"v" * 64)
    for i in range(0, n, 2):
        await client.get(f"user{i:016d}".encode())
    await server.wait_idle()
    return client


class TestWireCodec:
    def test_admin_request_round_trips(self):
        req = Request(op=Op.ADMIN, request_id=9, name="ledger")
        back = decode_payload(req.encode())
        assert back.op == Op.ADMIN
        assert back.request_id == 9
        assert back.name == "ledger"

    def test_sections_constant_covers_the_plane(self):
        assert set(SECTIONS) == set(ADMIN_SECTIONS)


class TestAggregate:
    def test_unknown_section_is_none(self):
        assert aggregate_admin("nope", []) is None

    def test_empty_parts_still_answer(self):
        assert aggregate_admin("metrics", []) == ""
        health = json.loads(aggregate_admin("health", []))
        assert health["shards"] == []
        ledger = IoLedger.from_dict(json.loads(aggregate_admin("ledger", [])))
        assert ledger.total_write_bytes == 0
        windows = json.loads(aggregate_admin("windows", []))
        assert windows["series"] == {}

    def test_parent_registry_merges_into_metrics(self):
        reg = MetricsRegistry()
        reg.counter("supervisor_restarts_total").inc(3)
        text = aggregate_admin("metrics", [], parent_registry=reg)
        assert "supervisor_restarts_total 3" in text

    def test_parent_ledger_merges_into_ledger(self):
        parent = IoLedger()
        parent.write_bytes["ship"] = 128
        merged = IoLedger.from_dict(
            json.loads(aggregate_admin("ledger", [], parent_ledger=parent))
        )
        assert merged.write_bytes["ship"] == 128


class TestLoopbackSections:
    def test_all_sections_answer(self):
        async def main():
            server = KVServer(config())
            client = await _drive(server)
            metrics = await client.admin("metrics")
            assert "# TYPE" in metrics
            health = json.loads(await client.admin("health"))
            assert [row["shard"] for row in health["shards"]] == [0, 1]
            assert all(row["state"] == "active" for row in health["shards"])
            assert health["totals"]["puts"] == 200
            ledger = IoLedger.from_dict(json.loads(await client.admin("ledger")))
            assert ledger.total_write_bytes == sum(
                s.env.storage.stats.bytes_written for s in server.shards
            )
            windows = json.loads(await client.admin("windows"))
            assert set(windows["series"]) >= {"get", "write"}
            await client.aclose()
            await server.aclose()

        asyncio.run(main())

    def test_unknown_section_returns_none(self):
        async def main():
            server = KVServer(config())
            client = await ClusterClient.open_loopback(server)
            assert await client.admin("bogus") is None
            await client.aclose()
            await server.aclose()

        asyncio.run(main())

    def test_blocking_client_admin(self):
        server = KVServer(config())
        client = BlockingClusterClient(server)
        try:
            client.put(b"user0000000000000001", b"v")
            health = json.loads(client.admin("health"))
            assert health["totals"]["puts"] == 1
            assert client.admin("bogus") is None
        finally:
            client.close()


class TestServingModeParity:
    def test_process_mode_answers_byte_identically(self):
        async def scrape(server):
            client = await _drive(server)
            out = {s: await client.admin(s) for s in SECTIONS}
            await client.aclose()
            await server.aclose()
            return out

        async def main():
            # ship_log/supervise off: the parent does no IO of its own,
            # so both modes aggregate exactly the same shard parts.
            cfg = dict(ship_log=False, supervise=False)
            loop_out = await scrape(KVServer(config(**cfg)))
            proc_out = await scrape(ProcessKVServer(config(**cfg)))
            for section in SECTIONS:
                assert loop_out[section] == proc_out[section], section

        asyncio.run(main())

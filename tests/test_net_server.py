"""Sharded serving layer: loopback determinism, group commit, retry
idempotence, degraded mode, snapshots, TCP, and the blocking facade.

Everything except the TCP smoke test runs over the in-memory loopback
transport, whose scheduling is a pure function of the call sequence —
same seed, same workload, byte-identical shard states.
"""

import asyncio
import dataclasses

import pytest

from repro.engines.options import StoreOptions
from repro.net.client import BlockingClusterClient, ClusterClient
from repro.net.errors import (
    RemoteError,
    ServerUnavailableError,
    ShardDegradedError,
)
from repro.net.server import KVServer, ServerConfig
from repro.net.transport import ConnectionFaultPlan, FaultyEndpoint
from repro.sim.faults import FaultInjector, FaultPlan
from repro.util.keys import KIND_DELETE, KIND_PUT
from repro.workloads.distributions import KeyCodec, value_bytes

CODEC = KeyCodec(16)


def K(i):
    return CODEC.encode(i)


def V(i, size=64):
    return value_bytes(i, size)


def tiny_options():
    return dataclasses.replace(
        StoreOptions.for_preset("pebblesdb"),
        memtable_bytes=4 * 1024,
        level1_max_bytes=16 * 1024,
        target_file_bytes=8 * 1024,
        top_level_bits=6,
        bit_decrement=1,
    )


def make_server(shards=2, num_keys=400, **overrides):
    overrides.setdefault("engine", "pebblesdb")
    return KVServer(
        ServerConfig(
            shards=shards,
            uniform_keys=num_keys,
            seed=7,
            cache_bytes=1 << 20,
            **overrides,
        )
    )


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Basic serving
# ----------------------------------------------------------------------
class TestLoopbackServing:
    def test_put_get_delete_roundtrip(self):
        async def main():
            server = make_server(shards=2)
            client = await ClusterClient.open_loopback(server)
            for i in range(0, 400, 4):
                assert await client.put(K(i), V(i))
            for i in range(0, 400, 4):
                assert await client.get(K(i)) == V(i)
            assert await client.get(b"user-nonexistent!") is None
            assert await client.delete(K(3))
            assert await client.get(K(3)) is None
            # Both shards saw traffic: range partitioning is real.
            assert all(s.stats.puts > 0 for s in server.shards)
            await client.aclose()
            await server.aclose()

        run(main())

    def test_scan_across_shards_sorted(self):
        async def main():
            server = make_server(shards=4)
            client = await ClusterClient.open_loopback(server)
            for i in range(200):
                await client.put(K(i), V(i))
            await server.wait_idle()
            pairs = await client.scan()
            assert [k for k, _ in pairs] == [K(i) for i in range(200)]
            # Bounded scan with an exclusive hi and a limit.
            pairs = await client.scan(K(50), K(150), limit=30)
            assert len(pairs) == 30
            assert pairs[0][0] == K(50)
            assert pairs == sorted(pairs)
            await client.aclose()
            await server.aclose()

        run(main())

    def test_write_batch_splits_per_shard(self):
        async def main():
            server = make_server(shards=2)
            client = await ClusterClient.open_loopback(server)
            ops = [(KIND_PUT, K(i), V(i)) for i in range(0, 400, 7)]
            ops.append((KIND_DELETE, K(7), b""))
            await client.write_batch(ops)
            assert await client.get(K(7)) is None
            assert await client.get(K(14)) == V(14)
            assert await client.get(K(399 - 399 % 7)) is not None
            assert sum(s.stats.batches for s in server.shards) == 2
            await client.aclose()
            await server.aclose()

        run(main())

    def test_bad_shard_rejected(self):
        async def main():
            server = make_server(shards=2)
            client = await ClusterClient.open_loopback(server)
            from repro.net.protocol import Op, Request

            with pytest.raises(RemoteError):
                await client._call(
                    Request(op=Op.GET, request_id=999, shard=9, key=b"k")
                )
            await client.aclose()
            await server.aclose()

        run(main())

    def test_properties_per_shard(self):
        async def main():
            server = make_server(shards=3)
            client = await ClusterClient.open_loopback(server)
            healths = await client.properties("repro.health")
            assert [h.split()[0] for h in healths] == ["ok", "ok", "ok"]
            assert await client.get_property("repro.no-such") is None
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    @staticmethod
    async def _workload():
        server = make_server(shards=2)
        client = await ClusterClient.open_loopback(server)
        # Concurrent writes exercise group-commit scheduling too.
        await asyncio.gather(*(client.put(K(i), V(i)) for i in range(150)))
        for i in range(0, 150, 3):
            await client.delete(K(i))
        await server.wait_idle()
        digests = server.state_digests()
        times = server.shard_sim_times()
        commits = server.total_ops()["group_commits"]
        await client.aclose()
        await server.aclose()
        return digests, times, commits

    def test_same_seed_same_bytes(self):
        first = run(self._workload())
        second = run(self._workload())
        assert first == second


# ----------------------------------------------------------------------
# Group commit
# ----------------------------------------------------------------------
class TestGroupCommit:
    def test_concurrent_writes_coalesce(self):
        async def main():
            server = make_server(shards=1)
            client = await ClusterClient.open_loopback(server)
            await asyncio.gather(*(client.put(K(i), V(i)) for i in range(64)))
            await server.wait_idle()
            stats = server.shards[0].stats
            assert stats.coalesced_writes == 64
            assert stats.group_commits < 64  # actually grouped
            for i in range(64):
                assert await client.get(K(i)) == V(i)
            await client.aclose()
            await server.aclose()
            return stats.group_commits

        run(main())

    def test_group_commit_disabled_commits_singly(self):
        async def main():
            server = make_server(shards=1, group_commit=False)
            client = await ClusterClient.open_loopback(server)
            await asyncio.gather(*(client.put(K(i), V(i)) for i in range(16)))
            stats = server.shards[0].stats
            assert stats.group_commits == 16
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Connection faults: retry, backoff, idempotence
# ----------------------------------------------------------------------
class TestConnectionFaults:
    @staticmethod
    def _wrap(plans):
        """endpoint_wrap hook: apply ``plans[index]`` to connection #index."""

        def wrap(endpoint, index):
            plan = plans.get(index)
            return FaultyEndpoint(endpoint, plan) if plan else endpoint

        return wrap

    def test_cut_connection_write_retries_exactly_once(self):
        async def main():
            server = make_server(shards=1)
            # Connection 0 dies right after its 4th frame
            # (HELLO, put0, put1, put2); later connections are clean.
            client = await ClusterClient.open_loopback(
                server,
                pool_size=1,
                endpoint_wrap=self._wrap(
                    {0: ConnectionFaultPlan(cut_after_frames=3)}
                ),
                sleep=lambda s: asyncio.sleep(0),
            )
            applied = [await client.put(K(i), V(i)) for i in range(6)]
            # put2's frame was delivered before the cut: the retry is
            # recognised as a duplicate and skipped, never applied twice.
            assert applied == [True, True, False, True, True, True]
            totals = server.total_ops()
            assert totals["duplicate_writes"] == 1
            assert totals["puts"] == 7  # 6 writes + 1 retried request
            assert client.stats.retries >= 1
            assert client.stats.connections_opened == 2
            for i in range(6):
                assert await client.get(K(i)) == V(i)
            await client.aclose()
            await server.aclose()

        run(main())

    def test_corrupt_frame_drops_connection_and_retries(self):
        async def main():
            server = make_server(shards=1)
            client = await ClusterClient.open_loopback(
                server,
                pool_size=1,
                endpoint_wrap=self._wrap(
                    {0: ConnectionFaultPlan(corrupt_frames=[2])}
                ),
                sleep=lambda s: asyncio.sleep(0),
            )
            for i in range(5):
                assert await client.put(K(i), V(i))
            # Frame 2 (put1) arrived damaged: the server counted one
            # protocol error and dropped the connection; the retried
            # request was a *first* application, not a duplicate.
            assert server.protocol_errors == 1
            assert server.total_ops()["duplicate_writes"] == 0
            assert client.stats.retries >= 1
            for i in range(5):
                assert await client.get(K(i)) == V(i)
            await client.aclose()
            await server.aclose()

        run(main())

    def test_retries_exhausted_raises_unavailable(self):
        async def main():
            server = make_server(shards=1)
            # Every reconnection dies immediately after HELLO.
            plans = {i: ConnectionFaultPlan(cut_after_frames=0) for i in range(1, 10)}
            client = await ClusterClient.open_loopback(
                server,
                pool_size=1,
                max_retries=2,
                endpoint_wrap=self._wrap(plans),
                sleep=lambda s: asyncio.sleep(0),
            )
            assert await client.put(K(0), V(0))
            await client._pool[0].close()  # force reconnection
            with pytest.raises(ServerUnavailableError):
                await client.put(K(1), V(1))
            assert client.stats.transient_errors >= 3
            await client.aclose()
            await server.aclose()

        run(main())

    def test_batch_idempotent_across_retried_connections(self):
        async def main():
            server = make_server(shards=1)
            client = await ClusterClient.open_loopback(
                server,
                pool_size=1,
                endpoint_wrap=self._wrap(
                    {0: ConnectionFaultPlan(cut_after_frames=1)}
                ),
                sleep=lambda s: asyncio.sleep(0),
            )
            # The batch frame is delivered, then the connection dies: the
            # retry must not double-apply (a double-applied delete-then-put
            # batch would be visible through version counting; we assert
            # via the duplicate counter and final state instead).
            await client.write_batch(
                [(KIND_PUT, K(0), b"first"), (KIND_PUT, K(1), b"second")]
            )
            assert server.total_ops()["duplicate_writes"] == 1
            assert await client.get(K(0)) == b"first"
            assert await client.get(K(1)) == b"second"
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Degraded shards
# ----------------------------------------------------------------------
class TestDegradedShard:
    def test_degraded_shard_rejects_writes_serves_reads(self):
        async def main():
            server = make_server(shards=2, options=tiny_options())
            client = await ClusterClient.open_loopback(server)
            router = client.router
            shard1_keys = [i for i in range(400) if router.shard_for(K(i)) == 1]
            baseline = shard1_keys[:20]
            for i in baseline:
                await client.put(K(i), V(i))
            await server.wait_idle()

            # Shard 1's device starts persistently failing sstable writes.
            shard = server.shards[1]
            shard.env.storage.set_fault_injector(
                FaultInjector(
                    FaultPlan.fail_nth(
                        0, op="append", name_pattern="*.sst",
                        kind="persistent", times=None,
                    )
                )
            )
            with pytest.raises(ShardDegradedError):
                for n, i in enumerate(shard1_keys[20:]):
                    await client.put(K(i), V(n, 512))
            assert shard.db.is_degraded
            assert shard.stats.degraded_rejects >= 1

            # Reads on the degraded shard keep serving; the healthy shard
            # accepts writes throughout.
            for i in baseline:
                assert await client.get(K(i)) == V(i)
            healthy = next(i for i in range(400) if router.shard_for(K(i)) == 0)
            assert await client.put(K(healthy), b"fine")
            healths = await client.properties("repro.health")
            assert [h.split()[0] for h in healths] == ["ok", "degraded"]

            # Operator clears the cause and resumes: writes flow again.
            shard.env.storage.set_fault_injector(None)
            assert shard.db.resume() is True
            assert await client.put(K(shard1_keys[21]), b"recovered")
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Snapshots over the wire
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_snapshot_reads_are_stable(self):
        async def main():
            server = make_server(shards=2)
            client = await ClusterClient.open_loopback(server)
            for i in range(50):
                await client.put(K(i), b"old%d" % i)
            snap = await client.snapshot()
            for i in range(50):
                await client.put(K(i), b"new%d" % i)
            assert await client.get(K(5), snapshot=snap) == b"old5"
            assert await client.get(K(5)) == b"new5"
            pairs = await client.scan(snapshot=snap)
            assert all(v.startswith(b"old") for _, v in pairs)
            await client.release(snap)
            with pytest.raises(RemoteError):
                await client.get(K(5), snapshot=snap)
            await client.aclose()
            await server.aclose()

        run(main())

    def test_snapshot_unsupported_engine(self):
        async def main():
            server = make_server(shards=1, engine="btree")
            client = await ClusterClient.open_loopback(server)
            await client.put(b"k", b"v")
            with pytest.raises(RemoteError):
                await client.snapshot()
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# TCP path
# ----------------------------------------------------------------------
class TestTcp:
    def test_tcp_smoke(self):
        async def main():
            server = make_server(shards=2)
            await server.serve_tcp(port=0)
            host, port = server.tcp_address
            client = await ClusterClient.open_tcp(host, port)
            for i in range(40):
                assert await client.put(K(i), V(i))
            for i in range(40):
                assert await client.get(K(i)) == V(i)
            pairs = await client.scan(limit=10)
            assert len(pairs) == 10
            assert server.protocol_errors == 0
            await client.aclose()
            await server.aclose()

        run(main())


# ----------------------------------------------------------------------
# Blocking facade: workload drivers run unchanged against a cluster
# ----------------------------------------------------------------------
class TestBlockingClient:
    def test_store_shaped_surface(self):
        db = BlockingClusterClient(make_server(shards=2))
        try:
            db.put(b"user000000000001", b"one")
            db.put(b"user000000000300", b"far")
            assert db.get(b"user000000000001") == b"one"
            db.delete(b"user000000000001")
            assert db.get(b"user000000000001") is None
            db.write_batch([(KIND_PUT, K(i), V(i)) for i in range(10)])
            assert len(db.scan(limit=5)) == 5
            with db.seek(K(0)) as it:
                seen = 0
                while it.valid and seen < 8:
                    assert it.value() is not None
                    it.next()
                    seen += 1
            assert db.stats().puts >= 11
            assert db.get_property("repro.health").split()[0] == "ok"
            db.wait_idle()
        finally:
            db.close()

    def test_ycsb_runs_against_cluster(self):
        from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbRunner

        db = BlockingClusterClient(make_server(shards=2, num_keys=300))
        try:
            runner = YcsbRunner(
                db, db.storage, record_count=300, value_size=64, seed=1
            )
            load = runner.load()
            assert load.ops == 300
            result = runner.run(YCSB_WORKLOADS["A"], 200)
            assert result.ops == 200
            assert result.elapsed_seconds > 0
            scans = runner.run(YCSB_WORKLOADS["E"], 60)
            assert scans.ops == 60
        finally:
            db.close()

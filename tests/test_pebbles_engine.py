"""PebblesDB engine: FLSM behaviour, guard lifecycle, optimizations."""

import random

import pytest

import repro
from repro.core import PebblesDBStore
from tests.conftest import make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=2 * 1024 * 1024)


def fill(db, n, value_size=64, seed=0, prefix=b"key"):
    rng = random.Random(seed)
    model = {}
    for i in range(n):
        k = prefix + b"%09d" % rng.randrange(10**8)
        v = b"v%04d" % i + b"x" * value_size
        db.put(k, v)
        model[k] = v
    return model


class TestBasicOps:
    def test_put_get_delete_roundtrip(self, env):
        db = make_store("pebblesdb", env)
        model = fill(db, 2000, seed=1)
        for k in random.Random(2).sample(list(model), 150):
            assert db.get(k) == model[k]
        doomed = random.Random(3).sample(list(model), 100)
        for k in doomed:
            db.delete(k)
        for k in doomed[:30]:
            assert db.get(k) is None
        db.check_invariants()

    def test_scan_matches_model(self, env):
        db = make_store("pebblesdb", env)
        model = fill(db, 1500, seed=4)
        got = dict(db.scan())
        assert got == model

    def test_updates_return_newest_across_guard_files(self, env):
        db = make_store("pebblesdb", env)
        model = fill(db, 1200, seed=5)
        # Update a subset several times so versions spread across levels.
        victims = random.Random(6).sample(list(model), 120)
        for round_no in range(3):
            for k in victims:
                v = b"round%d" % round_no + k[-4:]
                db.put(k, v)
                model[k] = v
        db.wait_idle()
        for k in victims:
            assert db.get(k) == model[k]
        db.compact_all()
        for k in victims:
            assert db.get(k) == model[k]


class TestGuardLifecycle:
    def test_guards_committed_during_compaction(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 3000, seed=7)
        db.wait_idle()
        counts = db.guard_counts()
        assert sum(counts) > 0, "no guards ever committed"
        db.check_invariants()

    def test_guard_skip_list_property_maintained(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 3000, seed=8)
        db.compact_all()
        db.check_invariants()  # includes the subset property per level

    def test_deeper_levels_have_at_least_as_many_guards(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 4000, seed=9)
        db.compact_all()
        counts = db.guard_counts()
        populated = [c for c in counts[1:] if c > 0]
        if len(populated) >= 2:
            assert populated == sorted(populated)

    def test_guard_deletion_rehomes_files(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 2500, seed=10)
        db.compact_all()
        model = dict(db.scan())
        keys_with_guards = [
            (lvl, key)
            for lvl in range(1, db.options.num_levels)
            for key in db._guarded[lvl].guard_keys
        ]
        assert keys_with_guards, "need at least one guard for this test"
        # Delete the shallowest guard everywhere.
        _, victim = keys_with_guards[0]
        db.request_guard_deletion(victim)
        db.put(b"trigger", b"x")  # deletion processed at next cycle
        db.compact_all()
        db.check_invariants()
        for lvl in range(1, db.options.num_levels):
            assert not db._guarded[lvl].has_guard(victim)
        model[b"trigger"] = b"x"
        assert dict(db.scan()) == model

    def test_empty_guards_harmless(self, env):
        db = make_store("pebblesdb", env)
        # Insert, delete everything, insert a different range.
        for i in range(1500):
            db.put(b"old%07d" % i, b"v" * 64)
        for i in range(1500):
            db.delete(b"old%07d" % i)
        db.compact_all()
        model = fill(db, 800, seed=11, prefix=b"new")
        for k in random.Random(12).sample(list(model), 80):
            assert db.get(k) == model[k]
        db.check_invariants()


class TestFlsmCompaction:
    def test_lower_write_amp_than_lsm(self):
        amps = {}
        for engine in ("pebblesdb", "hyperleveldb"):
            env = repro.Environment(cache_bytes=2 * 1024 * 1024)
            db = make_store(engine, env)
            fill(db, 4000, seed=13)
            db.wait_idle()
            amps[engine] = db.stats().write_amplification
        assert amps["pebblesdb"] < amps["hyperleveldb"]

    def test_guard_files_capped_in_steady_state(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 3000, seed=14)
        db.compact_all()
        cap = max(2, db.options.max_sstables_per_guard)
        for lvl in range(1, db.options.num_levels):
            for guard in db._guarded[lvl].guards():
                assert guard.num_files <= cap + 1, (
                    f"guard at level {lvl} has {guard.num_files} sstables"
                )

    def test_max_sstables_one_degenerates_to_lsm(self, env):
        db = make_store("pebblesdb", env, max_sstables_per_guard=1)
        model = fill(db, 1500, seed=15)
        db.compact_all()
        db.check_invariants()
        for lvl in range(1, db.options.num_levels):
            for guard in db._guarded[lvl].guards():
                assert guard.num_files <= 2
        for k in random.Random(16).sample(list(model), 80):
            assert db.get(k) == model[k]

    def test_sequential_fill_costs_more_than_lsm(self):
        """Paper section 4.5: FLSM always partitions, LSM just moves."""
        amps = {}
        for engine in ("pebblesdb", "hyperleveldb"):
            env = repro.Environment(cache_bytes=2 * 1024 * 1024)
            db = make_store(engine, env)
            for i in range(2500):
                db.put(b"seq%08d" % i, b"v" * 64)
            db.wait_idle()
            amps[engine] = db.stats().write_amplification
        assert amps["pebblesdb"] > amps["hyperleveldb"]

    def test_fewer_larger_sstables_than_lsm(self):
        """Table 5.1: with paper-density guards PebblesDB keeps fewer,
        larger sstables because fragments are not split at a target file
        size."""
        counts = {}
        for engine in ("pebblesdb", "hyperleveldb"):
            env = repro.Environment(cache_bytes=2 * 1024 * 1024)
            db = make_store(engine, env, top_level_bits=12, bit_decrement=2)
            fill(db, 4000, seed=17)
            db.wait_idle()
            counts[engine] = db.stats().sstable_count
        assert counts["pebblesdb"] < counts["hyperleveldb"]


class TestOptimizations:
    def test_bloom_filters_reduce_read_io(self):
        """Paper section 4.1: filters skip guard sstables that cannot hold
        the key.  The effect needs guards with several overlapping-range
        sstables (a write-heavy, uncompacted store), so compaction
        triggers are relaxed here; a large table cache isolates the
        data-block savings from filter-(re)load IO."""
        reads = {}
        for enabled in (True, False):
            env = repro.Environment(cache_bytes=128 * 1024)
            db = make_store(
                "pebblesdb",
                env,
                enable_sstable_bloom=enabled,
                table_cache_size=4096,
                max_sstables_per_guard=12,
                level1_max_bytes=1 << 26,
                enable_seek_based_compaction=False,
                enable_aggressive_seek_compaction=False,
            )
            model = fill(db, 2500, seed=18, value_size=128)
            db.wait_idle()
            keys = random.Random(19).sample(list(model), 300)
            before = db.stats().device_bytes_read
            for k in keys:
                db.get(k)
            reads[enabled] = db.stats().device_bytes_read - before
        assert reads[True] < 0.6 * reads[False]

    def test_seek_based_compaction_reduces_guard_files(self, env):
        db = make_store(
            "pebblesdb",
            env,
            enable_seek_based_compaction=True,
            seek_compaction_threshold=5,
        )
        fill(db, 2000, seed=20)
        db.wait_idle()
        # A burst of consecutive seeks should trigger compaction work.
        before = db.stats().compactions
        for i in range(50):
            it = db.seek(b"key%04d" % i)
            it.close()
        db.wait_idle()
        assert db.stats().compactions >= before

    def test_parallel_seek_costs_less_than_serial(self):
        times = {}
        for parallel in (True, False):
            env = repro.Environment(cache_bytes=128 * 1024)
            db = make_store(
                "pebblesdb",
                env,
                enable_parallel_seeks=parallel,
                enable_seek_based_compaction=False,
                enable_aggressive_seek_compaction=False,
            )
            fill(db, 2500, seed=21, value_size=256)
            db.wait_idle()
            t0 = env.now
            rng = random.Random(22)
            for _ in range(200):
                it = db.seek(b"key%09d" % rng.randrange(10**8))
                it.close()
            times[parallel] = env.now - t0
        assert times[True] <= times[False]

    def test_consecutive_seek_counter_resets_on_write(self, env):
        db = make_store("pebblesdb", env)
        for i in range(4):
            it = db.seek(b"key%d" % i)
            it.close()
        assert db._consecutive_seeks == 4
        db.put(b"reset", b"v")
        assert db._consecutive_seeks == 0


class TestLayout:
    def test_layout_dump_mentions_guards(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 2500, seed=23)
        db.compact_all()
        text = db.layout()
        assert "Level 0" in text
        assert "Guard" in text

    def test_stats_surface_extra_fields(self, env):
        db = make_store("pebblesdb", env)
        fill(db, 800, seed=24)
        s = db.stats()
        assert s.preset == "pebblesdb"
        assert s.sstable_count == len(db.sstable_file_numbers())

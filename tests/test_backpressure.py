"""Backpressure stall contract: graduated soft limits, rate-limited
compaction, admission control.

The load-bearing property is *differential*: ``cliff`` and ``graduated``
backpressure inject their per-write delay at exactly the same decision
point in ``_make_room``, differing only in the amount, so two same-seed
runs must produce byte-identical MANIFESTs and storage digests — the
modes may only disagree about timing (stall totals, latency windows),
never about state.  On top of that sit the property-style invariants
(delay monotone in debt; no soft-limit stall below the soft limit; the
rate limiter can delay compactions but never deadlock a due L0 drain),
exactly-once stall-cause attribution, seeded determinism across dispatch
policies, chaos coverage, and the OVERLOADED admission-control loop.
"""

from __future__ import annotations

import asyncio
import hashlib
import random

import pytest

import repro
from repro.errors import BackgroundError
from repro.net.client import ClusterClient
from repro.net.protocol import Response, Status, decode_payload
from repro.net.server import KVServer, ServerConfig
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.ratelimit import TokenBucket
from tests.conftest import make_store

#: Engines whose compaction policies let Level 0 climb past the soft
#: limit under this workload, so the graduated ramp charges strictly
#: more than the cliff floor.  (leveldb's eager full-overlap L0 drain
#: pins the file count at the trigger: byte-identity still holds there,
#: covered by its own test, but debt never exceeds zero.)
DIFFERENTIAL_ENGINES = ["pebblesdb", "hyperleveldb", "rocksdb"]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _manifest_bytes(env: repro.Environment) -> bytes:
    acct = env.storage.foreground_account("test")
    names = sorted(
        n for n in env.storage.list_files("db/") if n.startswith("db/MANIFEST-")
    )
    assert names, "no MANIFEST file found"
    return b"".join(
        env.storage.read(name, 0, env.storage.size(name), acct) for name in names
    )


def _digest(env: repro.Environment) -> str:
    digest = hashlib.sha256()
    for name in env.storage.list_files(""):
        data = env.storage._files[name].data  # test support: raw view
        digest.update(name.encode())
        digest.update(bytes(data))
    return digest.hexdigest()


def _stall_causes(db) -> dict:
    causes = {}
    for metric in db.registry:
        if metric.name == "stall.cause_seconds":
            causes[dict(metric.labels)["cause"]] = metric.value
    return causes


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Differential contract: same data, only timing differs
# ----------------------------------------------------------------------
class TestDifferentialByteIdentity:
    """Cliff vs graduated on the same seed: identical bytes, different
    stalls.  The workload parks Level 0 deep inside the slowdown band
    (slowdown=3, stop=10, one worker) so the graduated ramp is exercised
    across its whole range, not just at the soft limit."""

    def _run_mode(self, engine: str, mode: str):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(
            engine,
            env,
            background_workers=1,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=3,
            level0_stop_trigger=10,
            backpressure=mode,
            # Light enough that L0 climbs past the soft limit (debt > 0
            # for the graduated ramp), heavy enough that neither mode
            # reaches the stop trigger — the stop loop re-plans
            # compactions while waiting, which would legitimately fork
            # the schedule.
            slowdown_delay=3e-4,
            slowdown_delay_max=4e-3,
        )
        rng = random.Random(99)
        for step in range(2500):
            key = b"key%05d" % rng.randrange(400)
            db.put(key, (b"v%06d" % step) * 40)
        db.wait_idle()
        db.check_invariants()
        state = dict(db.scan())
        stats = db.stats()
        causes = _stall_causes(db)
        db.close()
        return env, state, stats, causes

    @pytest.mark.parametrize("engine", DIFFERENTIAL_ENGINES)
    def test_same_manifest_and_digest_different_stalls(self, engine):
        env_c, state_c, stats_c, causes_c = self._run_mode(engine, "cliff")
        env_g, state_g, stats_g, causes_g = self._run_mode(engine, "graduated")
        # State is identical down to the bytes.
        assert state_c == state_g
        assert _manifest_bytes(env_c) == _manifest_bytes(env_g)
        assert _digest(env_c) == _digest(env_g)
        # Timing is not: the graduated ramp charged materially more
        # delay than the fixed cliff floor, under its own cause label.
        assert causes_c.get("l0_slowdown", 0.0) > 0.0
        assert "l0_graduated" not in causes_c
        assert causes_g.get("l0_graduated", 0.0) > 0.0
        assert "l0_slowdown" not in causes_g
        assert causes_g["l0_graduated"] > causes_c["l0_slowdown"]
        assert stats_g.stall_seconds != stats_c.stall_seconds

    def test_leveldb_byte_identity_with_pinned_l0(self):
        """leveldb's full-overlap L0 drain holds the file count at the
        soft limit, so graduated debt stays zero: both modes charge the
        shared floor — and the bytes still match."""
        env_c, state_c, stats_c, causes_c = self._run_mode("leveldb", "cliff")
        env_g, state_g, stats_g, causes_g = self._run_mode("leveldb", "graduated")
        assert state_c == state_g
        assert _digest(env_c) == _digest(env_g)
        assert causes_g["l0_graduated"] == causes_c["l0_slowdown"]
        assert stats_g.stall_seconds == stats_c.stall_seconds

    def test_graduated_rerun_is_byte_identical(self):
        env_a, _, stats_a, _ = self._run_mode("pebblesdb", "graduated")
        env_b, _, stats_b, _ = self._run_mode("pebblesdb", "graduated")
        assert _digest(env_a) == _digest(env_b)
        assert stats_a.stall_seconds == stats_b.stall_seconds


# ----------------------------------------------------------------------
# Soft-limit delay curve
# ----------------------------------------------------------------------
class TestSoftLimitCurve:
    def _db(self, env, mode):
        return make_store(
            "pebblesdb",
            env,
            level0_compaction_trigger=4,
            level0_slowdown_trigger=4,
            level0_stop_trigger=10,
            backpressure=mode,
            slowdown_delay=1e-4,
            slowdown_delay_max=1e-3,
            max_immutable_memtables=2,
        )

    def test_cliff_delay_is_flat(self, env):
        db = self._db(env, "cliff")
        delays = [db._soft_limit_delay(l0) for l0 in range(4, 10)]
        assert delays == [1e-4] * 6

    def test_graduated_delay_monotone_in_l0_debt(self, env):
        db = self._db(env, "graduated")
        delays = [db._soft_limit_delay(l0) for l0 in range(4, 10)]
        assert delays == sorted(delays)
        # Anchors: the configured floor at the soft limit, the cap one
        # file short of the stop trigger.
        assert delays[0] == pytest.approx(1e-4)
        assert delays[-1] == pytest.approx(1e-3)

    def test_graduated_delay_monotone_in_imm_debt(self, env):
        db = self._db(env, "graduated")
        floor = db._soft_limit_delay(4)
        db._imm.append((db._mem, 0))
        half = db._soft_limit_delay(4)
        db._imm.append((db._mem, 0))
        full = db._soft_limit_delay(4)
        db._imm.clear()
        assert floor < half < full
        assert full == pytest.approx(1e-3)  # imm debt saturated the ramp

    def test_no_soft_limit_stall_below_the_soft_limit(self, env):
        """With the slowdown trigger parked far above reachable L0 depth,
        no write may ever be charged a soft-limit delay."""
        db = make_store(
            "pebblesdb",
            env,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=50,
            level0_stop_trigger=60,
            backpressure="graduated",
        )
        rng = random.Random(3)
        for step in range(1200):
            db.put(b"key%05d" % rng.randrange(200), (b"v%05d" % step) * 20)
        db.wait_idle()
        causes = _stall_causes(db)
        assert "l0_graduated" not in causes
        assert "l0_slowdown" not in causes
        assert "l0_stop" not in causes


# ----------------------------------------------------------------------
# Exactly-once stall attribution (regression: the watermark)
# ----------------------------------------------------------------------
class TestStallAttribution:
    def test_overlapping_intervals_attributed_exactly_once(self, env):
        """Chained/nested stall sites within one write used to be able to
        charge the same sim-clock interval twice.  The attribution
        watermark makes double-charging impossible by construction."""
        db = make_store("pebblesdb", env)
        db._attribute_stall("a", 0.0, 1.0)
        db._attribute_stall("b", 0.5, 1.5)  # overlaps [0.5, 1.0)
        db._attribute_stall("c", 0.2, 1.0)  # fully shadowed: no charge
        causes = _stall_causes(db)
        assert causes["a"] == pytest.approx(1.0)
        assert causes["b"] == pytest.approx(0.5)
        assert "c" not in causes
        assert db.stats().stall_seconds == pytest.approx(1.5)
        assert sum(causes.values()) == db.stats().stall_seconds

    @pytest.mark.parametrize("mode", ["cliff", "graduated"])
    def test_cause_seconds_sum_to_stall_seconds(self, mode):
        """A workload that fires imm backpressure, the soft limit, and
        the hard stop in the same run: every stalled second lands under
        exactly one cause, so the per-cause counters sum to the total."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(
            "pebblesdb",
            env,
            background_workers=1,
            max_immutable_memtables=1,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=2,
            level0_stop_trigger=3,
            backpressure=mode,
            # Near-zero soft-limit brake: L0 regularly punches through
            # to the stop trigger, so all three cause families fire.
            slowdown_delay=1e-5,
        )
        rng = random.Random(7)
        for step in range(2500):
            db.put(b"key%05d" % rng.randrange(300), (b"v%06d" % step) * 30)
        db.wait_idle()
        db.check_invariants()
        causes = _stall_causes(db)
        soft = "l0_slowdown" if mode == "cliff" else "l0_graduated"
        assert causes.get("imm_backpressure", 0.0) > 0.0
        assert causes.get(soft, 0.0) > 0.0
        assert (
            causes.get("l0_stop", 0.0) + causes.get("l0_stop_conflict", 0.0)
        ) > 0.0
        # Same floats added in the same order on both sides: exact.
        assert sum(causes.values()) == db.stats().stall_seconds


# ----------------------------------------------------------------------
# Token bucket and the compaction rate limiter
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_credit_admits_cold_start_immediately(self):
        bucket = TokenBucket(1000.0)  # burst defaults to one second: 1000
        assert bucket.reserve(1000.0, now=5.0) == 5.0
        # A job starts once *prior* debt is paid; its own cost lands
        # after it.  The burst absorbed the first job, so the second
        # still starts now — and the third pays the second's cost.
        assert bucket.reserve(500.0, now=5.0) == 5.0
        assert bucket.reserve(100.0, now=5.0) == pytest.approx(5.5)
        assert bucket.delayed == 1
        assert bucket.delay_seconds == pytest.approx(0.5)

    def test_start_times_monotone_in_reservation_order(self):
        bucket = TokenBucket(100.0, burst=0.0)
        starts = [bucket.reserve(50.0, now=0.0) for _ in range(8)]
        assert starts == sorted(starts)
        assert starts[-1] == pytest.approx(3.5)

    def test_idle_credit_caps_at_burst(self):
        bucket = TokenBucket(100.0, burst=200.0)
        bucket.reserve(100.0, now=0.0)
        # A long idle gap refills at most ``burst`` units of credit:
        # 400 units at t=100 start now but leave only 200 units of
        # headroom, so the next 400 must wait 2 full seconds.
        assert bucket.reserve(400.0, now=100.0) == 100.0
        assert bucket.reserve(400.0, now=100.0) == pytest.approx(102.0)

    def test_adapt_bounds(self):
        bucket = TokenBucket(100.0)
        for _ in range(10):
            bucket.adapt(True)
        assert bucket.widen == TokenBucket.MAX_WIDEN
        assert bucket.effective_rate == 100.0 * TokenBucket.MAX_WIDEN
        for _ in range(10):
            bucket.adapt(False)
        assert bucket.widen == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
        with pytest.raises(ValueError):
            TokenBucket(100.0, burst=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(100.0).reserve(-1.0, now=0.0)


class TestCompactionRateLimiter:
    def _workload(self, db, steps=1500, keys=250, seed=11):
        model = {}
        rng = random.Random(seed)
        for step in range(steps):
            key = b"key%05d" % rng.randrange(keys)
            value = (b"v%06d" % step) * 24
            db.put(key, value)
            model[key] = value
        return model

    def test_tiny_rate_never_deadlocks_a_due_l0_drain(self, env):
        """An absurdly low rate puts the bucket kiloseconds into debt,
        but the due-L0 bypass means the drain that relieves a stop stall
        always runs — the run completes with the right data."""
        db = make_store(
            "pebblesdb",
            env,
            background_workers=2,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=4,
            level0_stop_trigger=8,
            compaction_rate_bytes_per_sec=10_000,
        )
        model = self._workload(db)
        db.wait_idle()
        db.check_invariants()
        assert dict(db.scan()) == model
        limited = db.registry.counter("compaction.rate_limited_jobs")
        assert limited.value > 0  # the limiter actually engaged

    def test_rate_limiting_preserves_state_bytes(self):
        """The limiter shifts *when* compactions run, never what they
        produce: user-visible state matches the unlimited run."""
        results = {}
        for rate in (None, 50_000):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store(
                "pebblesdb", env, compaction_rate_bytes_per_sec=rate
            )
            model = self._workload(db, steps=900)
            db.wait_idle()
            db.check_invariants()
            results[rate] = (dict(db.scan()), model)
        for state, model in results.values():
            assert state == model

    def test_auto_mode_widens_under_stall_pressure(self, env):
        db = make_store(
            "pebblesdb",
            env,
            background_workers=1,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=3,
            level0_stop_trigger=6,
            compaction_rate_bytes_per_sec=20_000,
            compaction_rate_auto=True,
        )
        self._workload(db)
        db.wait_idle()
        db.check_invariants()
        limiter = db._compaction_limiter
        assert limiter is not None
        assert 1.0 <= limiter.widen <= TokenBucket.MAX_WIDEN
        # The stalls it saw widened the rate at some point; the
        # multiplier then decays back toward 1 once pressure clears.
        assert limiter.widen_peak > 1.0
        assert limiter.widen_peak <= TokenBucket.MAX_WIDEN

    def test_chaos_persistent_fault_under_rate_limit_degrades_then_resumes(
        self, env
    ):
        """Rate limiting composes with the fault state machine: a sticky
        compaction-path fault still degrades the store, and resume()
        restores service with the limiter still attached."""
        db = make_store(
            "pebblesdb",
            env,
            background_workers=2,
            compaction_rate_bytes_per_sec=100_000,
        )
        env.storage.set_fault_injector(
            FaultInjector(
                FaultPlan.fail_nth(
                    0, op="append", name_pattern="db/*.sst", kind="persistent"
                )
            )
        )
        accepted = {}
        with pytest.raises(BackgroundError):
            for step in range(6000):
                key, value = b"pressure%05d" % step, b"x%05d" % step
                db.put(key, value)
                accepted[key] = value
        assert db.is_degraded
        for key, value in list(accepted.items())[:50]:
            assert db.get(key) == value
        env.storage.set_fault_injector(None)
        assert db.resume() is True
        assert not db.is_degraded
        db.put(b"post-resume", b"ok")
        db.wait_idle()
        assert db.get(b"post-resume") == b"ok"
        db.check_invariants()


# ----------------------------------------------------------------------
# Seeded determinism across dispatch-policy permutations
# ----------------------------------------------------------------------
class TestGraduatedScheduleDeterminism:
    def _run(self, policy_seed):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(
            "pebblesdb",
            env,
            background_workers=2,
            level0_compaction_trigger=2,
            level0_slowdown_trigger=3,
            level0_stop_trigger=6,
            backpressure="graduated",
            slowdown_delay_max=2e-3,
        )
        if policy_seed is not None:
            rng = random.Random(policy_seed)
            db.set_dispatch_policy(
                lambda candidates: rng.randrange(len(candidates))
            )
        rng_keys = random.Random(5)
        for step in range(900):
            db.put(b"key%05d" % rng_keys.randrange(150), (b"v%05d" % step) * 24)
        db.wait_idle()
        db.check_invariants()
        state = dict(db.scan())
        manifest = _manifest_bytes(env)
        db.close()
        return state, manifest

    def test_state_invariant_under_dispatch_permutations(self):
        baseline, _ = self._run(None)
        for seed in range(6):
            state, _ = self._run(seed)
            assert state == baseline, f"diverged under policy seed {seed}"

    def test_fixed_policy_replays_manifest_bytes(self):
        _, first = self._run(4)
        _, second = self._run(4)
        assert first == second


# ----------------------------------------------------------------------
# Admission control: the OVERLOADED loop
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_overloaded_response_roundtrips_retry_after(self):
        resp = Response(
            request_id=9,
            status=Status.OVERLOADED,
            message="shard 0 write queue full (4/2)",
            retry_after=0.0125,
        )
        decoded = decode_payload(resp.encode())
        assert decoded.status == Status.OVERLOADED
        assert decoded.message == resp.message
        assert decoded.retry_after == pytest.approx(0.0125)
        # Non-overload errors carry no hint and keep their old encoding.
        plain = decode_payload(
            Response(
                request_id=3, status=Status.SERVER_ERROR, message="boom"
            ).encode()
        )
        assert plain.retry_after == 0.0

    def test_client_retries_overload_to_exactly_once_completion(self):
        async def main():
            server = KVServer(
                ServerConfig(
                    shards=2,
                    uniform_keys=400,
                    seed=7,
                    cache_bytes=1 << 20,
                    max_write_debt=2,
                    overload_retry_after=0.001,
                )
            )
            clients = [
                await ClusterClient.open_loopback(server) for _ in range(4)
            ]
            acked = []

            async def hammer(index, client):
                for i in range(60):
                    key = f"user{index:02d}-{i:05d}".encode()
                    if await client.put(key, b"v%d.%d" % (index, i)):
                        acked.append(key)

            await asyncio.gather(
                *(hammer(i, c) for i, c in enumerate(clients))
            )
            rejects = sum(
                shard.stats.overload_rejects for shard in server.shards
            )
            backoffs = sum(c.stats.overload_backoffs for c in clients)
            assert rejects > 0, "workload never tripped admission control"
            # Every shed request was retried with the server's hint —
            # shedding is invisible to the caller except as latency.
            assert backoffs == rejects
            assert len(acked) == 4 * 60
            reader = clients[0]
            for key in acked:
                assert await reader.get(key) is not None
            for client in clients:
                await client.aclose()
            await server.aclose()

        run(main())

    def test_unbounded_debt_never_rejects(self):
        async def main():
            server = KVServer(
                ServerConfig(
                    shards=2, uniform_keys=400, seed=7, cache_bytes=1 << 20
                )
            )
            client = await ClusterClient.open_loopback(server)
            await asyncio.gather(
                *(client.put(b"k%04d" % i, b"v") for i in range(120))
            )
            assert all(
                shard.stats.overload_rejects == 0 for shard in server.shards
            )
            assert client.stats.overload_backoffs == 0
            await client.aclose()
            await server.aclose()

        run(main())

"""Guard selection and the guarded-level structure (paper sections 3.1-3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.guards import Guard, GuardedLevel, GuardPicker, trailing_set_bits
from repro.util.keys import KIND_PUT, InternalKey
from repro.version.files import FileMetadata


def meta(number, lo, hi):
    return FileMetadata(
        number=number,
        smallest=InternalKey(lo, 1, KIND_PUT),
        largest=InternalKey(hi, 1, KIND_PUT),
        file_size=10,
        num_entries=1,
    )


class TestTrailingBits:
    def test_values(self):
        assert trailing_set_bits(0b0) == 0
        assert trailing_set_bits(0b1) == 1
        assert trailing_set_bits(0b0111) == 3
        assert trailing_set_bits(0b1011) == 2
        assert trailing_set_bits(0xFFFFFFFF) == 32


class TestGuardPicker:
    def test_skip_list_property(self):
        """A guard at level i is a guard at every deeper level."""
        picker = GuardPicker(top_level_bits=8, bit_decrement=2, num_levels=7)
        for i in range(5000):
            level = picker.guard_level(b"key%06d" % i)
            if level is not None:
                # required bits decrease with depth, so qualifying for
                # `level` implies qualifying for level+1, +2, ...
                bits = picker.required_bits(level)
                for deeper in range(level + 1, 7):
                    assert picker.required_bits(deeper) <= bits

    def test_deeper_levels_have_more_guards(self):
        picker = GuardPicker(top_level_bits=10, bit_decrement=2, num_levels=7)
        counts = {lvl: 0 for lvl in range(1, 7)}
        n = 30000
        for i in range(n):
            level = picker.guard_level(b"user%08d" % i)
            if level is not None:
                for lvl in range(level, 7):
                    counts[lvl] += 1
        assert counts[1] < counts[3] < counts[5]
        # Expected density at level i is 2^-(required_bits).
        expected_l5 = n / 2 ** picker.required_bits(5)
        assert expected_l5 * 0.5 < counts[5] < expected_l5 * 2.0

    def test_required_bits_floor(self):
        picker = GuardPicker(top_level_bits=3, bit_decrement=2, num_levels=7)
        assert picker.required_bits(6) >= 1

    def test_deterministic(self):
        picker = GuardPicker(13, 2, 7)
        assert picker.guard_level(b"abc") == picker.guard_level(b"abc")

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            GuardPicker(0, 2, 7)


class TestGuardedLevel:
    def test_sentinel_covers_below_first_guard(self):
        lvl = GuardedLevel(1)
        lvl.add_guard(b"m")
        assert lvl.find_guard(b"a").is_sentinel
        assert lvl.find_guard(b"m").key == b"m"
        assert lvl.find_guard(b"z").key == b"m"

    def test_find_guard_between_keys(self):
        lvl = GuardedLevel(1)
        for key in (b"d", b"m", b"t"):
            lvl.add_guard(key)
        assert lvl.find_guard(b"f").key == b"d"
        assert lvl.find_guard(b"m").key == b"m"
        assert lvl.find_guard(b"s").key == b"m"
        assert lvl.find_guard(b"zz").key == b"t"

    def test_add_guard_idempotent(self):
        lvl = GuardedLevel(1)
        assert lvl.add_guard(b"g")
        assert not lvl.add_guard(b"g")
        assert len(lvl) == 1

    def test_guard_range(self):
        lvl = GuardedLevel(1)
        lvl.add_guard(b"d")
        lvl.add_guard(b"m")
        assert lvl.guard_range(lvl.sentinel) == (None, b"d")
        assert lvl.guard_range(lvl.find_guard(b"d")) == (b"d", b"m")
        assert lvl.guard_range(lvl.find_guard(b"m")) == (b"m", None)

    def test_add_file_attaches_to_covering_guard(self):
        lvl = GuardedLevel(1)
        lvl.add_guard(b"m")
        lvl.add_file(meta(1, b"a", b"c"))
        lvl.add_file(meta(2, b"n", b"p"))
        assert [f.number for f in lvl.sentinel.files] == [1]
        assert [f.number for f in lvl.find_guard(b"m").files] == [2]
        lvl.check_invariants()

    def test_guards_from_starts_at_covering(self):
        lvl = GuardedLevel(1)
        for key in (b"d", b"m"):
            lvl.add_guard(key)
        got = [g.key for g in lvl.guards_from(b"e")]
        assert got == [b"d", b"m"]
        got = [g.key for g in lvl.guards_from(b"a")]
        assert got == [None, b"d", b"m"]

    def test_remove_guard_returns_files(self):
        lvl = GuardedLevel(1)
        lvl.add_guard(b"m")
        lvl.add_file(meta(1, b"n", b"o"))
        guard = lvl.remove_guard(b"m")
        assert [f.number for f in guard.files] == [1]
        assert len(lvl) == 0
        # Re-homing into the now-covering sentinel keeps invariants.
        for f in guard.files:
            lvl.add_file(f)
        lvl.check_invariants()

    def test_invariant_violation_detected(self):
        lvl = GuardedLevel(1)
        lvl.add_guard(b"m")
        # Manually attach a file to the wrong guard.
        lvl.find_guard(b"m").files.append(meta(1, b"a", b"b"))
        with pytest.raises(AssertionError):
            lvl.check_invariants()

    @given(st.sets(st.binary(min_size=1, max_size=6), min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_find_guard_matches_reference(self, keys):
        lvl = GuardedLevel(1)
        for key in keys:
            lvl.add_guard(key)
        ordered = sorted(keys)
        for probe in list(keys) + [b"", b"\xff" * 7]:
            guard = lvl.find_guard(probe)
            expected = None
            for k in ordered:
                if k <= probe:
                    expected = k
            assert guard.key == expected

    def test_all_files_and_sizes(self):
        lvl = GuardedLevel(1)
        lvl.add_guard(b"m")
        lvl.add_file(meta(1, b"a", b"b"))
        lvl.add_file(meta(2, b"x", b"y"))
        assert sorted(f.number for f in lvl.all_files()) == [1, 2]
        assert lvl.size_bytes == 20


class TestGuard:
    def test_properties(self):
        g = Guard(b"k")
        assert not g.is_sentinel
        g.files.append(meta(1, b"k", b"l"))
        g.files.append(meta(2, b"k", b"m"))
        assert g.num_files == 2
        assert g.size_bytes == 20
        assert g.num_entries == 2
        g.remove_file(1)
        assert [f.number for f in g.files] == [2]

"""The I/O attribution ledger (:mod:`repro.obs.ledger`).

The contract under test: every device byte carries a cause, and the
per-cause table sums *exactly* to the device totals — no "misc" slush,
no double counting.  That makes ``write_amplification`` decomposable
(WAL + flush + per-level compaction + vlog + manifest = device writes)
and the decomposition itself same-seed deterministic.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.obs.ledger import _KNOWN_CAUSES, IoLedger, classify_account
from tests.conftest import ALL_ENGINES, make_store


def _exercise(db, n=600):
    for i in range(n):
        db.put(b"key%06d" % i, b"v" * 120)
    for i in range(0, n, 3):
        db.get(b"key%06d" % i)
    for i in range(0, n, 7):
        db.delete(b"key%06d" % i)
    db.wait_idle()


class TestClassify:
    def test_known_causes_pass_through(self):
        for cause in sorted(_KNOWN_CAUSES):
            assert classify_account(f"db/{cause}", "db/") == cause

    def test_per_level_compaction_accounts(self):
        assert classify_account("db/compaction.guard.L0", "db/") == (
            "compaction.guard.L0"
        )
        assert classify_account("s/compaction.level.L3", "s/") == (
            "compaction.level.L3"
        )

    def test_bare_vlog_is_the_append_path(self):
        assert classify_account("db/vlog", "db/") == "vlog.append"
        assert classify_account("db/vlog.gc", "db/") == "vlog.gc"

    def test_unknown_accounts_are_flagged_not_dropped(self):
        assert classify_account("db/mystery", "db/") == "other.mystery"


class TestLedgerExactness:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_every_engine_sums_to_device_totals(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(engine, env)
        _exercise(db)
        ledger = IoLedger.from_storage(env.storage, "db/")
        ledger.verify_against(env.storage)  # raises on any mismatch
        stats = env.storage.stats
        assert ledger.total_write_bytes == stats.bytes_written
        assert ledger.total_read_bytes == stats.bytes_read
        assert ledger.total_syncs == stats.sync_ops
        assert ledger.total_write_bytes > 0
        db.close()

    def test_no_unattributed_cause_in_lsm_engines(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        _exercise(db)
        ledger = IoLedger.from_storage(env.storage, "db/")
        for cause in ledger.write_bytes:
            assert not cause.startswith("other."), (
                f"unclassified write account {cause!r}"
            )
        db.close()

    def test_vlog_run_attributes_appends(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store(
            "pebblesdb",
            env,
            value_separation_bytes=64,
            vlog_segment_bytes=4096,
            vlog_gc_dead_ratio=0.3,
        )
        for round_ in range(5):
            for i in range(80):
                db.put(b"key%05d" % i, bytes([round_ + 65]) * 300)
            db.flush_memtable()
        db.compact_all()
        db.wait_idle()
        ledger = IoLedger.from_storage(env.storage, "db/")
        ledger.verify_against(env.storage)
        # Separated values must be attributed to the append path, not
        # folded into flush/compaction.
        assert ledger.write_bytes.get("vlog.append", 0) > 0
        assert db._vlog.segments_retired > 0  # GC retired dead segments
        db.close()

    def test_gc_relocation_bytes_land_in_the_gc_account(self):
        """Drive ``VlogCompactionContext.rewrite`` directly: relocation
        reads/appends/syncs must be charged to the ``vlog.gc`` account,
        separate from the foreground ``vlog`` append account, and the
        ledger must stay exact."""
        from repro.version.manifest import VersionEdit
        from repro.util.keys import KIND_VPTR, InternalKey
        from repro.vlog.log import ValueLog, VlogCompactionContext

        env = repro.Environment(cache_bytes=1 << 20)
        storage = env.storage
        numbers = iter(range(1, 1000))
        vlog = ValueLog(
            storage,
            "db/",
            segment_bytes=2048,
            gc_dead_ratio=0.5,
            alloc_number=lambda: next(numbers),
        )
        append_acct = storage.background_account("db/vlog")
        pointers = []
        for i in range(12):
            pointers.append(
                vlog.append(b"key%02d" % i, b"v" * 200, i + 1, append_acct)
            )
        vlog.sync(append_acct)
        first_segment = pointers[0].segment
        gc_acct = storage.background_account("db/vlog.gc")
        gcctx = VlogCompactionContext(vlog, gc_acct, cold_segments={first_segment})
        stream = [
            (InternalKey(b"key%02d" % i, i + 1, KIND_VPTR), p.encode())
            for i, p in enumerate(pointers)
        ]
        out = list(gcctx.rewrite(iter(stream)))
        assert gcctx.relocated_records == sum(
            1 for p in pointers if p.segment == first_segment
        )
        assert len(out) == len(stream)
        gcctx.commit(VersionEdit())
        ledger = IoLedger.from_storage(storage, "db/")
        ledger.verify_against(storage)
        assert ledger.write_bytes.get("vlog.gc", 0) > 0
        assert ledger.syncs.get("vlog.gc", 0) >= 1
        # The foreground append account is untouched by GC traffic.
        assert ledger.write_bytes["vlog.append"] == (
            storage.stats.written_by_account["db/vlog"]
        )

    def test_same_seed_ledger_is_byte_identical(self):
        def run():
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env)
            _exercise(db)
            text = IoLedger.from_storage(env.storage, "db/").to_json()
            db.close()
            return text

        assert run() == run()

    def test_merge_sums_and_preserves_totals(self):
        a = IoLedger()
        a.write_bytes["wal"] = 10
        a.syncs["wal"] = 1
        b = IoLedger()
        b.write_bytes["wal"] = 5
        b.write_bytes["flush"] = 7
        b.read_bytes["user"] = 3
        merged = a.merge(b)
        assert merged.write_bytes == {"wal": 15, "flush": 7}
        assert merged.read_bytes == {"user": 3}
        assert merged.total_write_bytes == 22
        # merge() returns a new ledger; inputs stay untouched.
        assert a.write_bytes == {"wal": 10}

    def test_round_trips_through_dict_and_json(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("leveldb", env)
        _exercise(db, 300)
        ledger = IoLedger.from_storage(env.storage, "db/")
        assert IoLedger.from_dict(ledger.to_dict()) == ledger
        assert IoLedger.from_dict(json.loads(ledger.to_json())) == ledger
        db.close()


class TestLedgerProperty:
    def test_repro_ledger_property_parses_and_matches_storage(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        _exercise(db, 400)
        text = db.get_property("repro.ledger")
        assert text is not None
        ledger = IoLedger.from_dict(json.loads(text))
        ledger.verify_against(env.storage)
        assert "repro.ledger" in db.property_names()
        db.close()

    def test_to_text_has_total_row_that_adds_up(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        _exercise(db, 400)
        ledger = IoLedger.from_storage(env.storage, "db/")
        lines = ledger.to_text().splitlines()
        assert lines[-1].startswith("total")
        assert str(ledger.total_write_bytes) in lines[-1]
        db.close()


class TestClusterLedger:
    def test_four_shard_cluster_ledger_sums_to_all_shard_devices(self):
        import asyncio

        from repro.net.client import ClusterClient
        from repro.net.server import KVServer, ServerConfig

        async def run():
            server = KVServer(
                ServerConfig(shards=4, uniform_keys=4000, seed=3)
            )
            client = await ClusterClient.open_loopback(server)
            for i in range(600):
                await client.put(f"user{i:016d}".encode(), b"v" * 100)
            await server.wait_idle()
            text = await client.admin("ledger")
            merged = IoLedger.from_dict(json.loads(text))
            expect_writes = sum(
                shard.env.storage.stats.bytes_written
                for shard in server.shards
            )
            expect_syncs = sum(
                shard.env.storage.stats.sync_ops for shard in server.shards
            )
            assert merged.total_write_bytes == expect_writes
            assert merged.total_syncs == expect_syncs
            await client.aclose()
            await server.aclose()

        asyncio.run(run())

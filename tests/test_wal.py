"""Write-ahead log framing, batch codec, and torn-tail recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.sim.storage import SimulatedStorage
from repro.util.keys import KIND_DELETE, KIND_PUT
from repro.wal import BLOCK_SIZE, LogReader, LogWriter, decode_batch, encode_batch


@pytest.fixture
def storage():
    return SimulatedStorage()


def replay(storage, name):
    return list(LogReader(storage, name).records(storage.foreground_account()))


class TestBatchCodec:
    def test_roundtrip(self):
        ops = [(KIND_PUT, b"k1", b"v1"), (KIND_DELETE, b"k2", b""), (KIND_PUT, b"k3", b"")]
        seq, decoded = decode_batch(encode_batch(42, ops))
        assert seq == 42
        assert decoded == ops

    @given(
        st.integers(min_value=0, max_value=2**56 - 1),
        st.lists(
            st.tuples(
                st.sampled_from([KIND_PUT, KIND_DELETE]),
                st.binary(min_size=1, max_size=20),
                st.binary(max_size=64),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, seq, ops):
        normalized = [
            (kind, key, value if kind == KIND_PUT else b"") for kind, key, value in ops
        ]
        got_seq, got_ops = decode_batch(encode_batch(seq, normalized))
        assert (got_seq, got_ops) == (seq, normalized)

    def test_truncated_rejected(self):
        blob = encode_batch(1, [(KIND_PUT, b"key", b"value")])
        with pytest.raises(CorruptionError):
            decode_batch(blob[:-2])

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            encode_batch(1, [(9, b"k", b"v")])


class TestLogFraming:
    def test_records_roundtrip(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        payloads = [b"first", b"second" * 100, b"x"]
        for p in payloads:
            writer.append(p, acct)
        assert replay(storage, "wal") == payloads

    def test_record_spanning_blocks(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        big = bytes(range(256)) * ((2 * BLOCK_SIZE) // 256)
        writer.append(b"small", acct)
        writer.append(big, acct)
        writer.append(b"after", acct)
        assert replay(storage, "wal") == [b"small", big, b"after"]

    def test_many_small_records_cross_block_padding(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        payloads = [b"p%04d" % i + b"z" * 100 for i in range(400)]
        for p in payloads:
            writer.append(p, acct)
        assert storage.size("wal") > BLOCK_SIZE  # crossed at least one block
        assert replay(storage, "wal") == payloads

    def test_torn_tail_dropped(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"complete", acct, sync=True)
        writer.append(b"torn-away", acct)  # not synced
        storage.crash()
        assert replay(storage, "wal") == [b"complete"]

    def test_corrupt_middle_stops_replay(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"one", acct)
        writer.append(b"two", acct)
        # Flip a byte inside the first record's payload.
        storage.write_at("wal", 8, b"\xff", acct)
        assert replay(storage, "wal") == []

    def test_empty_log(self, storage):
        LogWriter(storage, "wal")
        assert replay(storage, "wal") == []

    @given(st.lists(st.binary(min_size=0, max_size=5000), max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, payloads):
        storage = SimulatedStorage()
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        for p in payloads:
            writer.append(p, acct)
        assert replay(storage, "wal") == payloads


def replay_strict(storage, name):
    return list(
        LogReader(storage, name).records(storage.foreground_account(), strict=True)
    )


class TestStrictMode:
    """strict=True: damage below the synced boundary is acknowledged-data
    loss and must raise; damage past it is an ordinary torn tail."""

    def test_synced_corruption_raises(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"one", acct, sync=True)
        writer.append(b"two", acct, sync=True)
        storage.write_at("wal", 8, b"\xff", acct)  # inside record one
        with pytest.raises(CorruptionError):
            replay_strict(storage, "wal")
        # Lenient mode still just stops (the pre-existing contract).
        assert replay(storage, "wal") == []

    def test_unsynced_tail_corruption_stops_quietly(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"one", acct, sync=True)
        writer.append(b"two", acct)  # past the durable boundary
        size = storage.size("wal")
        storage.write_at("wal", size - 2, b"\xff", acct)
        assert replay_strict(storage, "wal") == [b"one"]

    def test_synced_truncation_raises(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"payload-payload", acct, sync=True)
        # Model media loss: the file claims a synced length it cannot back.
        storage._files["wal"].data = storage._files["wal"].data[:-4]
        with pytest.raises(CorruptionError):
            replay_strict(storage, "wal")

    def test_orphan_fragment_below_boundary_raises(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        big = b"x" * (BLOCK_SIZE + 100)  # FIRST + LAST fragments
        writer.append(big, acct, sync=True)
        # Corrupt the FIRST fragment: the LAST fragment becomes an orphan.
        storage.write_at("wal", 8, b"\xff", acct)
        with pytest.raises(CorruptionError):
            replay_strict(storage, "wal")
        assert replay(storage, "wal") == []

    def test_clean_synced_log_replays_identically(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        payloads = [b"a", b"b" * 500, b"c" * (BLOCK_SIZE * 2)]
        for p in payloads:
            writer.append(p, acct, sync=True)
        assert replay_strict(storage, "wal") == payloads


class TestAppendAtomicity:
    def test_failed_append_does_not_misframe_later_records(self, storage):
        """A failed append must not advance the writer's block offset —
        otherwise the next record lands misaligned and replay breaks."""
        from repro.sim.faults import FaultInjector, FaultPlan

        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"first", acct)
        storage.set_fault_injector(
            FaultInjector(FaultPlan.fail_nth(0, op="append"))
        )
        from repro.errors import TransientIOError

        with pytest.raises(TransientIOError):
            writer.append(b"failed", acct)
        writer.append(b"retried", acct)  # times=1: injector is spent
        assert replay(storage, "wal") == [b"first", b"retried"]

    def test_torn_append_keeps_earlier_records_readable(self, storage):
        from repro.sim.faults import FaultInjector, FaultPlan
        from repro.errors import TransientIOError

        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"first", acct, sync=True)
        storage.set_fault_injector(
            FaultInjector(FaultPlan.fail_nth(0, op="append", torn_fraction=0.5))
        )
        with pytest.raises(TransientIOError):
            writer.append(b"second-record-payload", acct)
        # The torn half-record stops replay; "first" survives.
        assert replay(storage, "wal") == [b"first"]

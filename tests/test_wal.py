"""Write-ahead log framing, batch codec, and torn-tail recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.sim.storage import SimulatedStorage
from repro.util.keys import KIND_DELETE, KIND_PUT
from repro.wal import BLOCK_SIZE, LogReader, LogWriter, decode_batch, encode_batch


@pytest.fixture
def storage():
    return SimulatedStorage()


def replay(storage, name):
    return list(LogReader(storage, name).records(storage.foreground_account()))


class TestBatchCodec:
    def test_roundtrip(self):
        ops = [(KIND_PUT, b"k1", b"v1"), (KIND_DELETE, b"k2", b""), (KIND_PUT, b"k3", b"")]
        seq, decoded = decode_batch(encode_batch(42, ops))
        assert seq == 42
        assert decoded == ops

    @given(
        st.integers(min_value=0, max_value=2**56 - 1),
        st.lists(
            st.tuples(
                st.sampled_from([KIND_PUT, KIND_DELETE]),
                st.binary(min_size=1, max_size=20),
                st.binary(max_size=64),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, seq, ops):
        normalized = [
            (kind, key, value if kind == KIND_PUT else b"") for kind, key, value in ops
        ]
        got_seq, got_ops = decode_batch(encode_batch(seq, normalized))
        assert (got_seq, got_ops) == (seq, normalized)

    def test_truncated_rejected(self):
        blob = encode_batch(1, [(KIND_PUT, b"key", b"value")])
        with pytest.raises(CorruptionError):
            decode_batch(blob[:-2])

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            encode_batch(1, [(9, b"k", b"v")])


class TestLogFraming:
    def test_records_roundtrip(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        payloads = [b"first", b"second" * 100, b"x"]
        for p in payloads:
            writer.append(p, acct)
        assert replay(storage, "wal") == payloads

    def test_record_spanning_blocks(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        big = bytes(range(256)) * ((2 * BLOCK_SIZE) // 256)
        writer.append(b"small", acct)
        writer.append(big, acct)
        writer.append(b"after", acct)
        assert replay(storage, "wal") == [b"small", big, b"after"]

    def test_many_small_records_cross_block_padding(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        payloads = [b"p%04d" % i + b"z" * 100 for i in range(400)]
        for p in payloads:
            writer.append(p, acct)
        assert storage.size("wal") > BLOCK_SIZE  # crossed at least one block
        assert replay(storage, "wal") == payloads

    def test_torn_tail_dropped(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"complete", acct, sync=True)
        writer.append(b"torn-away", acct)  # not synced
        storage.crash()
        assert replay(storage, "wal") == [b"complete"]

    def test_corrupt_middle_stops_replay(self, storage):
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        writer.append(b"one", acct)
        writer.append(b"two", acct)
        # Flip a byte inside the first record's payload.
        storage.write_at("wal", 8, b"\xff", acct)
        assert replay(storage, "wal") == []

    def test_empty_log(self, storage):
        LogWriter(storage, "wal")
        assert replay(storage, "wal") == []

    @given(st.lists(st.binary(min_size=0, max_size=5000), max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, payloads):
        storage = SimulatedStorage()
        acct = storage.foreground_account()
        writer = LogWriter(storage, "wal")
        for p in payloads:
            writer.append(p, acct)
        assert replay(storage, "wal") == payloads

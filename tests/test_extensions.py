"""Chapter 7 extensions: adaptive guard rebalancing, empty-guard cleanup."""

import random

import pytest

import repro
from tests.conftest import make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


def fill(db, n, seed=0, prefix=b"key"):
    rng = random.Random(seed)
    model = {}
    for i in range(n):
        k = prefix + b"%09d" % rng.randrange(10**8)
        v = b"v%05d" % i
        db.put(k, v)
        model[k] = v
    return model


class TestGuardRebalancing:
    def test_skewed_store_gains_guards(self, env):
        # Very sparse guard selection => almost everything lands in one
        # guard: the skew scenario of paper section 7.
        db = make_store("pebblesdb", env, top_level_bits=20, bit_decrement=1)
        model = fill(db, 3000, seed=1)
        db.compact_all()
        before = sum(db.guard_counts())
        added = db.rebalance_guards()
        assert added > 0, "skewed guards should trigger rebalancing"
        db.force_full_compaction()  # commits the synthetic guards
        db.check_invariants()
        after = sum(db.guard_counts())
        assert after > before
        # Data is intact after re-partitioning.
        assert dict(db.scan()) == model

    def test_balanced_store_untouched(self, env):
        db = make_store("pebblesdb", env, top_level_bits=6, bit_decrement=1)
        fill(db, 2000, seed=2)
        db.compact_all()
        assert db.rebalance_guards(max_guard_bytes=1 << 30) == 0

    def test_rebalance_reduces_max_guard_share(self, env):
        db = make_store("pebblesdb", env, top_level_bits=20, bit_decrement=1)
        fill(db, 3000, seed=3)
        db.compact_all()

        def max_guard_bytes():
            worst = 0
            for lvl in range(1, db.options.num_levels):
                for guard in db._guarded[lvl].guards():
                    worst = max(worst, guard.size_bytes)
            return worst

        before = max_guard_bytes()
        db.rebalance_guards()
        db.force_full_compaction()
        db.check_invariants()
        assert max_guard_bytes() <= before


class TestEmptyGuardCollection:
    def test_empty_guards_collected(self, env):
        db = make_store("pebblesdb", env, top_level_bits=5, bit_decrement=1)
        model = fill(db, 2000, seed=4, prefix=b"old")
        db.force_full_compaction()
        for k in model:
            db.delete(k)
        # Drive tombstones to the bottom, where they are garbage
        # collected, leaving the guards of the dead range empty.
        db.force_full_compaction()
        empty_before = sum(db.empty_guard_counts())
        assert empty_before > 0, "deleting a window should leave empty guards"
        collected = db.collect_empty_guards()
        assert collected > 0
        db.put(b"tick", b"t")  # deletions processed at next cycle
        db.compact_all()
        db.check_invariants()
        assert sum(db.empty_guard_counts()) < empty_before

    def test_collection_never_touches_occupied_guards(self, env):
        db = make_store("pebblesdb", env, top_level_bits=5, bit_decrement=1)
        model = fill(db, 2500, seed=5)
        db.compact_all()
        db.collect_empty_guards()
        db.put(b"tick", b"t")
        model[b"tick"] = b"t"
        db.compact_all()
        db.check_invariants()
        assert dict(db.scan()) == model

    def test_nothing_to_collect_on_fresh_store(self, env):
        db = make_store("pebblesdb", env)
        assert db.collect_empty_guards() == 0

"""Smoke-run every example script (a release's demos must not rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_present():
    assert len(EXAMPLES) >= 3, "the repo must ship at least three examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
    assert "Traceback" not in proc.stderr

"""Wire protocol: framing, CRC poisoning, payload round-trips, routing."""

import pytest

from repro.errors import InvalidArgumentError
from repro.net.errors import FrameError
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    Op,
    Request,
    Response,
    Status,
    decode_payload,
    encode_frame,
)
from repro.net.router import ShardRouter
from repro.util.keys import KIND_DELETE, KIND_PUT


class TestFraming:
    def test_roundtrip_single_frame(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"hello world"))
        assert decoder.next_frame() == b"hello world"
        assert decoder.next_frame() is None

    def test_multiple_frames_one_buffer(self):
        decoder = FrameDecoder()
        payloads = [b"a", b"bb" * 100, b"", b"\x00\xff" * 33]
        decoder.feed(b"".join(encode_frame(p) for p in payloads))
        assert [decoder.next_frame() for _ in payloads] == payloads
        assert decoder.next_frame() is None

    def test_byte_at_a_time_reassembly(self):
        decoder = FrameDecoder()
        wire = encode_frame(b"fragmented") + encode_frame(b"stream")
        got = []
        for i in range(len(wire)):
            decoder.feed(wire[i : i + 1])
            frame = decoder.next_frame()
            if frame is not None:
                got.append(frame)
        assert got == [b"fragmented", b"stream"]

    def test_corrupt_payload_poisons_decoder(self):
        wire = bytearray(encode_frame(b"precious payload"))
        wire[10] ^= 0x01  # a payload byte: the CRC must catch it
        decoder = FrameDecoder()
        decoder.feed(bytes(wire))
        with pytest.raises(FrameError):
            decoder.next_frame()
        # The stream cannot be resynced: the decoder refuses further use.
        with pytest.raises(FrameError):
            decoder.feed(encode_frame(b"good"))
        with pytest.raises(FrameError):
            decoder.next_frame()

    def test_oversize_length_rejected(self):
        import struct

        decoder = FrameDecoder()
        decoder.feed(struct.pack("<II", MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(FrameError):
            decoder.next_frame()

    def test_oversize_encode_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(b"\x00" * (MAX_FRAME_BYTES + 1))


REQUESTS = [
    Request(op=Op.HELLO, request_id=1, client_id=42),
    Request(op=Op.GET, request_id=2, shard=3, key=b"alpha"),
    Request(op=Op.GET, request_id=3, shard=0, key=b"beta", snapshot=9),
    Request(op=Op.PUT, request_id=4, shard=1, key=b"k", value=b"v" * 200),
    Request(op=Op.DELETE, request_id=5, shard=2, key=b"gone"),
    Request(
        op=Op.BATCH,
        request_id=6,
        shard=0,
        ops=[(KIND_PUT, b"a", b"1"), (KIND_DELETE, b"b", b"")],
    ),
    Request(op=Op.SCAN, request_id=7, shard=1, lo=b"a"),
    Request(op=Op.SCAN, request_id=8, shard=1, lo=b"a", hi=b"m", limit=10),
    Request(op=Op.SCAN, request_id=9, shard=0, lo=b"", hi=b"z", snapshot=4),
    Request(op=Op.SNAPSHOT, request_id=10, shard=2),
    Request(op=Op.RELEASE, request_id=11, shard=2, snapshot=7),
    Request(op=Op.PROPERTY, request_id=12, shard=0, name="repro.health"),
]


class TestRequestRoundtrip:
    @pytest.mark.parametrize("request_", REQUESTS, ids=lambda r: f"op{r.op}")
    def test_roundtrip(self, request_):
        assert decode_payload(request_.encode()) == request_

    def test_huge_request_id(self):
        req = Request(op=Op.GET, request_id=(1 << 62) + 5, key=b"k")
        assert decode_payload(req.encode()).request_id == (1 << 62) + 5


RESPONSES = [
    Response(request_id=1, found=True, applied=True, value=b"payload"),
    Response(request_id=2, status=Status.NOT_FOUND),
    Response(request_id=3, applied=False),  # deduplicated retry
    Response(request_id=4, pairs=[(b"a", b"1"), (b"b", b"2")]),
    Response(request_id=5, snapshot=77),
    Response(
        request_id=6,
        client_id=9,
        shard_count=4,
        boundaries=[b"g", b"p", b"w"],
    ),
    Response(request_id=7, status=Status.DEGRADED, message="flush failed"),
    Response(request_id=8, status=Status.BAD_SHARD, message="no shard 9"),
    Response(request_id=9, status=Status.UNSUPPORTED, message="no snapshots"),
    Response(request_id=10, status=Status.SERVER_ERROR, message="boom"),
]


class TestResponseRoundtrip:
    @pytest.mark.parametrize(
        "response", RESPONSES, ids=lambda r: Status.NAMES[r.status]
    )
    def test_roundtrip(self, response):
        decoded = decode_payload(response.encode())
        if response.status in (Status.OK, Status.NOT_FOUND):
            assert decoded == response
        else:
            # Error responses carry only the status and message.
            assert decoded.status == response.status
            assert decoded.message == response.message
            assert decoded.request_id == response.request_id


class TestPayloadErrors:
    def test_empty_payload(self):
        with pytest.raises(FrameError):
            decode_payload(b"")

    def test_unknown_op(self):
        with pytest.raises(FrameError):
            decode_payload(bytes([0x55, 0x01, 0x00]))

    def test_truncated_payload(self):
        wire = Request(op=Op.PUT, request_id=3, key=b"k", value=b"v" * 50).encode()
        with pytest.raises(FrameError):
            decode_payload(wire[: len(wire) // 2])

    def test_cannot_encode_unknown_op(self):
        with pytest.raises(FrameError):
            Request(op=99).encode()


class TestShardRouter:
    def test_single_shard_routes_everything(self):
        router = ShardRouter.single()
        assert router.num_shards == 1
        assert router.shard_for(b"") == 0
        assert router.shard_for(b"\xff" * 8) == 0
        assert router.split_range(b"", None) == [(0, b"", None)]

    def test_bisection(self):
        router = ShardRouter([b"g", b"p"])
        assert router.num_shards == 3
        assert router.shard_for(b"a") == 0
        assert router.shard_for(b"g") == 1  # boundary belongs to the right
        assert router.shard_for(b"o") == 1
        assert router.shard_for(b"p") == 2
        assert router.shard_for(b"z") == 2

    def test_shard_range(self):
        router = ShardRouter([b"g", b"p"])
        assert router.shard_range(0) == (None, b"g")
        assert router.shard_range(1) == (b"g", b"p")
        assert router.shard_range(2) == (b"p", None)
        with pytest.raises(InvalidArgumentError):
            router.shard_range(3)

    def test_invalid_boundaries(self):
        for bad in ([b"b", b"a"], [b"a", b"a"], [b""]):
            with pytest.raises(InvalidArgumentError):
                ShardRouter(bad)

    def test_from_samples_balances(self):
        keys = [b"key%04d" % i for i in range(1000)]
        router = ShardRouter.from_samples(keys, 4)
        assert router.num_shards == 4
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[router.shard_for(key)] += 1
        assert min(counts) > 150  # roughly balanced quantile split

    def test_from_samples_degenerate(self):
        assert ShardRouter.from_samples([b"a", b"b"], 5).num_shards == 1
        assert ShardRouter.from_samples([], 3).num_shards == 1

    def test_split_batch_preserves_order(self):
        router = ShardRouter([b"m"])
        ops = [
            (KIND_PUT, b"a", b"1"),
            (KIND_PUT, b"z", b"2"),
            (KIND_DELETE, b"b", b""),
            (KIND_PUT, b"n", b"3"),
        ]
        pieces = router.split_batch(ops)
        assert pieces[0] == [ops[0], ops[2]]
        assert pieces[1] == [ops[1], ops[3]]

    def test_split_range_spans_shards(self):
        router = ShardRouter([b"g", b"p"])
        assert router.split_range(b"a", None) == [
            (0, b"a", b"g"),
            (1, b"g", b"p"),
            (2, b"p", None),
        ]
        assert router.split_range(b"h", b"q") == [
            (1, b"h", b"p"),
            (2, b"p", b"q"),
        ]

    def test_split_range_hi_on_boundary_excludes_right_shard(self):
        router = ShardRouter([b"g", b"p"])
        # hi is exclusive: a scan ending exactly at "p" never touches shard 2.
        assert router.split_range(b"a", b"p") == [
            (0, b"a", b"g"),
            (1, b"g", b"p"),
        ]

    def test_split_range_empty(self):
        router = ShardRouter([b"g"])
        assert router.split_range(b"x", b"x") == []
        assert router.split_range(b"x", b"a") == []

    def test_split_range_single_shard_slice(self):
        router = ShardRouter([b"g", b"p"])
        assert router.split_range(b"h", b"i") == [(1, b"h", b"i")]

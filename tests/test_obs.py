"""The repro.obs subsystem: metrics registry, histograms, and tracing.

Covers the observability contracts this layer promises:

* histogram percentiles within one bucket width of the exact sample
  quantile, with bounded memory;
* byte-identical trace files for the same seed + workload (single
  engine and a sharded cluster), and zero perturbation of the simulated
  run when tracing is on;
* the span-nesting invariant (no span closes before its children);
* one trace id spanning client -> shard server -> engine -> background
  work for a cluster operation;
* StoreStats staying a live view over the registry.
"""

from __future__ import annotations

import hashlib
import io
import random

import pytest

import repro
from repro.obs.metrics import HIST_GROWTH, Histogram, MetricsRegistry
from repro.obs.trace import TraceSink, Tracer, read_trace, verify_nesting
from tests.conftest import make_store


def _exact_percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


class TestHistogram:
    def test_percentile_within_one_bucket_width(self):
        rng = random.Random(11)
        hist = Histogram("lat")
        samples = []
        for _ in range(5000):
            value = rng.expovariate(1.0 / 50e-6)  # latency-shaped, ~50us
            samples.append(value)
            hist.record(value)
        assert len(hist) == 5000
        for q in (0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0):
            exact = _exact_percentile(samples, q)
            estimate = hist.percentile(q)
            width = hist.bucket_width_at(exact)
            assert abs(estimate - exact) <= width, (
                f"p{q}: |{estimate} - {exact}| > bucket width {width}"
            )

    def test_bounded_memory(self):
        hist = Histogram("lat")
        for i in range(100_000):
            hist.record((i % 977 + 1) * 1e-7)
        # A raw list would hold 100k floats; the buckets stay O(log range).
        assert len(hist.buckets) < 80
        assert hist.count == 100_000

    def test_relative_error_is_growth_bounded(self):
        hist = Histogram("lat")
        rng = random.Random(5)
        samples = [rng.uniform(1e-6, 1e-2) for _ in range(2000)]
        for value in samples:
            hist.record(value)
        for q in (0.5, 0.9, 0.99):
            exact = _exact_percentile(samples, q)
            assert hist.percentile(q) <= exact * HIST_GROWTH + 1e-12
            assert hist.percentile(q) >= exact / HIST_GROWTH - 1e-12

    def test_min_max_clamping(self):
        hist = Histogram("lat")
        hist.record(3.0)
        hist.record(5.0)
        assert hist.percentile(0.0) >= 3.0
        assert hist.percentile(1.0) <= 5.0

    def test_merge(self):
        a, b = Histogram("x"), Histogram("x")
        for i in range(10):
            a.record(i + 1.0)
            b.record((i + 1.0) * 100)
        a.merge(b)
        assert a.count == 20
        assert a.max == 1000.0
        with pytest.raises(ValueError):
            a.merge(Histogram("x", lo=1.0))


class TestRegistry:
    def test_exposition_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("op.puts").inc(3)
        reg.gauge("store.memory_bytes").set(42)
        reg.histogram("flush.seconds").record(0.25)
        reg.counter("read.files_probed", level=2).inc()
        text = reg.to_text()
        assert "# TYPE repro_op_puts counter" in text
        assert "repro_op_puts 3" in text
        assert 'repro_read_files_probed{level="2"} 1' in text
        assert "repro_flush_seconds_count 1" in text
        assert text == "".join(sorted(text.splitlines(True), key=lambda _: 0))

    def test_delta_and_merge(self):
        reg = MetricsRegistry()
        counter = reg.counter("op.gets")
        counter.inc(5)
        before = reg.snapshot()
        counter.inc(2)
        assert reg.delta(before)["op.gets"] == 2

        other = MetricsRegistry()
        other.counter("op.gets").inc(10)
        other.gauge("compaction.parallel_peak").set(3)
        reg.merge(other)
        assert reg.value("op.gets") == 17
        assert reg.value("compaction.parallel_peak") == 3

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_exposition_order_is_insertion_independent(self):
        """Scrape joins must be able to diff two registries textually, so
        ``to_text`` sorts by metric name, not creation order."""
        forward, backward = MetricsRegistry(), MetricsRegistry()
        entries = [("op.puts", 3), ("flush.bytes", 9), ("wal.syncs", 2)]
        for name, value in entries:
            forward.counter(name).inc(value)
        for name, value in reversed(entries):
            backward.counter(name).inc(value)
        backward.counter("read.probes", level=1).inc()
        forward.counter("read.probes", level=1).inc()
        assert forward.to_text() == backward.to_text()

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("files.open", path='db/"a"\\b\nc').inc()
        text = reg.to_text()
        assert '{path="db/\\"a\\"\\\\b\\nc"}' in text
        assert "\nc\"" not in text  # no raw newline inside the label

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().to_text() == ""


def _exercise(db, n=400):
    for i in range(n):
        db.put(b"key%06d" % i, b"v" * 64)
    for i in range(0, n, 4):
        db.get(b"key%06d" % i)
    it = db.seek(b"key%06d" % (n // 2))
    for _ in range(10):
        if not it.valid:
            break
        it.next()
    it.close()
    db.wait_idle()


def _digest(env) -> str:
    digest = hashlib.sha256()
    for name in env.storage.list_files(""):
        data = env.storage._files[name].data  # test support: raw view
        digest.update(name.encode())
        digest.update(bytes(data))
    return digest.hexdigest()


class TestEngineTraceDeterminism:
    def _run(self, traced: bool):
        env = repro.Environment(cache_bytes=4 * 1024 * 1024)
        db = make_store("pebblesdb", env)
        buffer = io.StringIO()
        if traced:
            db.enable_tracing(TraceSink(buffer))
        _exercise(db)
        digest, now = _digest(env), env.now
        stats = db.stats()
        db.close()
        return buffer.getvalue(), digest, now, stats

    def test_same_seed_byte_identical_trace(self):
        trace_a = self._run(traced=True)[0]
        trace_b = self._run(traced=True)[0]
        assert trace_a, "trace is empty"
        assert trace_a == trace_b

    def test_tracing_does_not_perturb_the_simulation(self):
        _, digest_on, now_on, stats_on = self._run(traced=True)
        _, digest_off, now_off, stats_off = self._run(traced=False)
        assert digest_on == digest_off
        assert now_on == now_off
        assert vars(stats_on) == vars(stats_off)

    def test_nesting_invariant(self):
        trace = self._run(traced=True)[0]
        spans = read_trace(io.StringIO(trace))
        verify_nesting(spans)
        names = {span["name"] for span in spans}
        assert "write" in names and "get" in names
        assert "flush" in names

    def test_background_spans_link_to_scheduler(self):
        trace = self._run(traced=True)[0]
        spans = read_trace(io.StringIO(trace))
        by_id = {span["span"]: span for span in spans}
        flushes = [s for s in spans if s["name"] == "flush"]
        assert flushes
        linked = [s for s in flushes if s.get("parent") in by_id]
        assert linked, "no flush span links back to the span that scheduled it"


class TestClusterTraceDeterminism:
    def _run_cluster(self, path):
        from repro.net.client import BlockingClusterClient
        from repro.net.server import KVServer, ServerConfig

        server = KVServer(ServerConfig(shards=4, seed=3))
        client = BlockingClusterClient(server)
        sink = client.enable_tracing(path)
        for i in range(600):
            client.put(b"user%06d" % i, b"v" * 300)
        for i in range(0, 600, 6):
            client.get(b"user%06d" % i)
        client.scan(b"user000000", b"user000050")
        client.wait_idle()
        client.close()
        sink.close()
        with open(path) as handle:
            return handle.read()

    def test_sharded_trace_byte_identical(self, tmp_path):
        trace_a = self._run_cluster(str(tmp_path / "a.jsonl"))
        trace_b = self._run_cluster(str(tmp_path / "b.jsonl"))
        assert trace_a, "cluster trace is empty"
        assert trace_a == trace_b

    def test_one_trace_spans_client_server_engine_background(self, tmp_path):
        trace = self._run_cluster(str(tmp_path / "t.jsonl"))
        spans = read_trace(io.StringIO(trace))
        verify_nesting(spans)
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span["trace"], []).append(span)
        # At least one client put's trace reaches all the way down into
        # background work scheduled by the engine write it caused.
        full = [
            chain
            for chain in by_trace.values()
            if {s["kind"] for s in chain} >= {"client", "server", "internal", "background"}
        ]
        assert full, "no trace covers client -> server -> engine -> background"
        chain = full[0]
        names = {s["name"] for s in chain}
        assert "client.put" in names and "server.put" in names
        assert "write" in names
        # Every span in the chain shares the one trace id by construction;
        # check the parent links actually connect the layers.
        by_id = {s["span"]: s for s in chain}
        server_spans = [s for s in chain if s["kind"] == "server"]
        assert any(s.get("parent") in by_id for s in server_spans)

    def test_metrics_wire_op(self):
        from repro.net.client import BlockingClusterClient
        from repro.net.server import KVServer, ServerConfig

        server = KVServer(ServerConfig(shards=2, seed=1))
        client = BlockingClusterClient(server)
        client.put(b"user1", b"x")
        texts = client.all_metrics()
        assert len(texts) == 2
        assert all(t and "# TYPE repro_op_puts counter" in t for t in texts)
        assert server.metrics_text().startswith("# TYPE")
        client.close()


class TestWireTraceField:
    def test_trace_field_roundtrip(self):
        from repro.net.protocol import Op, Request, decode_payload

        request = Request(op=Op.GET, request_id=9, shard=1, key=b"k", trace="t1/s1")
        decoded = decode_payload(request.encode())
        assert decoded.trace == "t1/s1"
        assert decoded.key == b"k"

    def test_untraced_payload_has_no_extra_bytes(self):
        from repro.net.protocol import Op, Request, decode_payload

        traced = Request(op=Op.PUT, request_id=1, key=b"k", value=b"v", trace="t/s")
        plain = Request(op=Op.PUT, request_id=1, key=b"k", value=b"v")
        assert len(plain.encode()) < len(traced.encode())
        assert decode_payload(plain.encode()).trace == ""

    def test_metrics_op_roundtrip(self):
        from repro.net.protocol import Op, Request, decode_payload

        request = Request(op=Op.METRICS, request_id=4, shard=3)
        decoded = decode_payload(request.encode())
        assert decoded.op == Op.METRICS and decoded.shard == 3


class TestStatsView:
    def test_store_stats_is_a_registry_view(self):
        env = repro.Environment()
        db = make_store("pebblesdb", env)
        for i in range(20):
            db.put(b"k%04d" % i, b"v")
        stats = db.stats()
        assert stats.puts == 20
        assert db.registry.value("op.puts") == 20
        db.get(b"k0001")
        assert db.registry.value("op.gets") == 1
        assert db.stats().gets == 1
        db.close()

    def test_health_property_carries_scheduler_counters(self):
        env = repro.Environment()
        db = make_store("pebblesdb", env)
        health = db.get_property("repro.health")
        assert health.split()[0] in ("ok", "degraded")
        assert "parallel-peak=" in health and "conflict-stall=" in health
        db.close()


class TestPointTracer:
    def test_span_ids_are_deterministic(self):
        sink_a, sink_b = io.StringIO(), io.StringIO()
        for sink in (sink_a, sink_b):
            tracer = Tracer(TraceSink(sink), component="c", seed=9)
            with tracer.span("outer"):
                with tracer.span("inner", depth=2):
                    pass
            tracer.point("evt", at=1.5)
        assert sink_a.getvalue() == sink_b.getvalue()
        spans = read_trace(io.StringIO(sink_a.getvalue()))
        assert [s["name"] for s in spans] == ["inner", "outer", "evt"]
        assert all(s["span"].startswith("c-9-") for s in spans)

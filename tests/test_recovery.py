"""Crash recovery: WAL replay, MANIFEST replay, guard metadata (§4.3.1)."""

import dataclasses
import random

import pytest

import repro
from repro.engines.options import StoreOptions
from tests.conftest import LSM_ENGINES, tiny_options


def open_db(env, engine, sync_writes=True, **overrides):
    options = dataclasses.replace(
        tiny_options(engine, **overrides), sync_writes=sync_writes
    )
    return repro.open_store(engine, env.storage, options=options, prefix="db/")


def load(db, n, seed=0):
    rng = random.Random(seed)
    model = {}
    for i in range(n):
        k = b"key%08d" % rng.randrange(10**7)
        v = b"value%06d" % i
        db.put(k, v)
        model[k] = v
    return model


class TestCleanReopen:
    @pytest.mark.parametrize("engine", LSM_ENGINES)
    def test_reopen_preserves_everything(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, engine, sync_writes=False)
        model = load(db, 1500, seed=1)
        db.close()
        db2 = open_db(env, engine, sync_writes=False)
        assert dict(db2.scan()) == model
        db2.check_invariants()

    def test_sequence_numbers_continue_after_reopen(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb")
        db.put(b"k", b"v1")
        seq1 = db.last_sequence
        db.close()
        db2 = open_db(env, "pebblesdb")
        db2.put(b"k", b"v2")
        assert db2.last_sequence > seq1
        assert db2.get(b"k") == b"v2"


class TestCrashWithSyncWal:
    @pytest.mark.parametrize("engine", LSM_ENGINES)
    def test_no_acknowledged_write_lost(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, engine, sync_writes=True)
        model = load(db, 1200, seed=2)
        env.storage.crash()
        db2 = open_db(env, engine, sync_writes=True)
        for k, v in model.items():
            assert db2.get(k) == v, (engine, k)
        db2.check_invariants()

    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_crash_at_many_points(self, engine):
        """Crash after varying numbers of ops; everything acked survives."""
        for crash_at in (1, 7, 153, 411, 998):
            env = repro.Environment(cache_bytes=1 << 20)
            db = open_db(env, engine, sync_writes=True)
            rng = random.Random(crash_at)
            model = {}
            for i in range(crash_at):
                k = b"key%06d" % rng.randrange(500)
                if rng.random() < 0.8:
                    v = b"v%06d" % i
                    db.put(k, v)
                    model[k] = v
                else:
                    db.delete(k)
                    model.pop(k, None)
            env.storage.crash()
            db2 = open_db(env, engine, sync_writes=True)
            assert dict(db2.scan()) == model, f"crash_at={crash_at}"
            db2.check_invariants()

    def test_double_crash(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb", sync_writes=True)
        model = load(db, 600, seed=3)
        env.storage.crash()
        db2 = open_db(env, "pebblesdb", sync_writes=True)
        env.storage.crash()  # crash again right after recovery
        db3 = open_db(env, "pebblesdb", sync_writes=True)
        assert dict(db3.scan()) == model
        db3.check_invariants()

    def test_writes_after_recovery_work(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb", sync_writes=True)
        model = load(db, 500, seed=4)
        env.storage.crash()
        db2 = open_db(env, "pebblesdb", sync_writes=True)
        more = load(db2, 500, seed=5)
        model.update(more)
        assert dict(db2.scan()) == model


class TestCrashWithAsyncWal:
    def test_loss_bounded_by_unsynced_window(self):
        """With sync off, a crash may lose the unsynced tail but nothing
        that reached a synced sstable, and never corrupts the store."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb", sync_writes=False)
        model = load(db, 2000, seed=6)
        db.flush_memtable()  # everything now durable in sstables
        extra = {}
        for i in range(50):
            k, v = b"late%04d" % i, b"x"
            db.put(k, v)
            extra[k] = v
        env.storage.crash()
        db2 = open_db(env, "pebblesdb", sync_writes=False)
        got = dict(db2.scan())
        for k, v in model.items():
            assert got.get(k) == v
        # The late writes may or may not have survived, but no third state.
        for k in extra:
            assert got.get(k) in (None, b"x")
        db2.check_invariants()


class TestGuardRecovery:
    def test_guards_recovered_from_manifest(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb", sync_writes=True)
        load(db, 2500, seed=7)
        db.compact_all()
        guards_before = db.guard_counts()
        assert sum(guards_before) > 0
        env.storage.crash()
        db2 = open_db(env, "pebblesdb", sync_writes=True)
        assert db2.guard_counts() == guards_before
        db2.check_invariants()

    def test_guard_deletion_survives_crash(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb", sync_writes=True)
        model = load(db, 2500, seed=8)
        db.compact_all()
        victims = [
            key
            for lvl in range(1, db.options.num_levels)
            for key in db._guarded[lvl].guard_keys
        ]
        assert victims
        db.request_guard_deletion(victims[0])
        db.put(b"tick", b"t")
        model[b"tick"] = b"t"
        db.compact_all()
        env.storage.crash()
        db2 = open_db(env, "pebblesdb", sync_writes=True)
        for lvl in range(1, db2.options.num_levels):
            assert not db2._guarded[lvl].has_guard(victims[0])
        assert dict(db2.scan()) == model
        db2.check_invariants()

    def test_orphan_sstables_removed(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "pebblesdb", sync_writes=True)
        load(db, 800, seed=9)
        db.flush_memtable()
        # Plant an orphan that looks like an sstable.
        env.storage.create("db/999999.sst")
        env.storage.append(
            "db/999999.sst", b"garbage", env.storage.foreground_account()
        )
        env.storage.sync("db/999999.sst", env.storage.foreground_account())
        db.close()
        db2 = open_db(env, "pebblesdb", sync_writes=True)
        assert not env.storage.exists("db/999999.sst")
        db2.check_invariants()


class TestRecoveryEdgeCases:
    def test_fresh_store_on_empty_storage(self):
        env = repro.Environment()
        db = open_db(env, "pebblesdb")
        assert db.get(b"anything") is None
        assert list(db.scan()) == []

    def test_crash_before_any_write(self):
        env = repro.Environment()
        db = open_db(env, "pebblesdb", sync_writes=True)
        env.storage.crash()
        db2 = open_db(env, "pebblesdb", sync_writes=True)
        assert list(db2.scan()) == []

    def test_reopen_with_pending_background_work(self):
        """Closing mid-compaction must leave a consistent store."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = open_db(env, "hyperleveldb", sync_writes=True)
        model = load(db, 1500, seed=10)
        # close() waits for background work; crash instead, mid-backlog.
        env.storage.crash()
        db2 = open_db(env, "hyperleveldb", sync_writes=True)
        assert dict(db2.scan()) == model
        db2.check_invariants()

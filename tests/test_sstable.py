"""SSTable format, builder, reader, and merging iterators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError, InvalidArgumentError
from repro.sim.cache import PageCache
from repro.sim.storage import SimulatedStorage
from repro.sstable import (
    SSTableBuilder,
    SSTableReader,
    compaction_iterator,
    merging_iterator,
)
from repro.sstable.format import Footer, decode_block
from repro.util.keys import KIND_DELETE, KIND_PUT, MAX_SEQUENCE, InternalKey


def build_table(entries, block_size=512):
    builder = SSTableBuilder(block_size=block_size)
    for key, value in entries:
        builder.add(key, value)
    return builder.finish()


def write_table(storage, name, blob):
    acct = storage.foreground_account()
    storage.create(name)
    storage.append(name, blob, acct)
    storage.sync(name, acct)
    return SSTableReader.open(storage, name, acct)


@pytest.fixture
def storage():
    return SimulatedStorage(cache=PageCache(1 << 20))


def make_entries(n, value=b"v", start_seq=1):
    return [
        (InternalKey(b"key%06d" % i, start_seq + i, KIND_PUT), value + b"%d" % i)
        for i in range(n)
    ]


class TestBuilderReader:
    def test_roundtrip_all_entries(self, storage):
        entries = make_entries(500)
        blob, props, _ = build_table(entries)
        assert props.num_entries == 500
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        assert list(reader.iter_all(acct)) == entries
        assert reader.num_entries == 500
        assert reader.num_blocks > 1

    def test_get_found_and_missing(self, storage):
        entries = make_entries(200)
        blob, _, _ = build_table(entries)
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        hit = reader.get(b"key000123", MAX_SEQUENCE, acct)
        assert hit.found and hit.value == b"v123"
        miss = reader.get(b"key999999", MAX_SEQUENCE, acct)
        assert not miss.found

    def test_get_respects_snapshot(self, storage):
        key = b"samekey"
        entries = [
            (InternalKey(key, 10, KIND_PUT), b"new"),
            (InternalKey(key, 5, KIND_PUT), b"old"),
        ]
        blob, _, _ = build_table(entries)
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        assert reader.get(key, MAX_SEQUENCE, acct).value == b"new"
        assert reader.get(key, 7, acct).value == b"old"
        assert not reader.get(key, 3, acct).found

    def test_get_sees_tombstone(self, storage):
        entries = [(InternalKey(b"k", 9, KIND_DELETE), b"")]
        blob, _, _ = build_table(entries)
        reader = write_table(storage, "t.sst", blob)
        result = reader.get(b"k", MAX_SEQUENCE, storage.foreground_account())
        assert result.found and result.is_deleted

    def test_seek_positions_mid_table(self, storage):
        entries = make_entries(300)
        blob, _, _ = build_table(entries)
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        probe = InternalKey(b"key000150", MAX_SEQUENCE, KIND_PUT)
        got = list(reader.seek(probe, acct))
        assert got == entries[150:]

    def test_bloom_filters_absent_keys(self, storage):
        entries = make_entries(100)
        blob, _, _ = build_table(entries)
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        assert reader.may_contain(b"key000050", acct)
        absent_hits = sum(
            1 for i in range(500) if reader.may_contain(b"zzz%06d" % i, acct)
        )
        assert absent_hits < 25

    def test_out_of_order_rejected(self):
        builder = SSTableBuilder()
        builder.add(InternalKey(b"b", 1, KIND_PUT), b"")
        with pytest.raises(InvalidArgumentError):
            builder.add(InternalKey(b"a", 1, KIND_PUT), b"")

    def test_empty_table_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SSTableBuilder().finish()

    def test_corrupt_footer_detected(self, storage):
        entries = make_entries(10)
        blob, _, _ = build_table(entries)
        corrupted = blob[:-2] + b"\xff\xff"
        acct = storage.foreground_account()
        storage.create("bad.sst")
        storage.append("bad.sst", corrupted, acct)
        with pytest.raises(CorruptionError):
            SSTableReader.open(storage, "bad.sst", acct)

    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=12), st.binary(max_size=40)),
            min_size=1,
            max_size=80,
            unique_by=lambda kv: kv[0],
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, pairs):
        pairs.sort(key=lambda kv: kv[0])
        entries = [
            (InternalKey(k, i + 1, KIND_PUT), v) for i, (k, v) in enumerate(pairs)
        ]
        # InternalKey order within equal user keys is seq-desc, but user
        # keys here are unique and ascending, so this is already sorted.
        blob, props, _ = build_table(entries, block_size=128)
        storage = SimulatedStorage(cache=PageCache(1 << 20))
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        assert list(reader.iter_all(acct)) == entries
        for key, value in pairs[:10]:
            assert reader.get(key, MAX_SEQUENCE, acct).value == value


class TestZeroCopyDecode:
    """Zero-copy block decode: same entries, same errors, no value copies."""

    def _one_block(self, entries):
        from repro.sstable.format import BlockBuilder, seal_block

        builder = BlockBuilder()
        for key, value in entries:
            builder.add(key, value)
        return seal_block(builder.finish())

    def test_modes_decode_identically(self):
        entries = make_entries(40, value=b"some-longer-value-")
        block = self._one_block(entries)
        copied = decode_block(block, zero_copy=False)
        shared = decode_block(block, zero_copy=True)
        assert copied == shared == entries
        assert all(isinstance(v, bytes) for _, v in copied)
        assert all(isinstance(v, memoryview) for _, v in shared)
        # The memoryviews alias the block buffer, not per-entry copies.
        assert all(v.obj is block for _, v in shared)

    @given(st.binary(min_size=5, max_size=200), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_corruption_error_parity(self, junk, zero_copy):
        """Random damage raises the same CorruptionError in both modes."""
        entries = make_entries(6)
        block = bytearray(self._one_block(entries))
        block[: len(junk)] = junk  # stomp the front of the payload
        damaged = bytes(block)
        outcomes = []
        for mode in (False, True):
            try:
                outcomes.append(("ok", decode_block(damaged, zero_copy=mode)))
            except CorruptionError as exc:
                outcomes.append(("err", str(exc)))
        assert outcomes[0] == outcomes[1]

    def test_reader_get_returns_bytes_in_both_modes(self, storage):
        entries = make_entries(100)
        blob, _, _ = build_table(entries)
        acct = storage.foreground_account()
        storage.create("t.sst")
        storage.append("t.sst", blob, acct)
        storage.sync("t.sst", acct)
        for zero_copy in (False, True):
            reader = SSTableReader.open(
                storage, "t.sst", acct, zero_copy=zero_copy
            )
            hit = reader.get(b"key000042", MAX_SEQUENCE, acct)
            assert hit.found
            assert hit.value == b"v42"
            # The escape hatch materializes: users always get bytes.
            assert isinstance(hit.value, bytes)

    def test_probe_param_equivalent(self, storage):
        entries = make_entries(100)
        blob, _, _ = build_table(entries)
        reader = write_table(storage, "t.sst", blob)
        acct = storage.foreground_account()
        probe = InternalKey(b"key000042", MAX_SEQUENCE, KIND_PUT)
        with_probe = reader.get(b"key000042", MAX_SEQUENCE, acct, probe)
        without = reader.get(b"key000042", MAX_SEQUENCE, acct)
        assert (with_probe.found, with_probe.value, with_probe.sequence) == (
            without.found,
            without.value,
            without.sequence,
        )


class TestFooter:
    def test_roundtrip(self):
        footer = Footer(1, 2, 3, 4, 5)
        assert Footer.decode(footer.encode()) == footer

    def test_wrong_size_rejected(self):
        with pytest.raises(CorruptionError):
            Footer.decode(b"short")

    def test_checksum_detects_flip(self):
        data = bytearray(Footer(1, 2, 3, 4, 5).encode())
        data[0] ^= 1
        with pytest.raises(CorruptionError):
            Footer.decode(bytes(data))


class TestMerging:
    def test_merges_sorted_streams(self):
        a = [(InternalKey(b"a", 1, KIND_PUT), b"1"), (InternalKey(b"c", 2, KIND_PUT), b"2")]
        b = [(InternalKey(b"b", 3, KIND_PUT), b"3")]
        merged = list(merging_iterator([iter(a), iter(b)]))
        assert [e[0].user_key for e in merged] == [b"a", b"b", b"c"]

    def test_newest_version_first_within_key(self):
        a = [(InternalKey(b"k", 1, KIND_PUT), b"old")]
        b = [(InternalKey(b"k", 9, KIND_PUT), b"new")]
        merged = list(merging_iterator([iter(a), iter(b)]))
        assert [e[1] for e in merged] == [b"new", b"old"]

    def test_compaction_collapses_versions(self):
        stream = iter(
            [
                (InternalKey(b"a", 9, KIND_PUT), b"new"),
                (InternalKey(b"a", 2, KIND_PUT), b"old"),
                (InternalKey(b"b", 5, KIND_DELETE), b""),
                (InternalKey(b"b", 1, KIND_PUT), b"dead"),
            ]
        )
        out = list(compaction_iterator(stream))
        assert [(e[0].user_key, e[1]) for e in out] == [(b"a", b"new"), (b"b", b"")]
        assert out[1][0].kind == KIND_DELETE

    def test_compaction_drops_tombstones_at_bottom(self):
        stream = iter(
            [
                (InternalKey(b"a", 9, KIND_DELETE), b""),
                (InternalKey(b"a", 2, KIND_PUT), b"dead"),
                (InternalKey(b"b", 5, KIND_PUT), b"live"),
            ]
        )
        out = list(compaction_iterator(stream, drop_tombstones=True))
        assert [(e[0].user_key, e[1]) for e in out] == [(b"b", b"live")]

"""Model-based stateful testing (hypothesis RuleBasedStateMachine).

Drives a PebblesDB store through arbitrary interleavings of puts,
deletes, reads, scans, snapshots, compaction, and reopen, checking every
observation against a dict model and snapshot ledger.  This is the
heaviest correctness artillery in the suite: any divergence between the
FLSM machinery and plain-map semantics fails here with a minimized
counterexample.
"""

import dataclasses

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

import repro
from repro.engines.options import StoreOptions

KEYS = st.sampled_from([b"sk%02d" % i for i in range(30)])
VALUES = st.binary(min_size=1, max_size=20)


def _options():
    return dataclasses.replace(
        StoreOptions.pebblesdb(),
        memtable_bytes=2 * 1024,
        level1_max_bytes=8 * 1024,
        target_file_bytes=4 * 1024,
        top_level_bits=5,
        bit_decrement=1,
        sync_writes=True,
    )


class StoreMachine(RuleBasedStateMachine):
    snapshots = Bundle("snapshots")

    @initialize()
    def setup(self):
        self.env = repro.Environment(cache_bytes=512 * 1024)
        self.db = repro.open_store(
            "pebblesdb", self.env.storage, options=_options(), prefix="db/"
        )
        self.model = {}
        self.snapshot_models = {}
        self.ops_since_check = 0

    # ------------------------------------------------------------------
    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.db.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.db.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.db.get(key) == self.model.get(key)

    @rule(key=KEYS)
    def scan_from(self, key):
        expected = sorted((k, v) for k, v in self.model.items() if k >= key)
        got = list(self.db.scan(key))
        assert got == expected

    @rule(key=KEYS)
    def scan_reverse_from(self, key):
        expected = sorted(
            ((k, v) for k, v in self.model.items() if k <= key), reverse=True
        )
        assert list(self.db.scan_reverse(key)) == expected

    # ------------------------------------------------------------------
    @rule(target=snapshots)
    def take_snapshot(self):
        snap = self.db.get_snapshot()
        self.snapshot_models[snap.sequence] = dict(self.model)
        return snap

    @rule(snap=snapshots, key=KEYS)
    def read_through_snapshot(self, snap, key):
        frozen = self.snapshot_models.get(snap.sequence)
        if frozen is None or snap._released:
            return
        assert self.db.get(key, snapshot=snap) == frozen.get(key)

    @rule(snap=snapshots)
    def release(self, snap):
        self.db.release_snapshot(snap)

    # ------------------------------------------------------------------
    @rule()
    def flush(self):
        self.db.flush_memtable()

    @rule()
    def compact(self):
        self.db.compact_all()

    @rule()
    def reopen(self):
        # Snapshots are process state, not persistent state: the ledger
        # is cleared so stale snapshot handles are no longer consulted.
        self.db.close()
        self.db = repro.open_store(
            "pebblesdb", self.env.storage, options=_options(), prefix="db/"
        )
        self.snapshot_models.clear()

    @rule()
    def crash_and_recover(self):
        self.env.storage.crash()
        self.db = repro.open_store(
            "pebblesdb", self.env.storage, options=_options(), prefix="db/"
        )
        self.snapshot_models.clear()

    # ------------------------------------------------------------------
    @invariant()
    def engine_invariants_hold(self):
        if hasattr(self, "db"):
            self.ops_since_check += 1
            if self.ops_since_check >= 10:
                self.ops_since_check = 0
                self.db.check_invariants()


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=12, stateful_step_count=40, deadline=None
)

"""Simulated storage: namespace ops, IO accounting, durability semantics."""

import pytest

from repro.errors import StorageError
from repro.sim.cache import PAGE_SIZE, PageCache
from repro.sim.storage import SimulatedStorage


@pytest.fixture
def storage() -> SimulatedStorage:
    return SimulatedStorage(cache=PageCache(16 * PAGE_SIZE))


class TestNamespace:
    def test_create_and_exists(self, storage):
        storage.create("a")
        assert storage.exists("a")
        assert not storage.exists("b")

    def test_create_duplicate_fails(self, storage):
        storage.create("a")
        with pytest.raises(StorageError):
            storage.create("a")

    def test_delete_missing_fails(self, storage):
        with pytest.raises(StorageError):
            storage.delete("nope")

    def test_rename_replaces_target(self, storage):
        acct = storage.foreground_account()
        storage.create("a")
        storage.append("a", b"AAA", acct)
        storage.create("b")
        storage.append("b", b"BB", acct)
        storage.rename("a", "b")
        assert not storage.exists("a")
        assert storage.read("b", 0, 3, acct) == b"AAA"

    def test_list_files_prefix(self, storage):
        for name in ("db/1", "db/2", "other/3"):
            storage.create(name)
        assert storage.list_files("db/") == ["db/1", "db/2"]

    def test_total_live_bytes(self, storage):
        acct = storage.foreground_account()
        storage.create("db/a")
        storage.append("db/a", b"x" * 100, acct)
        storage.create("raw")
        storage.append("raw", b"y" * 50, acct)
        assert storage.total_live_bytes("db/") == 100
        assert storage.total_live_bytes() == 150


class TestDataOps:
    def test_append_read_roundtrip(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"hello ", acct)
        storage.append("f", b"world", acct)
        assert storage.read("f", 0, 11, acct) == b"hello world"
        assert storage.size("f") == 11

    def test_read_out_of_bounds(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"abc", acct)
        with pytest.raises(StorageError):
            storage.read("f", 1, 10, acct)

    def test_write_at_extends_and_overwrites(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.write_at("f", 4, b"zz", acct)
        assert storage.size("f") == 6
        assert storage.read("f", 0, 6, acct) == b"\x00\x00\x00\x00zz"
        storage.write_at("f", 0, b"ab", acct)
        assert storage.read("f", 0, 2, acct) == b"ab"


class TestAccounting:
    def test_write_time_charged_to_clock(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        before = storage.clock.now
        storage.append("f", b"x" * (1 << 20), acct)
        assert storage.clock.now > before

    def test_background_account_accumulates_without_clock(self, storage):
        acct = storage.background_account("compaction")
        storage.create("f")
        before = storage.clock.now
        storage.append("f", b"x" * (1 << 20), acct)
        assert storage.clock.now == before
        assert acct.seconds > 0

    def test_bytes_counted_per_account(self, storage):
        a = storage.foreground_account("store1/wal")
        b = storage.foreground_account("store2/wal")
        storage.create("f")
        storage.append("f", b"x" * 100, a)
        storage.append("f", b"y" * 50, b)
        assert storage.stats.written_by_account["store1/wal"] == 100
        assert storage.stats.written_by_account["store2/wal"] == 50
        assert storage.stats.bytes_written == 150

    def test_cached_read_is_free_of_device_time(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"x" * PAGE_SIZE, acct)  # populates cache
        reads_before = storage.stats.bytes_read
        storage.read("f", 0, PAGE_SIZE, acct)
        assert storage.stats.bytes_read == reads_before  # cache hit: no device IO

    def test_cold_read_counts_device_bytes(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"x" * (64 * PAGE_SIZE), acct)  # overflows 16-page cache
        storage.read("f", 0, PAGE_SIZE, acct)
        assert storage.stats.bytes_read >= PAGE_SIZE


class TestCrashSemantics:
    def test_unsynced_data_lost(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"durable", acct)
        storage.sync("f", acct)
        storage.append("f", b" volatile", acct)
        storage.crash()
        assert storage.size("f") == len(b"durable")

    def test_never_synced_file_disappears(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"data", acct)
        storage.crash()
        assert not storage.exists("f")

    def test_synced_file_survives(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"data", acct)
        storage.sync("f", acct)
        storage.crash()
        assert storage.read("f", 0, 4, acct) == b"data"

    def test_crash_clears_cache(self, storage):
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"x" * PAGE_SIZE, acct)
        storage.sync("f", acct)
        storage.crash()
        assert not storage.cache.access("anything", 0)
        assert storage.cache.stats.misses >= 1

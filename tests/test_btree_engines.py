"""B+tree structure and the btree/wiredtiger stores."""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.engines.btree import BPlusTree
from repro.engines.btree.store import BPlusTreeStore
from repro.engines.wiredtiger import WiredTigerStore


class TestBPlusTree:
    def test_insert_get(self):
        tree = BPlusTree(fanout=8)
        tree.put(b"b", b"2")
        tree.put(b"a", b"1")
        value, _ = tree.get(b"a")
        assert value == b"1"
        assert tree.get(b"missing")[0] is None
        assert len(tree) == 2

    def test_overwrite_keeps_size(self):
        tree = BPlusTree()
        tree.put(b"k", b"1")
        tree.put(b"k", b"2")
        assert len(tree) == 1
        assert tree.get(b"k")[0] == b"2"

    def test_delete(self):
        tree = BPlusTree()
        tree.put(b"k", b"v")
        removed, _ = tree.delete(b"k")
        assert removed
        assert tree.get(b"k")[0] is None
        removed, _ = tree.delete(b"k")
        assert not removed

    def test_splits_preserve_order(self):
        tree = BPlusTree(fanout=4)
        keys = [b"k%05d" % i for i in range(2000)]
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.put(k, b"v" * 40)
        tree.check_invariants()
        got = [k for k, _, _ in tree.iterate_from(b"")]
        assert got == sorted(keys)
        assert tree.page_count > 10

    def test_iterate_from_middle(self):
        tree = BPlusTree(fanout=4)
        for i in range(100):
            tree.put(b"k%03d" % i, b"v")
        got = [k for k, _, _ in tree.iterate_from(b"k050")]
        assert got[0] == b"k050"
        assert len(got) == 50

    def test_dirty_page_tracking(self):
        tree = BPlusTree()
        tree.put(b"a", b"1")
        dirty = tree.take_dirty()
        assert dirty
        assert not tree.take_dirty()

    @given(
        st.lists(
            st.tuples(st.booleans(), st.binary(min_size=1, max_size=6)),
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_model_equivalence(self, ops):
        tree = BPlusTree(fanout=4)
        model = {}
        for is_put, key in ops:
            if is_put:
                tree.put(key, key + b"!")
                model[key] = key + b"!"
            else:
                tree.delete(key)
                model.pop(key, None)
        tree.check_invariants()
        assert len(tree) == len(model)
        for key, value in model.items():
            assert tree.get(key)[0] == value


class TestBPlusTreeStore:
    @pytest.fixture
    def db(self):
        env = repro.Environment(cache_bytes=1 << 20)
        return repro.open_store("btree", env.storage), env

    def test_roundtrip(self, db):
        store, _ = db
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_seek_and_range(self, db):
        store, _ = db
        for i in range(50):
            store.put(b"k%03d" % i, b"%d" % i)
        rows = store.range_query(b"k010", b"k012")
        assert [k for k, _ in rows] == [b"k010", b"k011", b"k012"]

    def test_write_amplification_is_high(self, db):
        """Section 2.2: in-place page writes amplify small values hugely."""
        store, _ = db
        for i in range(600):
            store.put(b"key%09d" % (i * 7919 % 10**8), b"v" * 128)
        amp = store.stats().write_amplification
        assert amp > 10, f"B+tree write amp unexpectedly low: {amp}"

    def test_higher_amp_than_lsm(self):
        amps = {}
        for engine in ("btree", "hyperleveldb"):
            env = repro.Environment(cache_bytes=1 << 20)
            store = repro.open_store(engine, env.storage)
            for i in range(600):
                store.put(b"key%09d" % (i * 7919 % 10**8), b"v" * 128)
            if hasattr(store, "wait_idle"):
                store.wait_idle()
            amps[engine] = store.stats().write_amplification
        assert amps["btree"] > amps["hyperleveldb"]


class TestWiredTigerStore:
    @pytest.fixture
    def db(self):
        env = repro.Environment(cache_bytes=1 << 20)
        return repro.open_store("wiredtiger", env.storage), env

    def test_roundtrip(self, db):
        store, _ = db
        for i in range(200):
            store.put(b"k%04d" % i, b"v%d" % i)
        assert store.get(b"k0042") == b"v42"
        store.delete(b"k0042")
        assert store.get(b"k0042") is None
        store.check_invariants()

    def test_checkpoints_run(self, db):
        store, env = db
        for i in range(3000):
            store.put(b"k%05d" % i, b"v" * 128)
        store.close()
        assert store.stats().flushes >= 1, "no checkpoint ever completed"

    def test_amp_between_lsm_and_btree(self):
        """Figure 5.6b shape: WT writes less than the B+tree, more than
        PebblesDB."""
        amps = {}
        for engine in ("btree", "wiredtiger", "pebblesdb"):
            env = repro.Environment(cache_bytes=1 << 20)
            store = repro.open_store(engine, env.storage)
            rng = random.Random(5)
            for i in range(1500):
                store.put(b"key%09d" % rng.randrange(10**7), b"v" * 128)
            if hasattr(store, "wait_idle"):
                store.wait_idle()
            store.close()
            amps[engine] = store.stats().write_amplification
        assert amps["wiredtiger"] < amps["btree"]
        assert amps["pebblesdb"] < amps["btree"]

    def test_scan(self, db):
        store, _ = db
        for i in range(30):
            store.put(b"k%02d" % i, b"v")
        it = store.seek(b"k10")
        keys = []
        while it.valid and len(keys) < 5:
            keys.append(it.key())
            it.next()
        assert keys == [b"k10", b"k11", b"k12", b"k13", b"k14"]


class TestJournalRecovery:
    @pytest.mark.parametrize("engine", ["btree", "wiredtiger"])
    def test_reopen_replays_journal(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        store = repro.open_store(engine, env.storage, prefix="db/")
        model = {}
        for i in range(400):
            k, v = b"k%04d" % i, b"v%04d" % i
            store.put(k, v)
            model[k] = v
        for i in range(0, 400, 3):
            store.delete(b"k%04d" % i)
            model.pop(b"k%04d" % i, None)
        store.close()
        store2 = repro.open_store(engine, env.storage, prefix="db/")
        for k, v in model.items():
            assert store2.get(k) == v
        assert store2.get(b"k0003") is None
        store2.check_invariants()

    @pytest.mark.parametrize("engine", ["btree", "wiredtiger"])
    def test_crash_preserves_synced_journal(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        store = repro.open_store(engine, env.storage, prefix="db/")
        for i in range(200):
            store.put(b"k%04d" % i, b"v")
        # Make the journal durable, then lose power.
        store._journal.sync(store._acct)
        env.storage.crash()
        store2 = repro.open_store(engine, env.storage, prefix="db/")
        assert store2.get(b"k0100") == b"v"
        store2.check_invariants()

"""Chaos test: every PebblesDB feature interleaved under one workload.

Puts, deletes, reads, forward/reverse scans, snapshots, guard deletion,
rebalancing, empty-guard collection, targeted and full compaction, crash
+ recovery — all against one store, with the model checked and the
invariants verified throughout.  This is the closest thing to a soak test
the simulated substrate allows.
"""

import dataclasses
import random

import pytest

import repro
from repro.engines.options import StoreOptions


def _options(workers=1):
    return dataclasses.replace(
        StoreOptions.pebblesdb(),
        memtable_bytes=4 * 1024,
        level1_max_bytes=16 * 1024,
        target_file_bytes=8 * 1024,
        top_level_bits=6,
        bit_decrement=1,
        sync_writes=True,
        background_workers=workers,
    )


def _soak(workers=1, policy_seed=None, value_repeat=1):
    """The full chaos workload, parameterized by background parallelism
    and (optionally) a seeded random dispatch policy so crashes, guard
    maintenance, and snapshots all land while multiple guard compactions
    are in flight."""

    def _attach_policy(store):
        if policy_seed is not None:
            prng = random.Random(policy_seed)
            store.set_dispatch_policy(lambda cands: prng.randrange(len(cands)))

    env = repro.Environment(cache_bytes=1 << 20)
    db = repro.open_store(
        "pebblesdb", env.storage, options=_options(workers), prefix="db/"
    )
    _attach_policy(db)
    rng = random.Random(2024)
    peak = 0
    model = {}
    keyspace = [b"key%05d" % i for i in range(500)]
    snapshots = []

    for step in range(6000):
        roll = rng.random()
        key = rng.choice(keyspace)
        if roll < 0.45:
            value = (b"v%06d" % step) * value_repeat
            db.put(key, value)
            model[key] = value
        elif roll < 0.60:
            db.delete(key)
            model.pop(key, None)
        elif roll < 0.75:
            assert db.get(key) == model.get(key), (step, key)
        elif roll < 0.80:
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:10]
            got = []
            it = db.seek(key)
            while it.valid and len(got) < 10:
                got.append((it.key(), it.value()))
                it.next()
            it.close()
            assert got == expected, (step, key)
        elif roll < 0.85:
            expected = sorted(
                ((k, v) for k, v in model.items() if k <= key), reverse=True
            )[:10]
            got = []
            it = db.seek_reverse(key)
            while it.valid and len(got) < 10:
                got.append((it.key(), it.value()))
                it.next()
            it.close()
            assert got == expected, (step, key)
        elif roll < 0.88 and len(snapshots) < 3:
            snapshots.append((db.get_snapshot(), dict(model)))
        elif roll < 0.90 and snapshots:
            snap, frozen = snapshots.pop(rng.randrange(len(snapshots)))
            probe = rng.choice(keyspace)
            assert db.get(probe, snapshot=snap) == frozen.get(probe), (step, probe)
            db.release_snapshot(snap)
        elif roll < 0.92:
            db.compact_range(key, rng.choice(keyspace))
        elif roll < 0.94:
            db.collect_empty_guards()
        elif roll < 0.96:
            db.rebalance_guards()
        elif roll < 0.98:
            db.compact_all()
        else:
            # Crash and recover (drop process-level state: snapshots).
            for snap, _ in snapshots:
                db.release_snapshot(snap)
            snapshots.clear()
            # A crash resets per-instance stats, so bank the peak first.
            peak = max(peak, db.stats().compactions_parallel_peak)
            env.storage.crash()
            db = repro.open_store(
                "pebblesdb", env.storage, options=_options(workers), prefix="db/"
            )
            _attach_policy(db)
        if step % 500 == 499:
            db.wait_idle()
            db.check_invariants()
            assert dict(db.scan()) == model, f"divergence at step {step}"

    for snap, _ in snapshots:
        db.release_snapshot(snap)
    db.force_full_compaction()
    db.check_invariants()
    assert dict(db.scan()) == model
    assert dict(db.scan_reverse()) == model
    stats = db.stats()
    assert stats.write_amplification > 1.0
    db.close()
    return max(peak, stats.compactions_parallel_peak)


def test_chaos_soak():
    _soak()


@pytest.mark.parametrize("policy_seed", [None, 17])
def test_chaos_soak_guard_parallel(policy_seed):
    """The same soak with four worker timelines (and, in one variant, a
    randomized dispatch order): compactions overlap while every other
    feature — crashes included — fires around them."""
    peak = _soak(workers=4, policy_seed=policy_seed, value_repeat=16)
    assert peak >= 2

"""Reverse iteration: scan_reverse / seek_reverse across both engines."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from tests.conftest import make_store

ENGINES = ["pebblesdb", "hyperleveldb", "leveldb", "rocksdb"]


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


def fill(db, n, seed=0):
    rng = random.Random(seed)
    model = {}
    for i in range(n):
        k = b"key%06d" % rng.randrange(10**5)
        v = b"v%05d" % i
        db.put(k, v)
        model[k] = v
    return model


class TestScanReverse:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_full_reverse_matches_sorted_model(self, engine, env):
        db = make_store(engine, env)
        model = fill(db, 1500, seed=1)
        got = list(db.scan_reverse())
        expected = sorted(model.items(), reverse=True)
        assert got == expected

    def test_reverse_after_compaction(self, env):
        db = make_store("pebblesdb", env)
        model = fill(db, 2000, seed=2)
        db.compact_all()
        assert list(db.scan_reverse()) == sorted(model.items(), reverse=True)

    def test_reverse_skips_tombstones(self, env):
        db = make_store("pebblesdb", env)
        model = fill(db, 800, seed=3)
        doomed = random.Random(4).sample(list(model), 100)
        for k in doomed:
            db.delete(k)
            del model[k]
        assert list(db.scan_reverse()) == sorted(model.items(), reverse=True)

    def test_reverse_returns_newest_version(self, env):
        db = make_store("pebblesdb", env)
        for round_no in range(4):
            for i in range(200):
                db.put(b"k%03d" % i, b"round%d" % round_no)
            db.flush_memtable()
        got = dict(db.scan_reverse())
        assert all(v == b"round3" for v in got.values())

    def test_reverse_with_bound(self, env):
        db = make_store("hyperleveldb", env)
        for i in range(100):
            db.put(b"k%03d" % i, b"%d" % i)
        got = [k for k, _ in db.scan_reverse(b"k050")]
        assert got == [b"k%03d" % i for i in range(50, -1, -1)]

    def test_reverse_with_snapshot(self, env):
        db = make_store("pebblesdb", env)
        for i in range(50):
            db.put(b"k%02d" % i, b"old")
        snap = db.get_snapshot()
        for i in range(50):
            db.put(b"k%02d" % i, b"new")
        frozen = list(db.scan_reverse(snapshot=snap))
        assert all(v == b"old" for _, v in frozen)
        assert len(frozen) == 50


class TestSeekReverse:
    def test_positions_at_floor(self, env):
        db = make_store("pebblesdb", env)
        for i in range(0, 100, 10):
            db.put(b"k%03d" % i, b"v")
        it = db.seek_reverse(b"k055")
        assert it.key() == b"k050"
        it.next()
        assert it.key() == b"k040"
        it.close()

    def test_exact_key_included(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"exact", b"v")
        it = db.seek_reverse(b"exact")
        assert it.key() == b"exact"
        it.close()

    def test_before_first_key_empty(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"m", b"v")
        it = db.seek_reverse(b"a")
        assert not it.valid
        it.close()

    def test_unsupported_engines_raise(self, env):
        db = repro.open_store("btree", env.storage)
        with pytest.raises(NotImplementedError):
            db.seek_reverse(b"k")


@pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=120,
    ),
    bound=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reverse_equals_reversed_forward(engine, ops, bound):
    env = repro.Environment(cache_bytes=1 << 20)
    db = make_store(engine, env)
    for op, i in ops:
        key = b"k%02d" % i
        if op == "put":
            db.put(key, b"v%02d" % i)
        else:
            db.delete(key)
    bound_key = b"k%02d" % bound
    forward = [(k, v) for k, v in db.scan() if k <= bound_key]
    backward = list(db.scan_reverse(bound_key))
    assert backward == list(reversed(forward))

"""Snapshots: consistent read views pinned against compaction."""

import random

import pytest

import repro
from tests.conftest import LSM_ENGINES, make_store


@pytest.fixture
def env():
    return repro.Environment(cache_bytes=1 << 20)


class TestSnapshotReads:
    @pytest.mark.parametrize("engine", LSM_ENGINES)
    def test_snapshot_sees_frozen_state(self, engine, env):
        db = make_store(engine, env)
        db.put(b"k", b"v1")
        snap = db.get_snapshot()
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        assert db.get(b"k", snapshot=snap) == b"v1"
        db.release_snapshot(snap)

    def test_snapshot_hides_later_inserts_and_deletes(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"a", b"1")
        snap = db.get_snapshot()
        db.put(b"b", b"2")
        db.delete(b"a")
        assert db.get(b"a", snapshot=snap) == b"1"
        assert db.get(b"b", snapshot=snap) is None
        assert db.get(b"a") is None

    def test_snapshot_scan(self, env):
        db = make_store("pebblesdb", env)
        for i in range(10):
            db.put(b"k%02d" % i, b"old")
        snap = db.get_snapshot()
        for i in range(5, 15):
            db.put(b"k%02d" % i, b"new")
        frozen = dict(db.scan(snapshot=snap))
        assert len(frozen) == 10
        assert all(v == b"old" for v in frozen.values())
        live = dict(db.scan())
        assert live[b"k07"] == b"new" and len(live) == 15

    def test_seek_with_snapshot(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"a", b"1")
        snap = db.get_snapshot()
        db.put(b"aa", b"2")
        it = db.seek(b"a", snapshot=snap)
        assert it.key() == b"a"
        assert not it.next()
        it.close()


class TestSnapshotVsCompaction:
    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_versions_survive_full_compaction(self, engine, env):
        db = make_store(engine, env)
        rng = random.Random(1)
        keys = [b"key%05d" % rng.randrange(4000) for _ in range(1200)]
        for i, k in enumerate(keys):
            db.put(k, b"old%05d" % i)
        snap = db.get_snapshot()
        frozen = dict(db.scan(snapshot=snap))
        for i, k in enumerate(keys):
            db.put(k, b"new%05d" % i)
        db.force_full_compaction()
        db.check_invariants()
        assert dict(db.scan(snapshot=snap)) == frozen
        # Live reads see the new values.
        live = dict(db.scan())
        assert all(v.startswith(b"new") for v in live.values())
        db.release_snapshot(snap)

    def test_snapshot_pins_deleted_keys_through_compaction(self, env):
        db = make_store("pebblesdb", env)
        for i in range(500):
            db.put(b"k%04d" % i, b"v%04d" % i)
        snap = db.get_snapshot()
        for i in range(500):
            db.delete(b"k%04d" % i)
        db.force_full_compaction()
        assert db.get(b"k0123") is None
        assert db.get(b"k0123", snapshot=snap) == b"v0123"
        assert len(dict(db.scan(snapshot=snap))) == 500
        db.release_snapshot(snap)

    def test_release_allows_garbage_collection(self, env):
        db = make_store("pebblesdb", env)
        for i in range(800):
            db.put(b"k%04d" % i, b"x" * 64)
        snap = db.get_snapshot()
        for i in range(800):
            db.delete(b"k%04d" % i)
        db.force_full_compaction()
        pinned = sum(db.level_sizes())
        db.release_snapshot(snap)
        db.force_full_compaction()
        assert sum(db.level_sizes()) < pinned
        assert list(db.scan()) == []

    def test_double_release_harmless(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"k", b"v")
        snap = db.get_snapshot()
        db.release_snapshot(snap)
        db.release_snapshot(snap)

    def test_multiple_snapshots_layered(self, env):
        db = make_store("pebblesdb", env)
        db.put(b"k", b"v1")
        s1 = db.get_snapshot()
        db.put(b"k", b"v2")
        s2 = db.get_snapshot()
        db.put(b"k", b"v3")
        db.force_full_compaction()
        assert db.get(b"k", snapshot=s1) == b"v1"
        assert db.get(b"k", snapshot=s2) == b"v2"
        assert db.get(b"k") == b"v3"
        db.release_snapshot(s1)
        db.force_full_compaction()
        assert db.get(b"k", snapshot=s2) == b"v2"
        db.release_snapshot(s2)

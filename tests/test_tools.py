"""Command-line tools: dbbench CLI, store shell, RepairDB."""

import dataclasses
import io
import random

import pytest

import repro
from repro.engines.options import StoreOptions
from repro.tools.dbbench import main as dbbench_main
from repro.tools.repair import repair_store
from repro.tools.shell import StoreShell


class TestDbBenchCli:
    def test_default_run(self, capsys):
        rc = dbbench_main(["--num", "800", "--value-size", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fillrandom" in out
        assert "write amplification" in out

    def test_all_benchmarks(self, capsys):
        rc = dbbench_main(
            [
                "--engine",
                "hyperleveldb",
                "--num",
                "600",
                "--value-size",
                "64",
                "--benchmarks",
                "fillseq,fillrandom,overwrite,readrandom,seekrandom,"
                "rangequery,mixed,compact,deleterandom",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("fillseq", "overwrite", "rangequery50", "mixed", "compact"):
            assert name in out

    def test_unknown_benchmark_rejected(self, capsys):
        rc = dbbench_main(["--benchmarks", "flywheel"])
        assert rc == 2

    def test_hdd_device_slower(self, capsys):
        # Same workload on HDD vs SSD: HDD's simulated time must be larger.
        times = {}
        for device in ("hdd", "ssd-raid0"):
            dbbench_main(
                [
                    "--device",
                    device,
                    "--num",
                    "500",
                    "--value-size",
                    "256",
                    "--cache-mb",
                    "0.1",
                    "--benchmarks",
                    "fillrandom,readrandom",
                ]
            )
            out = capsys.readouterr().out
            times[device] = float(out.rsplit("sim time", 1)[1].split("s")[0])
        assert times["hdd"] > times["ssd-raid0"]


class TestShell:
    def run_shell(self, commands):
        out = io.StringIO()
        shell = StoreShell("pebblesdb", out=out)
        for line in commands:
            alive = shell.execute(line)
            if not alive:
                break
        return out.getvalue()

    def test_put_get_del(self):
        out = self.run_shell(["put color blue", "get color", "del color", "get color"])
        assert "blue" in out
        assert "(not found)" in out

    def test_scan_and_range(self):
        out = self.run_shell(
            ["put a 1", "put b 2", "put c 3", "scan", "range a b"]
        )
        assert "a -> 1" in out and "c -> 3" in out

    def test_stats_layout_compact(self):
        out = self.run_shell(["put k v", "flush", "compact", "stats", "layout", "time"])
        assert "amp" in out
        assert "Level 0" in out

    def test_crash_and_recover(self):
        out = self.run_shell(
            ["put durable yes", "flush", "crash", "get durable"]
        )
        assert "crashed and recovered" in out
        assert "yes" in out

    def test_unknown_command(self):
        out = self.run_shell(["frobnicate"])
        assert "unknown command" in out

    def test_quit_stops(self):
        out = io.StringIO()
        shell = StoreShell("pebblesdb", out=out)
        assert shell.execute("put a 1")
        assert not shell.execute("quit")

    def test_errors_do_not_kill_shell(self):
        out = self.run_shell(["put", "get onlykey stillalive extra", "put a 1", "get a"])
        assert "1" in out

    def test_stats_reports_health(self):
        out = self.run_shell(["put k v", "stats"])
        assert "health=ok" in out
        assert "compaction scheduler:" in out

    def test_property_lists_names(self):
        out = self.run_shell(["property"])
        assert "repro.health" in out
        assert "repro.guards" in out  # pebblesdb-specific extension

    def test_property_reads_value(self):
        out = self.run_shell(["put k v", "property repro.health"])
        assert "ok" in out

    def test_property_unknown_name(self):
        out = self.run_shell(["property repro.no-such-thing"])
        assert "(no such property)" in out


def _tiny(preset, **kw):
    base = StoreOptions.for_preset(preset)
    return dataclasses.replace(
        base,
        memtable_bytes=4 * 1024,
        level1_max_bytes=16 * 1024,
        target_file_bytes=8 * 1024,
        top_level_bits=6,
        bit_decrement=1,
        sync_writes=True,
        **kw,
    )


class TestRepair:
    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_repair_after_manifest_loss(self, engine):
        env = repro.Environment(cache_bytes=1 << 20)
        db = repro.open_store(engine, env.storage, options=_tiny(engine), prefix="db/")
        rng = random.Random(3)
        model = {}
        for i in range(1500):
            k = b"key%07d" % rng.randrange(10**6)
            v = b"v%05d" % i
            db.put(k, v)
            model[k] = v
        db.close()
        # Disaster: CURRENT and every MANIFEST vanish.
        for name in list(env.storage.list_files("db/")):
            base = name[3:]
            if base == "CURRENT" or base.startswith("MANIFEST-"):
                env.storage.delete(name)

        report = repair_store(env.storage, "db/")
        assert report.tables_recovered > 0
        assert report.last_sequence > 0

        db2 = repro.open_store(engine, env.storage, options=_tiny(engine), prefix="db/")
        assert dict(db2.scan()) == model
        db2.check_invariants()
        # The repaired store keeps working and compacting.
        db2.put(b"after-repair", b"ok")
        db2.compact_all()
        assert db2.get(b"after-repair") == b"ok"

    def test_repair_converts_wals(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        for i in range(40):  # small: stays in the WAL, never flushed
            db.put(b"wal%03d" % i, b"v%03d" % i)
        # Simulate losing the metadata without a clean close.
        for name in list(env.storage.list_files("db/")):
            base = name[3:]
            if base == "CURRENT" or base.startswith("MANIFEST-"):
                env.storage.delete(name)
        report = repair_store(env.storage, "db/")
        assert report.logs_converted >= 1
        assert report.entries_from_logs == 40
        db2 = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        assert db2.get(b"wal007") == b"v007"
        assert len(dict(db2.scan())) == 40

    def test_repair_quarantines_corrupt_table(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        for i in range(600):
            db.put(b"key%04d" % i, b"v" * 64)
        db.flush_memtable()
        db.close()
        tables = [n for n in env.storage.list_files("db/") if n.endswith(".sst")]
        assert tables
        victim = tables[0]
        acct = env.storage.foreground_account()
        env.storage.write_at(victim, env.storage.size(victim) - 6, b"\xde\xad", acct)
        for name in list(env.storage.list_files("db/")):
            base = name[3:]
            if base == "CURRENT" or base.startswith("MANIFEST-"):
                env.storage.delete(name)
        report = repair_store(env.storage, "db/")
        assert report.tables_corrupt == 1
        assert victim in report.corrupt_files
        assert env.storage.exists(victim + ".corrupt")
        db2 = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        db2.check_invariants()
        # Data from intact tables is still readable.
        assert len(dict(db2.scan())) > 0

    def test_repaired_store_resolves_versions_across_tables(self):
        """Everything lands in Level 0; newest version must still win."""
        env = repro.Environment(cache_bytes=1 << 20)
        db = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        for round_no in range(3):
            for i in range(300):
                db.put(b"key%03d" % i, b"round%d" % round_no)
            db.flush_memtable()
        db.close()
        for name in list(env.storage.list_files("db/")):
            base = name[3:]
            if base == "CURRENT" or base.startswith("MANIFEST-"):
                env.storage.delete(name)
        repair_store(env.storage, "db/")
        db2 = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        assert db2.get(b"key000") == b"round2"
        assert all(v == b"round2" for _, v in db2.scan())


class TestDumpTools:
    def _store(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        for i in range(500):
            db.put(b"key%05d" % i, b"value%05d" % i)
        db.delete(b"key00007")
        db.flush_memtable()
        db.wait_idle()
        return env, db

    def test_dump_sstable(self):
        from repro.tools.dump import dump_sstable

        env, db = self._store()
        table = [n for n in env.storage.list_files("db/") if n.endswith(".sst")][0]
        text = dump_sstable(env.storage, table, records=True, limit=5)
        assert "entries" in text and "bloom filter" in text
        assert "PUT key" in text
        assert "..." in text  # truncation marker

    def test_dump_manifest_shows_edits_and_guards(self):
        from repro.tools.dump import dump_manifest

        env, db = self._store()
        db.compact_all()
        manifest = [
            n for n in env.storage.list_files("db/") if "MANIFEST" in n
        ][0]
        text = dump_manifest(env.storage, manifest)
        assert "edit #0" in text
        assert "+ L0 file" in text
        if sum(db.guard_counts()):
            assert "guard" in text

    def test_dump_wal(self):
        from repro.tools.dump import dump_wal

        env = repro.Environment(cache_bytes=1 << 20)
        db = repro.open_store(
            "pebblesdb", env.storage, options=_tiny("pebblesdb"), prefix="db/"
        )
        db.put(b"alpha", b"1")
        db.delete(b"alpha")
        wal = [n for n in env.storage.list_files("db/") if n.endswith(".log")][0]
        text = dump_wal(env.storage, wal)
        assert "PUT alpha" in text
        assert "DEL alpha" in text

    def test_dump_store_overview(self):
        from repro.tools.dump import dump_store

        env, db = self._store()
        text = dump_store(env.storage, "db/")
        assert "CURRENT" in text and ".sst" in text


class TestDbBenchMultiEngine:
    def test_engine_all_compares(self, capsys):
        rc = dbbench_main(
            ["--engine", "pebblesdb,hyperleveldb", "--num", "300",
             "--value-size", "64", "--benchmarks", "fillrandom"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "===== pebblesdb =====" in out
        assert "===== hyperleveldb =====" in out

    def test_unknown_engine_rejected(self, capsys):
        assert dbbench_main(["--engine", "cassandra"]) == 2


class TestDbBenchJson:
    def test_json_has_latency_percentiles(self, capsys, tmp_path):
        import json

        path = tmp_path / "bench.json"
        rc = dbbench_main(
            ["--num", "500", "--value-size", "64",
             "--benchmarks", "fillrandom,readrandom,mixed",
             "--json", str(path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # Percentiles appear in the printed rows too.
        assert "p50" in out and "p99" in out
        payload = json.loads(path.read_text())
        (engine,) = payload["engines"]
        assert engine["engine"] == "pebblesdb"
        by_name = {p["name"]: p for p in engine["phases"]}
        for phase in ("fillrandom", "readrandom"):
            lat = by_name[phase]["latency_us"]
            assert lat["samples"] > 0
            assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        # The mixed phase also splits read/write percentiles out.
        assert "read_p50_us" in by_name["mixed"]["extra"]
        assert "write_p99_us" in by_name["mixed"]["extra"]
        assert engine["write_amplification"] > 0

    def test_json_multi_engine(self, tmp_path):
        import json

        path = tmp_path / "bench.json"
        rc = dbbench_main(
            ["--engine", "pebblesdb,hyperleveldb", "--num", "300",
             "--value-size", "64", "--benchmarks", "fillrandom",
             "--json", str(path)]
        )
        assert rc == 0
        payload = json.loads(path.read_text())
        assert [e["engine"] for e in payload["engines"]] == [
            "pebblesdb", "hyperleveldb"
        ]

"""Process serving mode: digest parity with loopback, worker crash and
restart, shard-subset servers, and the UNAVAILABLE retry mapping.

The differential tests drive operations *sequentially*, so every write
is its own group commit in both serving modes and the WAL byte streams
— hence the state digests — must match exactly.  Anything that needs a
worker process is marked with a module-local helper so a sandbox that
cannot spawn processes skips rather than fails.
"""

import asyncio
import multiprocessing
import os

import pytest

from repro.net.client import ClusterClient
from repro.net.errors import ServerUnavailableError
from repro.net.mp import ProcessKVServer, make_server
from repro.net.protocol import Op, Request, Status
from repro.net.server import KVServer, ServerConfig
from repro.workloads.distributions import KeyCodec, value_bytes

CODEC = KeyCodec(16)


def K(i):
    return CODEC.encode(i)


def V(i, size=64):
    return value_bytes(i, size)


def config(shards=2, num_keys=400, seed=7, **overrides):
    return ServerConfig(
        shards=shards,
        uniform_keys=num_keys,
        seed=seed,
        cache_bytes=1 << 20,
        **overrides,
    )


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Shard-subset servers (the worker building block, no processes needed)
# ----------------------------------------------------------------------
class TestShardSubset:
    def test_subset_keeps_global_identity(self):
        async def main():
            full = KVServer(config(shards=3))
            subset = KVServer(config(shards=3), shard_ids=[1])
            assert [s.index for s in subset.shards] == [1]
            # Same prefix and seed as the shard inside the full server.
            assert subset.shards[0].db is not full.shards[1].db
            ops = [K(i) for i in range(0, 300, 7)]
            for key in ops:
                full.shards[1].db.put(key, b"x" + key)
                subset.shards[0].db.put(key, b"x" + key)
            full.shards[1].db.wait_idle()
            subset.shards[0].db.wait_idle()
            assert subset.shards[0].state_digest() == full.shards[1].state_digest()
            await full.aclose()
            await subset.aclose()

        run(main())

    def test_unhosted_shard_answers_bad_shard(self):
        async def main():
            server = KVServer(config(shards=2), shard_ids=[0])
            client = await ClusterClient.open_loopback(server)
            # Direct request to the unhosted shard: BAD_SHARD, not a crash.
            from repro.net.errors import RemoteError

            with pytest.raises(RemoteError) as excinfo:
                await client._call(
                    Request(
                        op=Op.GET,
                        request_id=client._alloc_id(),
                        shard=1,
                        key=K(1),
                    )
                )
            assert excinfo.value.status == Status.BAD_SHARD
            await client.aclose()
            await server.aclose()

        run(main())

    def test_shard_ids_out_of_range_rejected(self):
        from repro.errors import InvalidArgumentError

        with pytest.raises(InvalidArgumentError):
            KVServer(config(shards=2), shard_ids=[5])


# ----------------------------------------------------------------------
# Differential: process mode vs loopback mode
# ----------------------------------------------------------------------
async def _drive_workload(server, ops=240, keys=96):
    """A seeded mixed workload, driven sequentially; returns everything
    a client can observe (get results, applied flags, scans)."""
    client = await ClusterClient.open_loopback(server)
    observed = []
    for i in range(ops):
        key = K((i * 13) % keys)
        observed.append(await client.put(key, V(i)))
        if i % 3 == 0:
            observed.append(await client.get(key))
        if i % 17 == 0:
            observed.append(await client.delete(K((i * 5) % keys)))
        if i % 40 == 0:
            observed.append(tuple(await client.scan(limit=20)))
    observed.append(tuple(await client.scan()))
    await server.wait_idle()
    digests = server.state_digests()
    totals = server.total_ops()
    await client.aclose()
    await server.aclose()
    return digests, observed, totals


class TestProcessModeDifferential:
    def test_digests_and_results_match_loopback(self):
        async def main():
            loop_digests, loop_obs, loop_totals = await _drive_workload(
                KVServer(config(shards=2, seed=21))
            )
            proc_digests, proc_obs, proc_totals = await _drive_workload(
                ProcessKVServer(config(shards=2, seed=21))
            )
            assert proc_digests == loop_digests  # byte-identical state
            assert proc_obs == loop_obs  # identical client-visible results
            assert proc_totals == loop_totals
            # Re-run process mode: process mode is self-deterministic too.
            again_digests, again_obs, _ = await _drive_workload(
                ProcessKVServer(config(shards=2, seed=21))
            )
            assert again_digests == proc_digests
            assert again_obs == proc_obs

        run(main())


# ----------------------------------------------------------------------
# Worker crash → UNAVAILABLE → restart/resume
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_crash_unavailable_restart_resume(self):
        async def main():
            # supervise=False: this test exercises the *manual* restart
            # path, so the auto-restart supervisor must stay out of it.
            server = ProcessKVServer(config(shards=2, supervise=False))
            client = await ClusterClient.open_loopback(
                server, max_retries=2, backoff_base=0.001, backoff_max=0.01
            )
            key = K(1)
            shard = None
            assert await client.put(key, b"before-crash")
            shard = client.router.shard_for(key)
            # Kill the worker process outright (simulates a crash).
            worker = server._workers[shard]
            worker.process.kill()
            worker.process.join(10)
            assert not server.worker_alive(shard)
            with pytest.raises(ServerUnavailableError):
                await client.get(key)
            assert client.stats.retries > 0  # UNAVAILABLE was retried
            # The other shard keeps serving while one is down.
            other_key = next(
                K(i) for i in range(400) if client.router.shard_for(K(i)) != shard
            )
            assert await client.put(other_key, b"other-shard-alive")
            assert await client.get(other_key) == b"other-shard-alive"
            # Restart: serving resumes and the replacement worker is
            # restored from the parent's durable ship log, so the write
            # acknowledged before the crash survives it.
            server.restart_shard(shard)
            assert server.worker_alive(shard)
            assert await client.get(key) == b"before-crash"
            assert await client.put(key, b"after-restart")
            assert await client.get(key) == b"after-restart"
            await client.aclose()
            await server.aclose()
            assert all(not w.alive for w in server._workers)

        run(main())

    def test_clean_shutdown_leaves_no_orphans(self):
        async def main():
            server = ProcessKVServer(config(shards=2))
            client = await ClusterClient.open_loopback(server)
            assert await client.put(K(2), b"v")
            assert await client.get(K(2)) == b"v"
            pids = [w.process.pid for w in server._workers]
            await client.aclose()
            await server.aclose()
            return pids

        pids = run(main())
        assert not multiprocessing.active_children()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


# ----------------------------------------------------------------------
# make_server dispatch
# ----------------------------------------------------------------------
class TestMakeServer:
    def test_modes(self):
        async def main():
            loop_server = make_server(config(shards=1))
            assert isinstance(loop_server, KVServer)
            await loop_server.aclose()
            proc_server = make_server(config(shards=1), serving_mode="process")
            assert isinstance(proc_server, ProcessKVServer)
            await proc_server.aclose()

        run(main())

    def test_unknown_mode_rejected(self):
        from repro.errors import InvalidArgumentError

        with pytest.raises(InvalidArgumentError):
            make_server(config(shards=1), serving_mode="threads")

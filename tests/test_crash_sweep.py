"""Systematic crash-point injection.

Runs a deterministic workload, then replays it crashing after the k-th
sync for a sweep of k values.  After each crash the store must recover to
a state consistent with some prefix of acknowledged operations — with a
synchronous WAL, to *exactly* the prefix that had been applied.
"""

import dataclasses
import random
from typing import Dict, Optional

import pytest

import repro
from repro.engines.options import StoreOptions
from tests.conftest import tiny_options


def _options(engine):
    return dataclasses.replace(tiny_options(engine), sync_writes=True)


def _workload_ops(n, seed=5):
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        key = b"key%04d" % rng.randrange(200)
        if rng.random() < 0.75:
            ops.append(("put", key, b"v%05d" % i))
        else:
            ops.append(("delete", key, b""))
    return ops


def _apply(db, op):
    kind, key, value = op
    if kind == "put":
        db.put(key, value)
    else:
        db.delete(key)


def _model_after(ops, count) -> Dict[bytes, bytes]:
    model: Dict[bytes, bytes] = {}
    for kind, key, value in ops[:count]:
        if kind == "put":
            model[key] = value
        else:
            model.pop(key, None)
    return model


class _CrashAfterNOps:
    """Runs ops until a target index, then simulates power failure."""

    def __init__(self, engine: str, ops, crash_after: int):
        self.env = repro.Environment(cache_bytes=1 << 20)
        self.engine = engine
        db = repro.open_store(engine, self.env.storage, options=_options(engine), prefix="db/")
        for op in ops[:crash_after]:
            _apply(db, op)
        self.env.storage.crash()

    def recover(self):
        return repro.open_store(
            self.engine, self.env.storage, options=_options(self.engine), prefix="db/"
        )


@pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
def test_crash_sweep_exact_prefix(engine):
    ops = _workload_ops(700)
    for crash_after in (0, 1, 3, 50, 199, 350, 501, 699, 700):
        run = _CrashAfterNOps(engine, ops, crash_after)
        db = run.recover()
        expected = _model_after(ops, crash_after)
        got = dict(db.scan())
        assert got == expected, (
            f"{engine}: crash after {crash_after} ops diverged "
            f"({len(got)} keys vs {len(expected)})"
        )
        db.check_invariants()
        # The recovered store must accept more writes and crash again
        # cleanly (sweep a second-level crash at a couple of points).
        db.put(b"post", b"crash")
        run.env.storage.crash()
        db2 = run.recover()
        expected[b"post"] = b"crash"
        assert dict(db2.scan()) == expected


def test_batch_atomicity_across_crash():
    """A write batch is one WAL record: after a crash it is all-or-nothing."""
    engine = "pebblesdb"
    from repro.util.keys import KIND_DELETE, KIND_PUT

    env = repro.Environment(cache_bytes=1 << 20)
    db = repro.open_store(engine, env.storage, options=_options(engine), prefix="db/")
    db.put(b"pivot", b"old")
    # The batch touches three keys, including a delete.
    db.write_batch(
        [
            (KIND_PUT, b"alpha", b"1"),
            (KIND_DELETE, b"pivot", b""),
            (KIND_PUT, b"omega", b"2"),
        ]
    )
    env.storage.crash()
    db2 = repro.open_store(engine, env.storage, options=_options(engine), prefix="db/")
    state = dict(db2.scan())
    applied = state == {b"alpha": b"1", b"omega": b"2"}
    not_applied = state == {b"pivot": b"old"}
    assert applied or not_applied, f"partial batch visible: {state}"
    # With sync_writes the batch was acknowledged, so it must be applied.
    assert applied


def test_unsynced_tail_is_all_or_nothing_per_batch():
    """Even without sync, recovery may only lose whole records."""
    from repro.util.keys import KIND_PUT

    engine = "pebblesdb"
    env = repro.Environment(cache_bytes=1 << 20)
    options = dataclasses.replace(tiny_options(engine), sync_writes=False)
    db = repro.open_store(engine, env.storage, options=options, prefix="db/")
    for i in range(50):
        db.write_batch(
            [(KIND_PUT, b"a%03d" % i, b"x"), (KIND_PUT, b"b%03d" % i, b"x")]
        )
    env.storage.crash()
    db2 = repro.open_store(engine, env.storage, options=options, prefix="db/")
    state = dict(db2.scan())
    for i in range(50):
        a, b = b"a%03d" % i in state, b"b%03d" % i in state
        assert a == b, f"batch {i} split across the crash boundary"

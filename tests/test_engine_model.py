"""Property-based equivalence: every engine vs. an in-memory model.

Random sequences of put/delete/get/scan must behave exactly like a dict +
sorted view, across flushes, compactions, and (for LSM engines) reopen.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from tests.conftest import ALL_ENGINES, LSM_ENGINES, make_store

KEYS = [b"k%02d" % i for i in range(40)]

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.binary(min_size=1, max_size=32)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("scan"), st.sampled_from(KEYS), st.just(b"")),
    ),
    max_size=120,
)


def apply_ops(db, ops):
    model = {}
    for op, key, value in ops:
        if op == "put":
            db.put(key, value)
            model[key] = value
        elif op == "delete":
            db.delete(key)
            model.pop(key, None)
        elif op == "get":
            assert db.get(key) == model.get(key)
        else:  # scan from key
            expected = sorted((k, v) for k, v in model.items() if k >= key)
            got = []
            it = db.seek(key)
            while it.valid:
                got.append((it.key(), it.value()))
                it.next()
            it.close()
            assert got == expected
    return model


@pytest.mark.parametrize("engine", ALL_ENGINES)
@given(ops=op_strategy)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_engine_matches_model(engine, ops):
    env = repro.Environment(cache_bytes=1 << 20)
    db = make_store(engine, env)
    model = apply_ops(db, ops)
    for key in KEYS:
        assert db.get(key) == model.get(key)
    if hasattr(db, "check_invariants"):
        db.check_invariants()


@pytest.mark.parametrize("engine", LSM_ENGINES)
def test_engine_matches_model_through_compaction(engine):
    """Longer deterministic run with forced compaction points."""
    env = repro.Environment(cache_bytes=1 << 20)
    db = make_store(engine, env)
    rng = random.Random(42)
    model = {}
    keyspace = [b"key%06d" % i for i in range(400)]
    for step in range(4000):
        key = rng.choice(keyspace)
        action = rng.random()
        if action < 0.65:
            value = b"v%06d" % step
            db.put(key, value)
            model[key] = value
        elif action < 0.8:
            db.delete(key)
            model.pop(key, None)
        else:
            assert db.get(key) == model.get(key), (engine, step, key)
        if step % 1500 == 1499:
            db.compact_all()
            db.check_invariants()
    assert dict(db.scan()) == model


@pytest.mark.parametrize("engine", LSM_ENGINES)
def test_model_equivalence_survives_reopen(engine):
    env = repro.Environment(cache_bytes=1 << 20)
    db = make_store(engine, env)
    rng = random.Random(9)
    model = {}
    for step in range(1200):
        key = b"key%05d" % rng.randrange(300)
        value = b"v%05d" % step
        db.put(key, value)
        model[key] = value
    db.close()
    db2 = make_store(engine, env)
    assert dict(db2.scan()) == model
    db2.check_invariants()

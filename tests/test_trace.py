"""Trace capture and replay."""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.errors import CorruptionError
from repro.workloads.trace import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SEEK,
    TracingStore,
    decode_trace,
    encode_trace,
    replay_trace,
)
from tests.conftest import make_store


class TestCodec:
    def test_roundtrip(self):
        ops = [
            (OP_PUT, b"k1", b"v1"),
            (OP_GET, b"k1", b""),
            (OP_DELETE, b"k1", b""),
            (OP_SEEK, b"k", b""),
        ]
        assert list(decode_trace(encode_trace(ops))) == ops

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([OP_PUT, OP_GET, OP_DELETE, OP_SEEK]),
                st.binary(min_size=1, max_size=16),
                st.binary(max_size=32),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, raw_ops):
        ops = [
            (op, key, value if op == OP_PUT else b"") for op, key, value in raw_ops
        ]
        assert list(decode_trace(encode_trace(ops))) == ops

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            encode_trace([(99, b"k", b"")])
        with pytest.raises(CorruptionError):
            list(decode_trace(b"\x63\x01k"))

    def test_truncated_rejected(self):
        data = encode_trace([(OP_PUT, b"key", b"value")])
        with pytest.raises(CorruptionError):
            list(decode_trace(data[:-2]))


class TestRecordReplay:
    def test_recorded_trace_replays_to_same_state(self):
        env_a = repro.Environment(cache_bytes=1 << 20)
        source = TracingStore(make_store("pebblesdb", env_a))
        for i in range(300):
            source.put(b"k%04d" % (i % 120), b"v%04d" % i)
        for i in range(0, 120, 7):
            source.delete(b"k%04d" % i)
        source.get(b"k0001")
        it = source.seek(b"k0050")
        it.close()

        env_b = repro.Environment(cache_bytes=1 << 20)
        target = make_store("hyperleveldb", env_b)
        result = replay_trace(source.encoded(), target, clock=env_b.clock)
        assert result.ops == len(source.ops)
        assert (result.puts, result.deletes, result.gets, result.seeks) == (
            300,
            18,
            1,
            1,
        )
        assert result.elapsed_seconds > 0
        assert dict(target.scan()) == dict(source.db.scan())

    def test_replay_with_seek_nexts(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        for i in range(50):
            db.put(b"k%02d" % i, b"v")
        trace = encode_trace([(OP_SEEK, b"k10", b"")])
        result = replay_trace(trace, db, seek_nexts=5)
        assert result.seeks == 1

    def test_cross_engine_comparison_same_trace(self):
        """The intended use: one trace, several engines, compare costs."""
        trace_env = repro.Environment(cache_bytes=1 << 20)
        recorder = TracingStore(make_store("pebblesdb", trace_env))
        for i in range(2500):
            recorder.put(b"key%05d" % ((i * 7919) % 2000), b"x" * 64)
        for i in range(200):
            recorder.get(b"key%05d" % ((i * 104729) % 2000))
        trace = recorder.encoded()

        amps = {}
        for engine in ("pebblesdb", "hyperleveldb"):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store(engine, env)
            replay_trace(trace, db, clock=env.clock)
            db.wait_idle()
            amps[engine] = db.stats().write_amplification
        assert amps["pebblesdb"] <= amps["hyperleveldb"]

"""Cross-cutting accounting invariants of the simulation."""

import random

import pytest

import repro
from repro.sim.device import DeviceModel
from tests.conftest import make_store


def fill(db, n, seed=0, value=128):
    rng = random.Random(seed)
    for i in range(n):
        db.put(b"key%08d" % rng.randrange(10**7), b"v" * value)


class TestTimeAccounting:
    def test_clock_monotonic_through_workload(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        last = env.now
        for i in range(500):
            db.put(b"k%05d" % i, b"v" * 64)
            assert env.now >= last
            last = env.now
        db.get(b"k00001")
        assert env.now > last

    def test_every_operation_costs_time(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        t0 = env.now
        db.put(b"k", b"v")
        t1 = env.now
        assert t1 > t0
        db.get(b"k")
        assert env.now > t1

    def test_thread_scale_speeds_up_cpu_bound_work(self):
        times = {}
        for threads in (1, 4):
            env = repro.Environment(cache_bytes=64 * 1024 * 1024)
            env.cpu.thread_scale = float(threads)
            db = make_store("pebblesdb", env)
            fill(db, 1500, seed=2)
            times[threads] = env.now
        assert times[4] < times[1]

    def test_cpu_accounting_unscaled(self):
        """The accounting dict records burned CPU, not timeline time."""
        env = repro.Environment()
        env.cpu.thread_scale = 4.0
        charged = env.cpu.charge("unit-test", 1.0)
        assert charged == 0.25
        assert env.cpu.accounting["unit-test"] == 1.0

    def test_hdd_workload_slower_than_ssd(self):
        times = {}
        for name, factory in (("ssd", DeviceModel.ssd_raid0), ("hdd", DeviceModel.hdd)):
            env = repro.Environment(device=factory(), cache_bytes=256 * 1024)
            db = make_store("hyperleveldb", env)
            fill(db, 1200, seed=3)
            for i in range(200):
                db.get(b"key%08d" % random.Random(4).randrange(10**7))
            times[name] = env.now
        assert times["hdd"] > 2 * times["ssd"]


class TestIoAccounting:
    def test_store_accounts_sum_to_storage_totals(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        fill(db, 1500, seed=5)
        db.compact_all()
        per_account = sum(env.storage.stats.written_by_account.values())
        assert per_account == env.storage.stats.bytes_written
        stats = db.stats()
        assert stats.device_bytes_written == per_account

    def test_write_breakdown_has_expected_categories(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        fill(db, 2000, seed=6)
        db.wait_idle()
        names = set(env.storage.stats.written_by_account)
        assert any("wal" in n for n in names)
        assert any("flush" in n for n in names)
        assert any("compaction" in n for n in names)

    def test_wal_io_roughly_matches_user_bytes(self):
        env = repro.Environment(cache_bytes=1 << 20)
        db = make_store("pebblesdb", env)
        fill(db, 1500, seed=7)
        stats = db.stats()
        wal = sum(
            v for n, v in env.storage.stats.written_by_account.items() if "wal" in n
        )
        # WAL = user bytes + per-record framing, so within ~2x.
        assert stats.user_bytes_written <= wal <= 2 * stats.user_bytes_written

    def test_reads_only_charged_on_cache_miss(self):
        env = repro.Environment(cache_bytes=64 * 1024 * 1024)  # everything cached
        db = make_store("pebblesdb", env)
        fill(db, 800, seed=8)
        db.compact_all()
        before = env.storage.stats.bytes_read
        for i in range(100):
            db.get(b"key%08d" % random.Random(9).randrange(10**7))
        # Compaction populated the cache; reads should be nearly free.
        assert env.storage.stats.bytes_read - before < 64 * 1024

    def test_aging_increases_time_not_bytes(self):
        results = {}
        for factor in (1.0, 1.5):
            env = repro.Environment(cache_bytes=1 << 20)
            env.storage.device.aging_factor = factor
            db = make_store("hyperleveldb", env)
            fill(db, 1200, seed=10)
            db.wait_idle()
            results[factor] = (env.now, db.stats().device_bytes_written)
        assert results[1.5][0] > results[1.0][0]  # slower
        # Aging shifts compaction timing (so byte totals drift slightly)
        # but must not systematically inflate IO.
        assert abs(results[1.5][1] - results[1.0][1]) < 0.25 * results[1.0][1]


class TestDeterminism:
    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_identical_runs_identical_everything(self, engine):
        outcomes = []
        for _ in range(2):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store(engine, env)
            fill(db, 1000, seed=11)
            db.compact_all()
            stats = db.stats()
            outcomes.append(
                (
                    env.now,
                    stats.device_bytes_written,
                    stats.device_bytes_read,
                    stats.stall_seconds,
                    tuple(db.sstable_file_numbers()),
                )
            )
        assert outcomes[0] == outcomes[1]

"""Skip list and memtable semantics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.memtable import Memtable, SkipList
from repro.util.keys import KIND_DELETE, KIND_PUT


class TestSkipList:
    def test_insert_get(self):
        sl = SkipList(seed=1)
        sl.insert(5, "five")
        sl.insert(1, "one")
        sl.insert(9, "nine")
        assert sl.get(5) == (True, "five")
        assert sl.get(2) == (False, None)
        assert len(sl) == 3

    def test_duplicate_rejected(self):
        sl = SkipList(seed=1)
        sl.insert(1, "a")
        with pytest.raises(ValueError):
            sl.insert(1, "b")

    def test_iteration_sorted(self):
        sl = SkipList(seed=2)
        values = random.Random(3).sample(range(10000), 500)
        for v in values:
            sl.insert(v, v)
        assert [k for k, _ in sl] == sorted(values)

    def test_seek_positions_at_ceiling(self):
        sl = SkipList(seed=1)
        for v in (10, 20, 30):
            sl.insert(v, v)
        assert next(sl.seek(15))[0] == 20
        assert next(sl.seek(20))[0] == 20
        assert list(sl.seek(31)) == []

    def test_first(self):
        sl = SkipList(seed=1)
        assert sl.first() is None
        sl.insert(7, "x")
        assert sl.first() == (7, "x")

    @given(st.sets(st.integers(min_value=0, max_value=10**6), max_size=300))
    @settings(max_examples=30)
    def test_matches_sorted_reference(self, values):
        sl = SkipList(seed=7)
        for v in values:
            sl.insert(v, str(v))
        assert [k for k, _ in sl] == sorted(values)
        for probe in list(values)[:20]:
            assert sl.get(probe) == (True, str(probe))


class TestMemtable:
    def test_put_get(self):
        mt = Memtable(seed=1)
        mt.put(1, b"k", b"v1")
        result = mt.get(b"k")
        assert (result.found, result.value) == (True, b"v1")

    def test_newest_version_wins(self):
        mt = Memtable(seed=1)
        mt.put(1, b"k", b"old")
        mt.put(5, b"k", b"new")
        assert mt.get(b"k").value == b"new"

    def test_snapshot_sees_old_version(self):
        mt = Memtable(seed=1)
        mt.put(1, b"k", b"old")
        mt.put(5, b"k", b"new")
        assert mt.get(b"k", snapshot=3).value == b"old"
        assert mt.get(b"k", snapshot=0).found is False

    def test_tombstone_reported(self):
        mt = Memtable(seed=1)
        mt.put(1, b"k", b"v")
        mt.delete(2, b"k")
        result = mt.get(b"k")
        assert result.found and result.is_deleted

    def test_iteration_order_and_max_sequence(self):
        mt = Memtable(seed=1)
        mt.put(3, b"b", b"1")
        mt.put(7, b"a", b"2")
        mt.delete(9, b"b")
        entries = list(mt)
        assert [(e[0].user_key, e[0].sequence) for e in entries] == [
            (b"a", 7),
            (b"b", 9),
            (b"b", 3),
        ]
        assert entries[1][0].kind == KIND_DELETE
        assert mt.max_sequence == 9

    def test_approximate_bytes_grows(self):
        mt = Memtable(seed=1)
        before = mt.approximate_bytes
        mt.put(1, b"key", b"x" * 100)
        assert mt.approximate_bytes > before + 100

    def test_seek_starts_at_user_key(self):
        mt = Memtable(seed=1)
        mt.put(1, b"apple", b"1")
        mt.put(2, b"banana", b"2")
        first = next(mt.seek(b"b"))
        assert first[0].user_key == b"banana"

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([KIND_PUT, KIND_DELETE]),
                st.binary(min_size=1, max_size=4),
                st.binary(max_size=8),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=30)
    def test_model_equivalence(self, ops):
        mt = Memtable(seed=5)
        model = {}
        for seq, (kind, key, value) in enumerate(ops, start=1):
            if kind == KIND_PUT:
                mt.put(seq, key, value)
                model[key] = value
            else:
                mt.delete(seq, key)
                model[key] = None
        for key, expected in model.items():
            result = mt.get(key)
            assert result.found
            if expected is None:
                assert result.is_deleted
            else:
                assert result.value == expected

"""Fault injection end to end: the injector, storage semantics, messy
crash modes, and the engines' background-error state machine.

The headline invariants, mirroring the acceptance bar of RocksDB-style
fault testing:

* a fixed :class:`FaultPlan` yields the identical fault sequence on
  every run (determinism);
* a store under faults NEVER serves wrong data — every read either
  returns a model-consistent value or raises;
* persistent background failures degrade the store to read-only (writes
  raise :class:`BackgroundError`, reads keep serving) and ``resume()``
  restores write service once the cause is gone.
"""

import dataclasses
import random

import pytest

import repro
from repro.errors import (
    BackgroundError,
    CorruptionError,
    PersistentIOError,
    ReproError,
    StorageError,
    TransientIOError,
)
from repro.sim.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sim.storage import SimulatedStorage
from tests.conftest import make_store, tiny_options


# ======================================================================
# The injector itself
# ======================================================================
class TestFaultPlanParsing:
    def test_from_string_single_spec(self):
        plan = FaultPlan.from_string("transient:sync:db/*.log:at=5")
        (spec,) = plan.specs
        assert spec.kind == "transient"
        assert spec.op == "sync"
        assert spec.name_pattern == "db/*.log"
        assert spec.at_op == 5
        assert spec.times == 1

    def test_from_string_multi_spec_with_extras(self):
        plan = FaultPlan.from_string(
            "transient:*:*:p=0.001;persistent:rename:*:at=2;"
            "transient:append:db/*.sst:at=0:times=3:torn=0.5"
        )
        assert len(plan.specs) == 3
        assert plan.specs[0].probability == 0.001
        assert plan.specs[0].times is None
        assert plan.specs[1].kind == "persistent"
        assert plan.specs[2].times == 3
        assert plan.specs[2].torn_fraction == 0.5

    @pytest.mark.parametrize(
        "text",
        [
            "transient:sync:db/*",  # missing trigger
            "transient:sync:db/*:sometimes",  # bad trigger
            "mysterious:sync:db/*:at=1",  # bad kind
            "transient:mmap:db/*:at=1",  # bad op
            "transient:sync:db/*:at=1:bogus=2",  # bad extra
        ],
    )
    def test_from_string_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            FaultPlan.from_string(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(torn_fraction=-0.1)


class TestFaultInjector:
    def test_fail_nth_fires_exactly_once(self):
        inj = FaultInjector(FaultPlan.fail_nth(2, op="sync"))
        fired = []
        for i in range(6):
            fault = inj.poll("sync", "f")
            if fault is not None:
                fired.append(i)
        assert fired == [2]
        assert inj.stats.ops_seen == 6
        assert inj.stats.faults_injected == 1
        assert inj.stats.by_op == {"sync": 1}

    def test_match_counting_is_per_spec_and_filtered(self):
        inj = FaultInjector(FaultPlan.fail_nth(1, op="append", name_pattern="a*"))
        assert inj.poll("sync", "a1") is None  # op mismatch: not counted
        assert inj.poll("append", "b1") is None  # name mismatch: not counted
        assert inj.poll("append", "a1") is None  # match #0
        assert inj.poll("append", "a2") is not None  # match #1 fires

    def test_probabilistic_is_deterministic_per_seed(self):
        def firing_indexes(seed):
            inj = FaultInjector(FaultPlan.probabilistic(0.3, seed=seed))
            return [i for i in range(200) if inj.poll("read", "f") is not None]

        assert firing_indexes(7) == firing_indexes(7)
        assert firing_indexes(7) != firing_indexes(8)

    def test_times_caps_probabilistic_firings(self):
        inj = FaultInjector(FaultPlan.probabilistic(1.0, times=2))
        fired = sum(1 for _ in range(10) if inj.poll("read", "f") is not None)
        assert fired == 2

    def test_suppressed_spec_keeps_its_times_budget(self):
        """When two specs land on the same operation only the raised one
        consumes its ``times`` budget; the suppressed spec still fires on
        a later matching operation instead of being silently swallowed."""
        inj = FaultInjector(
            FaultPlan([FaultSpec(op="sync", at_op=0), FaultSpec(op="sync", at_op=0)])
        )
        first = inj.poll("sync", "f")
        assert first is not None and first.spec is inj.plan.specs[0]
        second = inj.poll("sync", "f")
        assert second is not None and second.spec is inj.plan.specs[1]
        assert inj.poll("sync", "f") is None  # both budgets spent

    def test_check_raises_kind_specific_errors(self):
        inj = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(op="sync", at_op=0),
                    FaultSpec(op="rename", at_op=0, kind="persistent"),
                ]
            )
        )
        with pytest.raises(TransientIOError):
            inj.check("sync", "f")
        with pytest.raises(PersistentIOError):
            inj.check("rename", "f")


# ======================================================================
# Storage-level semantics
# ======================================================================
class TestStorageFaults:
    def _storage(self, plan):
        return SimulatedStorage(faults=FaultInjector(plan))

    def test_failed_append_is_atomic(self):
        storage = self._storage(FaultPlan.fail_nth(0, op="append"))
        acct = storage.foreground_account()
        storage.create("f")
        with pytest.raises(TransientIOError):
            storage.append("f", b"x" * 100, acct)
        assert storage.size("f") == 0
        storage.append("f", b"x" * 100, acct)  # times=1: works again
        assert storage.size("f") == 100

    def test_torn_append_writes_prefix(self):
        storage = self._storage(
            FaultPlan.fail_nth(0, op="append", torn_fraction=0.25)
        )
        acct = storage.foreground_account()
        storage.create("f")
        with pytest.raises(TransientIOError):
            storage.append("f", b"y" * 100, acct)
        assert storage.size("f") == 25

    def test_failed_sync_leaves_durability_boundary(self):
        storage = self._storage(FaultPlan.fail_nth(0, op="sync"))
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"z" * 64, acct)
        with pytest.raises(TransientIOError):
            storage.sync("f", acct)
        assert storage.synced_size("f") == 0
        storage.crash()
        assert not storage.exists("f")  # never durable

    def test_failed_rename_mutates_nothing(self):
        storage = self._storage(FaultPlan.fail_nth(0, op="rename"))
        acct = storage.foreground_account()
        storage.create("old")
        storage.append("old", b"q", acct)
        with pytest.raises(TransientIOError):
            storage.rename("old", "new")
        assert storage.exists("old") and not storage.exists("new")

    def test_read_faults_fire_identically_with_charge_read(self):
        """charge_read (decoded-cache hits) consults the injector at the
        same op index a raw read would — memoization never moves faults."""

        def run(use_charge):
            storage = self._storage(FaultPlan.fail_nth(3, op="read"))
            acct = storage.foreground_account()
            storage.create("f")
            storage.append("f", b"d" * 64, acct)
            failures = []
            for i in range(6):
                try:
                    if use_charge:
                        storage.charge_read("f", 0, 8, acct)
                    else:
                        storage.read("f", 0, 8, acct)
                except TransientIOError:
                    failures.append(i)
            return failures

        assert run(True) == run(False) == [3]


class TestCrashModes:
    def _prepared(self):
        storage = SimulatedStorage()
        acct = storage.foreground_account()
        storage.create("f")
        storage.append("f", b"D" * 100, acct)
        storage.sync("f", acct)
        storage.append("f", b"U" * 60, acct)  # unsynced tail
        return storage, acct

    def test_unknown_mode_rejected(self):
        storage, _ = self._prepared()
        with pytest.raises(StorageError):
            storage.crash(mode="meteor")

    def test_torn_keeps_a_prefix_of_the_tail(self):
        storage, acct = self._prepared()
        storage.crash(mode="torn", seed=3)
        size = storage.size("f")
        assert 100 <= size <= 160
        data = storage.read("f", 0, size, acct)
        assert data[:100] == b"D" * 100
        assert data[100:] == b"U" * (size - 100)  # surviving prefix intact

    def test_garbage_scrambles_only_the_tail(self):
        for seed in range(8):
            storage, acct = self._prepared()
            storage.crash(mode="garbage", seed=seed)
            size = storage.size("f")
            data = storage.read("f", 0, size, acct)
            assert data[:100] == b"D" * 100  # durable region untouched
            if size > 100:
                break
        else:
            pytest.fail("no seed kept a garbage tail")

    def test_bitflip_damages_exactly_one_synced_bit(self):
        storage, acct = self._prepared()
        storage.crash(mode="bitflip", seed=1)
        assert storage.size("f") == 100  # tail truncated as in clean mode
        data = storage.read("f", 0, 100, acct)
        flipped = [i for i, b in enumerate(data) if b != ord("D")]
        assert len(flipped) == 1
        assert bin(data[flipped[0]] ^ ord("D")).count("1") == 1


# ======================================================================
# Engine state machine: foreground failures
# ======================================================================
def _attach(env, plan):
    env.storage.set_fault_injector(FaultInjector(plan))


def _detach(env):
    env.storage.set_fault_injector(None)


class TestForegroundWalFaults:
    def test_wal_sync_failure_fails_the_write_cleanly(self, env):
        db = make_store("pebblesdb", env, sync_writes=True)
        db.put(b"before", b"1")
        _attach(env, FaultPlan.fail_nth(0, op="sync", name_pattern="db/*.log"))
        with pytest.raises(TransientIOError):
            db.put(b"victim", b"2")
        assert not db.is_degraded  # foreground failure, not a background one
        _detach(env)
        db.put(b"after", b"3")
        env.storage.crash()
        db2 = make_store("pebblesdb", env, sync_writes=True)
        got = dict(db2.scan())
        assert got == {b"before": b"1", b"after": b"3"}

    def test_wal_append_failure_sweep_recovers_exact_ack_prefix(self, env):
        """Fail the k-th WAL append for a sweep of k: recovery must show
        exactly the acknowledged writes, never the failed one."""
        for k in (0, 1, 5, 17):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, sync_writes=True)
            _attach(
                env,
                FaultPlan.fail_nth(
                    k, op="append", name_pattern="db/*.log", torn_fraction=0.6
                ),
            )
            model = {}
            for i in range(25):
                key, value = b"k%03d" % i, b"v%03d" % i
                try:
                    db.put(key, value)
                    model[key] = value
                except TransientIOError:
                    pass
            env.storage.crash()
            _detach(env)
            db2 = make_store("pebblesdb", env, sync_writes=True)
            assert dict(db2.scan()) == model, f"diverged for k={k}"
            db2.check_invariants()

    @pytest.mark.parametrize(
        "plan",
        [
            # Record fully lands, only its sync fails.
            FaultPlan.fail_nth(0, op="sync", name_pattern="db/*.log"),
            # The whole record lands as a "torn" prefix.
            FaultPlan.fail_nth(
                0, op="append", name_pattern="db/*.log", torn_fraction=1.0
            ),
        ],
        ids=["sync-fails", "fully-torn"],
    )
    def test_landed_failed_record_never_shadows_acknowledged_write(self, plan):
        """A WAL record that lands despite a failed write is a phantom: it
        may replay at recovery, so its sequence numbers must be burned.
        Were a later acknowledged write to reuse them, replay would apply
        the phantom first and skip the acknowledged record as a duplicate,
        silently replacing acknowledged data with the failed payload."""
        for seed in range(8):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, sync_writes=True)
            db.put(b"k", b"old")
            _attach(env, plan)
            with pytest.raises(TransientIOError):
                db.put(b"k", b"phantom")  # bytes landed, write failed
            _detach(env)
            db.put(b"k", b"acknowledged")
            # A torn crash may keep any prefix of the abandoned WAL's
            # unsynced tail — including the complete phantom record.
            env.storage.crash(mode="torn", seed=seed)
            db2 = make_store("pebblesdb", env, sync_writes=True)
            assert db2.get(b"k") == b"acknowledged", f"seed={seed}"
            db2.check_invariants()


# ======================================================================
# Engine state machine: background failures, degrade, resume
# ======================================================================
def _fill(db, n, start=0):
    model = {}
    for i in range(start, start + n):
        key, value = b"key%04d" % i, b"val%05d" % i
        db.put(key, value)
        model[key] = value
    return model


class TestBackgroundFaults:
    def test_transient_sstable_fault_is_retried(self, env):
        db = make_store("pebblesdb", env)
        _attach(
            env,
            FaultPlan.fail_nth(0, op="append", name_pattern="db/*.sst", times=2),
        )
        model = _fill(db, 400)
        db.flush_memtable()
        db.wait_idle()
        stats = db.stats()
        assert stats.transient_fault_retries >= 1
        assert not db.is_degraded
        assert stats.background_errors == 0
        for key, value in list(model.items())[:50]:
            assert db.get(key) == value

    @pytest.mark.parametrize("engine", ["pebblesdb", "hyperleveldb"])
    def test_persistent_flush_fault_degrades_then_resumes(self, engine, env):
        db = make_store(engine, env)
        model = _fill(db, 120)
        _attach(
            env,
            FaultPlan.fail_nth(
                0, op="append", name_pattern="db/*.sst", kind="persistent"
            ),
        )
        accepted = dict(model)
        # Keep writing until the sticky error surfaces on the write path.
        for i in range(5000):
            key, value = b"pressure%05d" % i, b"x%05d" % i
            try:
                db.put(key, value)
                accepted[key] = value
            except BackgroundError:
                break
        assert db.is_degraded
        assert db.get_property("repro.health").split()[0] == "degraded"
        assert "fault" in db.get_property("repro.background-error")
        stats = db.stats()
        assert stats.degraded and stats.background_errors == 1
        # Reads keep serving every acknowledged write.
        for key, value in list(accepted.items())[:80]:
            assert db.get(key) == value
        with pytest.raises(BackgroundError):
            db.put(b"rejected", b"x")
        # Cause removed: resume restores write service.
        _detach(env)
        assert db.resume() is True
        assert not db.is_degraded
        assert db.get_property("repro.health").split()[0] == "ok"
        assert db.stats().resumes == 1
        db.put(b"post-resume", b"ok")
        db.flush_memtable()
        db.wait_idle()
        assert db.get(b"post-resume") == b"ok"
        db.check_invariants()

    def test_resume_fails_and_stays_degraded_while_cause_persists(self, env):
        db = make_store("pebblesdb", env)
        _fill(db, 120)
        _attach(
            env,
            FaultPlan(
                [
                    FaultSpec(
                        op="append",
                        name_pattern="db/*.sst",
                        kind="persistent",
                        at_op=0,
                        times=None,
                    )
                ]
            ),
        )
        with pytest.raises(BackgroundError):
            for i in range(5000):
                db.put(b"p%05d" % i, b"x")
        assert db.is_degraded
        # resume() must not lie while the device still fails.
        db.resume()
        assert db.get(b"key0000") == b"val00000"
        _detach(env)
        assert db.resume() is True
        db.put(b"healed", b"yes")
        assert db.get(b"healed") == b"yes"

    def test_manifest_fault_queues_edits_and_resume_rotates(self, env):
        db = make_store("pebblesdb", env)
        model = _fill(db, 150)
        _attach(
            env,
            FaultPlan.fail_nth(
                0, op="append", name_pattern="db/MANIFEST-*", kind="persistent"
            ),
        )
        db.flush_memtable()
        db.wait_idle()
        assert db.is_degraded
        for key, value in list(model.items())[:40]:
            assert db.get(key) == value
        _detach(env)
        assert db.resume() is True
        # The rotated MANIFEST + retained WALs must survive a crash.
        db.put(b"tail", b"t")
        db.flush_memtable()
        db.wait_idle()
        env.storage.crash()
        db2 = make_store("pebblesdb", env)
        model[b"tail"] = b"t"
        assert dict(db2.scan()) == model
        db2.check_invariants()

    def test_rotated_manifest_number_survives_crash(self, env):
        """The file number allocated for a rotated MANIFEST must stay
        covered by the persisted counter across a crash: were the counter
        to fall below the live MANIFEST's number, a later rotation could
        re-allocate it and append onto the live file, duplicating every
        edit at the next recovery."""

        def degrade_and_resume(db):
            _attach(
                env,
                FaultPlan(
                    [
                        FaultSpec(
                            op="append",
                            name_pattern="db/MANIFEST-*",
                            kind="persistent",
                            at_op=0,
                            times=None,
                        )
                    ]
                ),
            )
            db.flush_memtable()
            db.wait_idle()
            assert db.is_degraded
            # A resume attempt while the device still fails burns a file
            # number for the MANIFEST it could not write, so the eventual
            # successful rotation gets a number no surviving .sst/.log
            # name accounts for.
            assert db.resume() is False
            _detach(env)
            assert db.resume() is True  # rotates to a freshly numbered MANIFEST

        db = make_store("pebblesdb", env, sync_writes=True)
        model = _fill(db, 60)
        degrade_and_resume(db)
        env.storage.crash()
        db2 = make_store("pebblesdb", env, sync_writes=True)
        live = max(
            int(name.rsplit("MANIFEST-", 1)[1])
            for name in env.storage.list_files("db/")
            if "MANIFEST-" in name
        )
        assert db2._next_file_number > live
        # A second faulted rotation after the crash must land in a fresh
        # file, and the doubly-rotated state must survive another crash.
        model.update(_fill(db2, 60, start=1000))
        degrade_and_resume(db2)
        env.storage.crash()
        db3 = make_store("pebblesdb", env, sync_writes=True)
        assert dict(db3.scan()) == model
        db3.check_invariants()

    def test_degraded_store_keeps_files_needed_after_crash(self, env):
        """Crashing while degraded (before resume) must still recover every
        acknowledged write: un-persisted edits keep their WALs/inputs."""
        db = make_store("pebblesdb", env, sync_writes=True)
        model = _fill(db, 60)
        _attach(
            env,
            FaultPlan.fail_nth(
                0, op="append", name_pattern="db/MANIFEST-*", kind="persistent"
            ),
        )
        db.flush_memtable()
        db.wait_idle()
        assert db.is_degraded
        _detach(env)
        env.storage.crash()
        db2 = make_store("pebblesdb", env, sync_writes=True)
        assert dict(db2.scan()) == model
        db2.check_invariants()


class TestGuardParallelFaults:
    """The background-error state machine with multiple guard compactions
    in flight: faults land on one job's timeline while others proceed."""

    def _fill_fat(self, db, n, start=0):
        model = {}
        for i in range(start, start + n):
            key = b"key%04d" % ((i * 37) % 900)
            value = (b"val%05d" % i) * 16
            db.put(key, value)
            model[key] = value
        return model

    @pytest.mark.parametrize("workers", [1, 4])
    def test_transient_fault_with_parallel_jobs_is_retried(self, env, workers):
        db = make_store("pebblesdb", env, background_workers=workers)
        _attach(
            env,
            FaultPlan.fail_nth(20, op="append", name_pattern="db/*.sst", times=3),
        )
        model = self._fill_fat(db, 700)
        db.flush_memtable()
        db.wait_idle()
        stats = db.stats()
        assert stats.transient_fault_retries >= 1
        assert not db.is_degraded
        assert stats.background_errors == 0
        if workers > 1:
            # Faults on one job's timeline never serialized the others.
            assert stats.compactions_parallel_peak >= 2
        for key, value in list(model.items())[:60]:
            assert db.get(key) == value
        db.check_invariants()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_persistent_fault_degrades_and_resumes_under_parallelism(
        self, env, workers
    ):
        db = make_store("pebblesdb", env, background_workers=workers)
        model = self._fill_fat(db, 250)
        db.wait_idle()
        _attach(
            env,
            FaultPlan.fail_nth(
                5, op="append", name_pattern="db/*.sst", kind="persistent"
            ),
        )
        accepted = dict(model)
        for i in range(8000):
            key, value = b"pressure%05d" % i, (b"x%05d" % i) * 8
            try:
                db.put(key, value)
                accepted[key] = value
            except BackgroundError:
                break
        assert db.is_degraded
        # Whatever jobs were in flight when the error stuck, the conflict
        # map must be fully drained — nothing leaks a claim.
        prop = db.get_property("repro.compaction-scheduler")
        assert "inflight=0" in prop
        for key, value in list(accepted.items())[:60]:
            assert db.get(key) == value
        _detach(env)
        assert db.resume() is True
        assert not db.is_degraded
        db.put(b"post-resume", b"ok")
        db.flush_memtable()
        db.wait_idle()
        assert db.get(b"post-resume") == b"ok"
        db.check_invariants()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_crash_with_jobs_in_flight_recovers_acknowledged_state(
        self, env, workers
    ):
        db = make_store(
            "pebblesdb", env, background_workers=workers, sync_writes=True
        )
        model = self._fill_fat(db, 400)
        # Crash mid-schedule: compactions are still pending/in flight.
        env.storage.crash()
        db2 = make_store(
            "pebblesdb", env, background_workers=workers, sync_writes=True
        )
        assert dict(db2.scan()) == model
        db2.check_invariants()

    def test_degraded_parallel_store_survives_crash_before_resume(self, env):
        db = make_store(
            "pebblesdb", env, background_workers=4, sync_writes=True
        )
        model = self._fill_fat(db, 250)
        _attach(
            env,
            FaultPlan.fail_nth(
                0, op="append", name_pattern="db/MANIFEST-*", kind="persistent"
            ),
        )
        db.flush_memtable()
        db.wait_idle()
        assert db.is_degraded
        _detach(env)
        env.storage.crash()
        db2 = make_store(
            "pebblesdb", env, background_workers=4, sync_writes=True
        )
        assert dict(db2.scan()) == model
        db2.check_invariants()


class TestBtreeFaults:
    def test_torn_journal_append_degrades_then_resumes(self, env):
        db = make_store("btree", env)
        model = _fill(db, 40)
        _attach(
            env,
            FaultPlan.fail_nth(
                0, op="append", name_pattern="db/journal.log", torn_fraction=0.5
            ),
        )
        with pytest.raises(TransientIOError):
            db.put(b"torn", b"x")
        assert db.is_degraded  # bytes landed: the journal tail is suspect
        for key, value in list(model.items())[:10]:
            assert db.get(key) == value
        with pytest.raises(BackgroundError):
            db.put(b"blocked", b"x")
        _detach(env)
        assert db.resume() is True
        assert db.stats().resumes == 1
        db.put(b"healed", b"yes")
        model[b"healed"] = b"yes"
        # The checkpoint journal must recover the full state after a crash
        # (close syncs the journal tail, making the put durable).
        db.close()
        env.storage.crash()
        db2 = make_store("btree", env)
        got = {}
        with db2.seek(b"\x00") as it:
            while it.valid:
                got[it.key()] = it.value()
                it.next()
        assert got == model
        db2.check_invariants()

    def test_clean_journal_failure_is_retryable_not_sticky(self, env):
        db = make_store("btree", env)
        _attach(
            env,
            FaultPlan.fail_nth(0, op="append", name_pattern="db/journal.log"),
        )
        with pytest.raises(TransientIOError):
            db.put(b"a", b"1")
        assert not db.is_degraded  # nothing landed: clean foreground error
        db.put(b"a", b"1")
        assert db.get(b"a") == b"1"


# ======================================================================
# Messy-crash recovery sweeps
# ======================================================================
def _workload(db, ops):
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            db.put(key, value)
            model[key] = value
        else:
            db.delete(key)
            model.pop(key, None)
    return model


def _ops(n, seed):
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        key = b"key%03d" % rng.randrange(120)
        if rng.random() < 0.8:
            ops.append(("put", key, b"v%04d" % i))
        else:
            ops.append(("delete", key, b""))
    return ops


def _prefix_models(ops):
    model, models = {}, [{}]
    for kind, key, value in ops:
        if kind == "put":
            model[key] = value
        else:
            model.pop(key, None)
        models.append(dict(model))
    return models


class TestMessyCrashRecovery:
    @pytest.mark.parametrize("mode", ["torn", "garbage"])
    def test_unsynced_tail_damage_recovers_to_a_prefix(self, mode):
        """Without sync, a torn/garbage tail may lose a suffix of writes —
        but recovery must land exactly on a prefix of the op stream."""
        ops = _ops(250, seed=13)
        models = _prefix_models(ops)
        for seed in (1, 2, 3):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, sync_writes=False)
            _workload(db, ops)
            env.storage.crash(mode=mode, seed=seed)
            db2 = make_store("pebblesdb", env, sync_writes=False)
            got = dict(db2.scan())
            assert got in models, f"{mode}/seed={seed}: not a prefix state"
            db2.check_invariants()

    @pytest.mark.parametrize("mode", ["torn", "garbage"])
    def test_synced_writes_survive_tail_damage_exactly(self, mode):
        ops = _ops(120, seed=29)
        for seed in (1, 2):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, sync_writes=True)
            model = _workload(db, ops)
            env.storage.crash(mode=mode, seed=seed)
            # Tail damage never reaches below the durability boundary, so
            # strict recovery succeeds and loses nothing.
            db2 = make_store("pebblesdb", env, sync_writes=True)
            assert dict(db2.scan()) == model
            db2.check_invariants()

    def test_bitflip_crash_never_serves_wrong_data(self):
        for seed in range(6):
            env = repro.Environment(cache_bytes=1 << 20)
            db = make_store("pebblesdb", env, sync_writes=True)
            model = _workload(db, _ops(160, seed=41))
            db.flush_memtable()
            db.wait_idle()
            env.storage.crash(mode="bitflip", seed=seed)
            try:
                db2 = make_store("pebblesdb", env, sync_writes=True)
            except (CorruptionError, StorageError):
                continue  # detected at recovery: acceptable
            try:
                for key, value in db2.scan():
                    assert model.get(key) == value, (
                        f"seed={seed}: silent corruption {key!r}->{value!r}"
                    )
            except CorruptionError:
                pass  # detected at read time: acceptable


# ======================================================================
# Chaos: probabilistic faults everywhere, wrong answers never
# ======================================================================
class TestChaosNeverWrong:
    def test_probabilistic_fault_storm(self):
        plan = FaultPlan.probabilistic(0.01, seed=5)
        env = repro.Environment(cache_bytes=1 << 20, faults=FaultInjector(plan))
        db = make_store("pebblesdb", env, sync_writes=True)
        rng = random.Random(99)
        model = {}
        for i in range(600):
            key = b"key%03d" % rng.randrange(150)
            value = b"v%05d" % i
            try:
                db.put(key, value)
                model[key] = value
            except ReproError:
                continue  # unacknowledged or degraded: model unchanged
        # Every read is either faulted, or exactly right.
        hits = 0
        for key, value in model.items():
            try:
                got = db.get(key)
            except ReproError:
                continue
            assert got == value
            hits += 1
        assert hits > 0
        # After the storm passes, the store either resumes or was never
        # degraded — and then serves everything.
        _detach(env)
        assert db.resume() is True
        for key, value in model.items():
            assert db.get(key) == value
        db.check_invariants()

    def test_fault_storm_is_deterministic(self):
        def run():
            plan = FaultPlan.probabilistic(0.02, seed=17)
            env = repro.Environment(cache_bytes=1 << 20, faults=FaultInjector(plan))
            db = make_store("pebblesdb", env, sync_writes=True)
            outcomes = []
            for i in range(300):
                try:
                    db.put(b"k%04d" % i, b"v")
                    outcomes.append(1)
                except ReproError:
                    outcomes.append(0)
            stats = env.storage.faults.stats
            return outcomes, stats.faults_injected, stats.ops_seen, env.clock.now

        assert run() == run()

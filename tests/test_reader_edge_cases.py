"""SSTable reader edge cases: block boundaries, snapshots, huge entries."""

import pytest

from repro.sim.cache import PageCache
from repro.sim.storage import SimulatedStorage
from repro.sstable import SSTableBuilder, SSTableReader
from repro.util.keys import KIND_DELETE, KIND_PUT, MAX_SEQUENCE, InternalKey


@pytest.fixture
def storage():
    return SimulatedStorage(cache=PageCache(1 << 20))


def build_and_open(storage, entries, block_size=256, name="t.sst"):
    builder = SSTableBuilder(block_size=block_size)
    for key, value in entries:
        builder.add(key, value)
    blob, props, _ = builder.finish()
    acct = storage.foreground_account()
    storage.create(name)
    storage.append(name, blob, acct)
    return SSTableReader.open(storage, name, acct), props


class TestBlockBoundaries:
    def test_versions_of_one_key_spanning_blocks(self, storage):
        """All versions of a hot key across several blocks: the newest
        visible one at each snapshot must be found even when the block
        holding it is not the first candidate."""
        key = b"hotkey"
        entries = [
            (InternalKey(key, seq, KIND_PUT), b"v%03d" % seq + b"x" * 100)
            for seq in range(60, 0, -1)
        ]
        reader, _ = build_and_open(storage, entries, block_size=256)
        assert reader.num_blocks > 3
        acct = storage.foreground_account()
        assert reader.get(key, MAX_SEQUENCE, acct).value.startswith(b"v060")
        assert reader.get(key, 31, acct).value.startswith(b"v031")
        assert reader.get(key, 1, acct).value.startswith(b"v001")
        assert not reader.get(key, 0, acct).found

    def test_single_entry_per_block(self, storage):
        entries = [
            (InternalKey(b"k%02d" % i, 1, KIND_PUT), b"v" * 300) for i in range(20)
        ]
        reader, _ = build_and_open(storage, entries, block_size=64)
        assert reader.num_blocks == 20
        acct = storage.foreground_account()
        for i in range(20):
            assert reader.get(b"k%02d" % i, MAX_SEQUENCE, acct).found

    def test_value_larger_than_block(self, storage):
        big = bytes(range(256)) * 64  # 16 KiB
        entries = [
            (InternalKey(b"a", 1, KIND_PUT), b"small"),
            (InternalKey(b"big", 2, KIND_PUT), big),
            (InternalKey(b"z", 3, KIND_PUT), b"small"),
        ]
        reader, _ = build_and_open(storage, entries, block_size=4096)
        acct = storage.foreground_account()
        assert reader.get(b"big", MAX_SEQUENCE, acct).value == big
        assert reader.get(b"z", MAX_SEQUENCE, acct).found

    def test_seek_at_every_position(self, storage):
        entries = [
            (InternalKey(b"k%03d" % i, 1, KIND_PUT), b"v%03d" % i) for i in range(80)
        ]
        reader, _ = build_and_open(storage, entries, block_size=128)
        acct = storage.foreground_account()
        for i in range(80):
            probe = InternalKey(b"k%03d" % i, MAX_SEQUENCE, KIND_PUT)
            first = next(reader.seek(probe, acct))
            assert first[0].user_key == b"k%03d" % i

    def test_seek_between_keys(self, storage):
        entries = [
            (InternalKey(b"k%03d" % i, 1, KIND_PUT), b"") for i in range(0, 100, 10)
        ]
        reader, _ = build_and_open(storage, entries)
        acct = storage.foreground_account()
        probe = InternalKey(b"k015", MAX_SEQUENCE, KIND_PUT)
        assert next(reader.seek(probe, acct))[0].user_key == b"k020"


class TestTombstonesInTables:
    def test_tombstone_then_older_put_same_table(self, storage):
        key = b"k"
        entries = [
            (InternalKey(key, 9, KIND_DELETE), b""),
            (InternalKey(key, 4, KIND_PUT), b"old"),
        ]
        reader, _ = build_and_open(storage, entries)
        acct = storage.foreground_account()
        newest = reader.get(key, MAX_SEQUENCE, acct)
        assert newest.found and newest.is_deleted
        old_view = reader.get(key, 5, acct)
        assert old_view.found and old_view.value == b"old"


class TestProperties:
    def test_table_properties(self, storage):
        entries = [
            (InternalKey(b"k%02d" % i, i + 1, KIND_PUT), b"v" * 10) for i in range(30)
        ]
        reader, props = build_and_open(storage, entries)
        assert props.num_entries == 30
        assert props.smallest.user_key == b"k00"
        assert props.largest.user_key == b"k29"
        assert props.raw_value_bytes == 300
        assert props.file_size == reader.file_size

    def test_memory_bytes_accounts_index_and_bloom(self, storage):
        entries = [
            (InternalKey(b"k%04d" % i, 1, KIND_PUT), b"v" * 50) for i in range(500)
        ]
        reader, _ = build_and_open(storage, entries)
        assert reader.memory_bytes > 500  # bloom alone is ~625 bytes

    def test_reader_without_bloom(self, storage):
        entries = [(InternalKey(b"k", 1, KIND_PUT), b"v")]
        builder = SSTableBuilder()
        for key, value in entries:
            builder.add(key, value)
        blob, _, _ = builder.finish()
        acct = storage.foreground_account()
        storage.create("nb.sst")
        storage.append("nb.sst", blob, acct)
        reader = SSTableReader.open(storage, "nb.sst", acct, load_bloom=False)
        assert reader.bloom is None
        assert reader.may_contain(b"anything", acct)  # must not filter
        assert reader.get(b"k", MAX_SEQUENCE, acct).found

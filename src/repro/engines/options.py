"""Store configuration and the per-system presets.

The paper compares four stores.  Three of them (LevelDB, HyperLevelDB,
RocksDB) share the leveled-LSM design and differ in configuration and
compaction policy, so we model them as presets of one engine:

* **leveldb** — 4 MB memtable (scaled), one background worker, lazy
  round-robin compaction that moves one file at a time.  Lowest write
  amplification of the LSM trio (Figure 1.1) but the most write stalls.
* **hyperleveldb** — LevelDB sizes, two background workers, and
  HyperLevelDB's wider compactions (several files per pass) which finish a
  backlog faster at the cost of extra rewrites; the paper's baseline.
* **rocksdb** — 16x larger memtable, relaxed Level-0 limits (20/24), four
  background workers, and an eager policy that starts compacting a level at
  85% of its target size — more total IO, matching its 42x amplification
  in Figure 1.1.
* **pebblesdb** — HyperLevelDB sizes plus the FLSM options (guard
  probability bits, ``max_sstables_per_guard``) and the section 4
  optimizations, each independently switchable for the ablation benchmark.

All byte sizes default to the DESIGN.md scaled values (~1/64 of the
paper's) so compaction dynamics appear at Python-friendly dataset sizes;
``scale`` lets a benchmark scale them together.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KiB = 1024
MiB = 1024 * 1024


@dataclass
class StoreOptions:
    """Everything tunable about an engine instance."""

    # --- identification -------------------------------------------------
    preset: str = "pebblesdb"

    # --- write path ------------------------------------------------------
    memtable_bytes: int = 64 * KiB
    max_immutable_memtables: int = 2
    wal_enabled: bool = True
    sync_writes: bool = False

    # --- shape of the level hierarchy -------------------------------------
    num_levels: int = 7
    level0_compaction_trigger: int = 4
    level0_slowdown_trigger: int = 8
    level0_stop_trigger: int = 12
    #: Target size of Level 1; level i target is this * multiplier**(i-1).
    level1_max_bytes: int = 160 * KiB
    level_size_multiplier: int = 10
    #: Max sstable produced by compaction (LevelDB's target_file_size).
    target_file_bytes: int = 64 * KiB

    # --- compaction policy -----------------------------------------------
    background_workers: int = 2
    #: "round_robin" (LevelDB), "wide" (HyperLevelDB: several files/pass).
    compaction_policy: str = "wide"
    #: How many input files a "wide" compaction takes per pass.
    compaction_max_input_files: int = 4
    #: Start compacting a level at this fraction of its target size.
    compaction_eagerness: float = 1.0
    #: Move non-overlapping files to the next level by metadata edit only
    #: (LevelDB's optimization).  RocksDB's default compaction rewrites in
    #: far more situations, a large part of its higher amplification.
    allow_trivial_move: bool = True
    #: Extra write delay while Level 0 is in the slowdown band (LevelDB
    #: sleeps 1 ms; scaled with everything else).
    slowdown_delay: float = 0.25e-3
    #: Write-stall shape between the slowdown and stop triggers.  "cliff"
    #: is the historical LevelDB behaviour: a fixed ``slowdown_delay``
    #: per write for the whole band.  "graduated" injects a delay
    #: proportional to Level-0 debt inside the band — starting at
    #: ``slowdown_delay`` at the soft limit and ramping linearly to
    #: ``slowdown_delay_max`` one file short of the stop trigger — so
    #: per-write latency rises smoothly instead of oscillating between
    #: "free" and "hard stall".  Both modes delay at exactly the same
    #: decision points, so same-seed runs produce byte-identical
    #: MANIFESTs; only timing and stall metrics differ.
    backpressure: str = "cliff"
    #: Ceiling of the graduated delay ramp (per write, simulated seconds).
    slowdown_delay_max: float = 1.0e-3
    #: Token-bucket rate limit on compaction I/O (bytes read + written
    #: per simulated second); ``None`` disables the limiter.  Flushes are
    #: exempt — throttling the path that empties memtables would turn
    #: the limiter into a stall amplifier — and so are compactions out
    #: of a Level 0 at or above the slowdown trigger, which guarantees
    #: the limiter can never deadlock a due L0 compaction behind the
    #: very debt it is supposed to drain.
    compaction_rate_bytes_per_sec: "int | None" = None
    #: Let the limiter widen itself when write stalls climb: each time a
    #: reservation is made after new stall seconds accrued, the effective
    #: rate doubles (capped at 16x the configured rate); it decays back
    #: one halving per stall-free reservation.
    compaction_rate_auto: bool = False
    #: Compaction scheduling granularity for the FLSM engine: "guard"
    #: serializes in-flight jobs with a per-(level, key-range) conflict
    #: map so independent guards compact concurrently; "level" restores
    #: the historical whole-level locks.  Leveled engines schedule at
    #: file granularity and ignore this knob.
    compaction_scheduler: str = "guard"
    #: Cap on concurrently in-flight compaction jobs; ``None`` means one
    #: per background worker (more would only queue on busy timelines
    #: while inflating write amplification).
    max_parallel_compactions: "int | None" = None

    #: Device bytes per logical sstable byte; 1.0 = compression off (the
    #: paper's configuration, section 5.1), ~0.5 models snappy.  The WAL
    #: is never compressed, matching LevelDB.
    compression_ratio: float = 1.0

    # --- key–value separation (WiscKey/BVLSM-style value log) -------------
    #: Values at least this many bytes go to the append-only value log at
    #: WAL-append time; the tree then carries only a pointer.  ``None``
    #: disables separation entirely (byte-identical behaviour to a build
    #: without the value log).
    value_separation_bytes: "int | None" = None
    #: Rotate value-log segments at this size.
    vlog_segment_bytes: int = 256 * KiB
    #: A non-active segment whose dead-byte fraction reaches this ratio is
    #: *cold*: compactions rewriting a key range relocate live pointers out
    #: of cold segments, driving them to fully-dead and retirement.
    vlog_gc_dead_ratio: float = 0.5

    # --- read path ---------------------------------------------------------
    block_bytes: int = 4 * KiB
    bloom_bits_per_key: int = 10
    #: Open sstable readers kept cached.  The paper's stores cache 1000
    #: sstable index blocks; scaled by the same ~1/16 factor as file
    #: counts, so a store with many small sstables thrashes this cache
    #: (the Workload C / Table 5.1 effect) and a store with fewer, larger
    #: files keeps its indexes resident.
    table_cache_size: int = 64
    #: Host-side decoded-block cache budget in bytes; 0 disables it.  The
    #: cache memoizes *parsed* data blocks (entries + key array) to save
    #: the wall-clock cost of re-checksumming and re-parsing hot blocks;
    #: it is invisible to every simulated metric — device time, IO byte
    #: counts, and page-cache hit rates are identical with it on or off,
    #: so it never perturbs a reproduced figure.
    block_cache_bytes: int = 32 * MiB
    #: Decode data blocks zero-copy: values stay memoryview slices into
    #: the raw block until a value is actually returned to a caller, so
    #: an uncached point read allocates one bytes object instead of one
    #: per entry.  Host-side only (same simulated metrics either way);
    #: the off switch exists for the bench_readpath ablation.
    zero_copy_blocks: bool = True
    #: Seeks allowed against a file before it is scheduled for compaction.
    seek_compaction_enabled: bool = True

    # --- observability -----------------------------------------------------
    #: Flight-recorder sampling mode: ``"off"`` disables the recorder,
    #: ``"errors"`` (default) records only degraded/faulted-path events
    #: at zero hot-path cost, ``"1/N"`` (e.g. ``"1/64"``) additionally
    #: traces every Nth root operation in full into the bounded ring.
    trace_sample: str = "errors"
    #: Flight-recorder ring capacity (recent span/event records kept).
    trace_ring_capacity: int = 512
    #: Directory for automatic flight-recorder dumps on degradation /
    #: corruption / shedding; ``None`` keeps dumps in memory only.
    trace_dump_dir: "str | None" = None

    # --- fault handling ---------------------------------------------------
    #: Retries a background flush/compaction attempts after a transient
    #: I/O fault before declaring a sticky background error.
    fault_retry_limit: int = 3
    #: First retry backoff in simulated seconds; doubles per retry.
    fault_retry_base_delay: float = 1.0e-3
    #: Backoff cap in simulated seconds.
    fault_retry_max_delay: float = 50.0e-3
    #: Treat corruption found mid-WAL (before the durable boundary) as an
    #: error during recovery instead of silently stopping replay.  None =
    #: follow ``sync_writes`` (with synchronous writes every acknowledged
    #: record is durable, so mid-log corruption means acknowledged loss).
    strict_wal_recovery: "bool | None" = None

    # --- FLSM / PebblesDB -----------------------------------------------
    #: Consecutive set LSBs of murmur(key) required to guard Level 1.
    top_level_bits: int = 13
    #: Bits relaxed per level below Level 1.
    bit_decrement: int = 2
    #: Compact a guard into the next level at this many sstables.
    max_sstables_per_guard: int = 4
    #: Paper's 25x heuristic for rewriting in the second-to-last level.
    last_level_merge_io_ratio: float = 25.0
    enable_sstable_bloom: bool = True
    enable_parallel_seeks: bool = True
    enable_seek_based_compaction: bool = True
    enable_aggressive_seek_compaction: bool = True
    #: Compact level i into i+1 when size(i) >= this fraction of size(i+1).
    aggressive_compaction_ratio: float = 0.25
    #: Consecutive seek() calls that trigger seek-based compaction.
    seek_compaction_threshold: int = 10

    # ----------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.memtable_bytes <= 0 or self.level1_max_bytes <= 0:
            raise ValueError("memtable and level sizes must be positive")
        if self.num_levels < 2:
            raise ValueError("need at least two levels")
        if not (
            self.level0_compaction_trigger
            <= self.level0_slowdown_trigger
            <= self.level0_stop_trigger
        ):
            raise ValueError(
                "level0 triggers must satisfy compaction <= slowdown <= stop"
            )
        if self.background_workers < 1:
            raise ValueError("need at least one background worker")
        if self.max_sstables_per_guard < 1:
            raise ValueError("max_sstables_per_guard must be >= 1")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.block_cache_bytes < 0:
            raise ValueError("block_cache_bytes must be >= 0")
        if self.top_level_bits < 1 or self.bit_decrement < 0:
            raise ValueError("bad guard probability parameters")
        if self.compaction_policy not in ("round_robin", "wide", "min_overlap"):
            raise ValueError(f"unknown compaction policy: {self.compaction_policy!r}")
        if self.compaction_scheduler not in ("guard", "level"):
            raise ValueError(
                f"unknown compaction scheduler: {self.compaction_scheduler!r}"
            )
        if self.max_parallel_compactions is not None and self.max_parallel_compactions < 1:
            raise ValueError("max_parallel_compactions must be >= 1 (or None)")
        if self.backpressure not in ("cliff", "graduated"):
            raise ValueError(f"unknown backpressure mode: {self.backpressure!r}")
        from repro.obs.recorder import parse_sample_mode

        parse_sample_mode(self.trace_sample)  # raises ValueError on bad specs
        if self.trace_ring_capacity < 1:
            raise ValueError("trace_ring_capacity must be >= 1")
        if self.slowdown_delay < 0 or self.slowdown_delay_max < 0:
            raise ValueError("slowdown delays must be >= 0")
        if self.backpressure == "graduated" and self.slowdown_delay_max < self.slowdown_delay:
            raise ValueError("slowdown_delay_max must be >= slowdown_delay")
        if (
            self.compaction_rate_bytes_per_sec is not None
            and self.compaction_rate_bytes_per_sec <= 0
        ):
            raise ValueError("compaction_rate_bytes_per_sec must be > 0 (or None)")
        if self.value_separation_bytes is not None and self.value_separation_bytes < 1:
            raise ValueError("value_separation_bytes must be >= 1 (or None)")
        if self.vlog_segment_bytes <= 0:
            raise ValueError("vlog_segment_bytes must be positive")
        if not 0.0 < self.vlog_gc_dead_ratio <= 1.0:
            raise ValueError("vlog_gc_dead_ratio must be in (0, 1]")
        from repro.obs.recorder import parse_sample_mode

        parse_sample_mode(self.trace_sample)  # raises ValueError when invalid
        if self.trace_ring_capacity < 1:
            raise ValueError("trace_ring_capacity must be >= 1")

    def level_target_bytes(self, level: int) -> int:
        """Size target for ``level`` (level 0 is file-count-triggered)."""
        if level <= 0:
            return self.level0_compaction_trigger * self.memtable_bytes
        return self.level1_max_bytes * self.level_size_multiplier ** (level - 1)

    def scaled(self, factor: float) -> "StoreOptions":
        """Scale every byte-sized knob by ``factor`` (workload sizing aid)."""
        return replace(
            self,
            memtable_bytes=int(self.memtable_bytes * factor),
            level1_max_bytes=int(self.level1_max_bytes * factor),
            target_file_bytes=int(self.target_file_bytes * factor),
        )

    # ------------------------------------------------------------------
    # Presets (paper section 5.1 configurations, scaled)
    # ------------------------------------------------------------------
    @classmethod
    def leveldb(cls) -> "StoreOptions":
        # Single background thread and a single immutable memtable: the
        # write path stalls whenever flushing falls behind, giving the
        # low-throughput/high-stall profile of stock LevelDB.
        return cls(
            preset="leveldb",
            memtable_bytes=64 * KiB,
            max_immutable_memtables=1,
            background_workers=1,
            compaction_policy="wide",
            compaction_max_input_files=4,
            compaction_eagerness=0.75,
            level0_slowdown_trigger=8,
            level0_stop_trigger=12,
        )

    @classmethod
    def hyperleveldb(cls) -> "StoreOptions":
        # Two workers, two immutable memtables, and HyperLevelDB's
        # min-overlap input selection: fewest rewrites per pass and few
        # stalls — the paper's strongest LSM baseline.
        return cls(
            preset="hyperleveldb",
            memtable_bytes=64 * KiB,
            max_immutable_memtables=2,
            background_workers=2,
            compaction_policy="min_overlap",
            compaction_max_input_files=4,
            compaction_eagerness=1.0,
            level0_slowdown_trigger=8,
            level0_stop_trigger=12,
        )

    @classmethod
    def rocksdb(cls) -> "StoreOptions":
        # Narrower passes, no trivial moves, one compaction thread in the
        # scaled configuration: the most rewrite IO of the group (the
        # paper's Figure 1.1 measures 42x amplification) and the slowest
        # random-write throughput despite relaxed Level-0 limits.
        return cls(
            preset="rocksdb",
            memtable_bytes=64 * KiB,
            max_immutable_memtables=2,
            background_workers=1,
            compaction_policy="wide",
            compaction_max_input_files=3,
            compaction_eagerness=1.0,
            allow_trivial_move=False,
            level0_slowdown_trigger=20,
            level0_stop_trigger=24,
        )

    @classmethod
    def pebblesdb(cls) -> "StoreOptions":
        return cls(
            preset="pebblesdb",
            memtable_bytes=64 * KiB,
            max_immutable_memtables=2,
            background_workers=2,
            level0_slowdown_trigger=8,
            level0_stop_trigger=12,
        )

    @classmethod
    def for_preset(cls, name: str) -> "StoreOptions":
        factories = {
            "leveldb": cls.leveldb,
            "hyperleveldb": cls.hyperleveldb,
            "rocksdb": cls.rocksdb,
            "pebblesdb": cls.pebblesdb,
        }
        if name not in factories:
            raise ValueError(f"unknown preset: {name!r} (have {sorted(factories)})")
        return factories[name]()

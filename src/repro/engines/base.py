"""Store interface and the machinery shared by all LSM-family engines.

:class:`KeyValueStore` is the public interface (paper section 2.1: put,
get, delete, iterators, range query).  :class:`LSMStoreBase` implements
everything LSM and FLSM engines have in common — write-ahead logging,
memtable rotation, background flush scheduling, Level-0 write stalls, the
table cache, recovery from MANIFEST + WAL — and leaves the shape of
persistent state (levels of disjoint files vs. levels of guards) to
subclasses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.ledger import IoLedger
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Tracer, TraceSink
from repro.obs.windows import SUMMARY_PERCENTILES, WindowedHistogram
from repro.errors import (
    BackgroundError,
    CorruptionError,
    InvalidArgumentError,
    StorageError,
    StoreClosedError,
    TransientIOError,
)
from repro.memtable import Memtable
from repro.sim.executor import BackgroundExecutor, Job
from repro.sim.ratelimit import TokenBucket
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.sstable import (
    DecodedBlockCache,
    SSTableBuilder,
    SSTableReader,
    merging_iterator,
)
from repro.sstable.format import ValuePointer
from repro.util.keys import KIND_DELETE, KIND_PUT, KIND_VPTR, InternalKey
from repro.vlog.log import ValueLog, VlogCompactionContext
from repro.version import (
    ManifestReader,
    ManifestWriter,
    VersionEdit,
    read_current,
    set_current,
)
from repro.version.files import FileMetadata
from repro.wal import LogReader, LogWriter, decode_batch, encode_batch
from repro.engines.options import StoreOptions

Entry = Tuple[InternalKey, bytes]


@dataclass
class StoreStats:
    """Operational counters for one store instance."""

    preset: str = ""
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    seeks: int = 0
    next_calls: int = 0
    user_bytes_written: int = 0
    device_bytes_written: int = 0
    device_bytes_read: int = 0
    stall_seconds: float = 0.0
    flushes: int = 0
    compactions: int = 0
    compaction_bytes_written: int = 0
    memory_bytes: int = 0
    sstable_count: int = 0
    level_sizes: List[int] = field(default_factory=list)
    #: Host-side decoded-block cache counters (wall-clock memoization;
    #: these never influence any simulated metric).
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    block_cache_bytes: int = 0
    #: Fault handling: transient retries that succeeded or were attempted,
    #: sticky background errors declared, successful resume() calls, and
    #: the current degraded-read-only state.
    transient_fault_retries: int = 0
    background_errors: int = 0
    resumes: int = 0
    degraded: bool = False
    background_error: str = ""
    #: Compaction scheduling: times an otherwise-runnable compaction was
    #: rejected because its key range conflicted with in-flight work,
    #: write-stall seconds spent while a due Level-0 compaction was
    #: conflict-blocked, and the peak number of compaction jobs that were
    #: ever in flight at once.
    compaction_conflicts: int = 0
    conflict_stall_seconds: float = 0.0
    compactions_parallel_peak: int = 0
    #: Engine- or harness-specific scalar extras.  Values are numeric
    #: only (int or float); anything richer belongs in the registry as a
    #: typed metric, not in this bag.
    extra: Dict[str, Union[int, float]] = field(default_factory=dict)

    @property
    def block_cache_hit_rate(self) -> float:
        total = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / total if total else 0.0

    @property
    def write_amplification(self) -> float:
        if self.user_bytes_written == 0:
            return 0.0
        return self.device_bytes_written / self.user_bytes_written


#: StoreStats attribute -> registry metric name, for the counters engines
#: mutate directly on the hot path.
_STAT_COUNTERS = {
    "puts": "op.puts",
    "gets": "op.gets",
    "deletes": "op.deletes",
    "seeks": "op.seeks",
    "next_calls": "op.next_calls",
    "user_bytes_written": "write.user_bytes",
    "stall_seconds": "stall.seconds",
    "flushes": "flush.count",
    "compactions": "compaction.count",
    "compaction_bytes_written": "compaction.bytes_written",
    "transient_fault_retries": "fault.transient_retries",
    "background_errors": "fault.background_errors",
    "resumes": "fault.resumes",
    "compaction_conflicts": "compaction.conflicts",
    "conflict_stall_seconds": "compaction.conflict_stall_seconds",
}
_STAT_GAUGES = {
    "compactions_parallel_peak": "compaction.parallel_peak",
}


class StatsCounters:
    """Mutable stat attributes backed by a :class:`MetricsRegistry`.

    Engines keep writing ``self._stats.puts += 1`` exactly as they did on
    the old mutable :class:`StoreStats` bag, but every attribute is now a
    registry metric, making the registry the single source of truth.
    :meth:`fill` assembles the public :class:`StoreStats` *view* from it.
    """

    __slots__ = ("registry", "_m")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._m: Dict[str, object] = {}
        for attr, name in _STAT_COUNTERS.items():
            self._m[attr] = registry.counter(name)
        for attr, name in _STAT_GAUGES.items():
            self._m[attr] = registry.gauge(name)

    def fill(self, stats: "StoreStats") -> None:
        for attr, metric in self._m.items():
            setattr(stats, attr, metric.value)

    def bind(self, attr: str):
        """The raw metric behind one attribute.

        Per-operation paths bump counters through this instead of the
        property façade (two dict hops per ``+= 1`` add up at a million
        gets).
        """
        return self._m[attr]


def _stat_property(attr: str) -> property:
    def fget(self):
        return self._m[attr].value

    def fset(self, value):
        self._m[attr].value = value

    return property(fget, fset)


for _attr in (*_STAT_COUNTERS, *_STAT_GAUGES):
    setattr(StatsCounters, _attr, _stat_property(_attr))
del _attr


class Snapshot:
    """A consistent read view: all writes with sequence <= ``sequence``.

    Obtained from :meth:`LSMStoreBase.get_snapshot`; release it so
    compaction may reclaim the versions it pins.
    """

    __slots__ = ("sequence", "_released")

    def __init__(self, sequence: int) -> None:
        self.sequence = sequence
        self._released = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(seq={self.sequence})"


class DBIterator:
    """A positioned iterator over visible ``(user_key, value)`` pairs."""

    def __init__(self, gen: Iterator[Tuple[bytes, bytes]], on_next=None) -> None:
        self._gen = gen
        self._on_next = on_next
        self._current: Optional[Tuple[bytes, bytes]] = next(gen, None)

    @property
    def valid(self) -> bool:
        return self._current is not None

    def key(self) -> bytes:
        if self._current is None:
            raise InvalidArgumentError("iterator exhausted")
        return self._current[0]

    def value(self) -> bytes:
        if self._current is None:
            raise InvalidArgumentError("iterator exhausted")
        return self._current[1]

    def next(self) -> bool:
        """Advance; returns True while positioned on an entry."""
        if self._on_next is not None:
            self._on_next()
        self._current = next(self._gen, None)
        return self._current is not None

    def close(self) -> None:
        self._gen.close()

    def __enter__(self) -> "DBIterator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class KeyValueStore(ABC):
    """The operations every engine provides (paper section 2.1)."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Store ``key -> value`` (overwriting any previous value)."""

    @abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Latest value of ``key``, or None if absent/deleted."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key`` (a no-op if absent)."""

    @abstractmethod
    def seek(self, key: bytes) -> DBIterator:
        """Iterator positioned at the smallest key >= ``key``."""

    def seek_reverse(self, key: bytes) -> DBIterator:
        """Iterator over keys <= ``key`` in descending order.

        Optional: engines without backward iteration raise
        NotImplementedError.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot iterate backward")

    @abstractmethod
    def stats(self) -> StoreStats:
        """Snapshot of operational counters."""

    @abstractmethod
    def close(self) -> None:
        """Finish background work and release the store."""

    # Optional lifecycle hooks (engines without background work inherit
    # these no-ops, keeping the harness engine-agnostic) -----------------
    @property
    def is_degraded(self) -> bool:
        """True while a sticky background error blocks writes.

        Cheap enough for per-request checks; ``stats()`` builds a full
        snapshot and refreshes registry gauges, which is not.
        """
        return False

    def wait_idle(self) -> None:
        """Let background work finish; no-op for synchronous engines."""

    def flush_memtable(self) -> None:
        """Force buffered writes to storage; no-op where inapplicable."""

    def compact_all(self) -> None:
        """Drive compaction to a steady state; no-op where inapplicable."""

    def check_invariants(self) -> None:
        """Raise AssertionError on internal inconsistency."""

    def get_property(self, name: str) -> Optional[str]:
        """Textual store properties, LevelDB-style; None when unknown.

        Every engine understands ``repro.health`` (first token
        ``ok``/``degraded``, followed by scheduler counters),
        ``repro.background-error``, and ``repro.metrics`` (the text
        exposition of the metrics registry); LSM engines add more.
        """
        if name == "repro.health":
            return _health_line(self.stats())
        if name == "repro.background-error":
            return self.stats().background_error
        if name == "repro.metrics":
            registry = getattr(self, "registry", None)
            return registry.to_text() if registry is not None else ""
        return None

    def property_names(self) -> List[str]:
        """Property names :meth:`get_property` understands for this engine."""
        return ["repro.health", "repro.background-error", "repro.metrics"]

    # Convenience built on the primitives -------------------------------
    def write_batch(
        self, ops: List[Tuple[int, bytes, bytes]], sync: bool = False
    ) -> None:
        """Apply ``(kind, key, value)`` ops atomically where supported.

        ``sync=True`` asks for durability before returning; engines
        without a WAL (or whose options already force syncing) ignore it.
        """
        for kind, key, value in ops:
            if kind == KIND_PUT:
                self.put(key, value)
            else:
                self.delete(key)

    def range_query(self, lo: bytes, hi: bytes, limit: Optional[int] = None):
        """All pairs with lo <= key <= hi (paper section 2.1)."""
        out = []
        it = self.seek(lo)
        while it.valid and it.key() <= hi:
            out.append((it.key(), it.value()))
            if limit is not None and len(out) >= limit:
                break
            it.next()
        it.close()
        return out


def _health_line(stats: StoreStats) -> str:
    """``repro.health`` text: state first, scheduler counters after.

    The state token stays first so existing ``health.split()[0]`` (and
    plain equality on the historical ``ok``/``degraded``) keeps a stable
    meaning while the line also surfaces the parallel-compaction peak and
    conflict-stall attribution.
    """
    state = "degraded" if stats.degraded else "ok"
    line = (
        f"{state} parallel-peak={stats.compactions_parallel_peak} "
        f"conflict-stall={stats.conflict_stall_seconds:.6f}s"
    )
    extra = stats.extra
    if "overload_rejects" in extra:
        line += (
            f" overload-rejects={int(extra['overload_rejects'])}"
            f" retry-after-hints={int(extra['retry_after_hints'])}"
        )
    if "vlog_gc_relocated" in extra:
        line += (
            f" vlog-gc-relocated={int(extra['vlog_gc_relocated'])}"
            f" vlog-dead-bytes={int(extra['vlog_dead_bytes'])}"
        )
    return line


def _validate_key(key: bytes) -> None:
    if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
        raise InvalidArgumentError(f"keys must be non-empty bytes, got {key!r}")


class LSMStoreBase(KeyValueStore):
    """Common write path, stalls, table cache, and recovery."""

    def __init__(
        self,
        storage: SimulatedStorage,
        options: Optional[StoreOptions] = None,
        prefix: str = "db/",
        seed: int = 0,
    ) -> None:
        self.storage = storage
        self.options = options if options is not None else StoreOptions()
        self.prefix = prefix
        self.seed = seed
        self.clock = storage.clock
        self.cpu = storage.cpu
        self.executor = BackgroundExecutor(self.clock, self.options.background_workers)
        #: Compaction jobs submitted but not yet applied, and whether the
        #: latest scheduling pass left a due Level-0 compaction blocked on
        #: range conflicts (used to attribute stop-trigger stall time).
        self._compactions_inflight = 0
        self._l0_conflict_blocked = False
        #: Optional dispatch policy for schedule exploration: given the
        #: deterministic list of runnable compaction candidates, returns
        #: the index to submit next (None = engine priority order).
        self._dispatch_policy: Optional[Callable[[List], int]] = None

        self._user_acct = storage.foreground_account(prefix + "user")
        self._wal_acct = storage.foreground_account(prefix + "wal")
        self._vlog_acct = storage.foreground_account(prefix + "vlog")

        self._mem = Memtable(seed)
        self._imm: List[Tuple[Memtable, int]] = []
        self._flush_job: Optional[Job] = None
        self._last_sequence = 0
        self._next_file_number = 1
        self._wal_number = 0
        self._wal: Optional[LogWriter] = None
        self._manifest: Optional[ManifestWriter] = None
        self._table_cache: "OrderedDict[int, SSTableReader]" = OrderedDict()
        #: Host-side memoization of parsed data blocks, shared by every
        #: reader this store opens (keyed by sstable file number).  None
        #: when disabled; simulated metrics are identical either way.
        self._block_cache: Optional[DecodedBlockCache] = (
            DecodedBlockCache(self.options.block_cache_bytes)
            if self.options.block_cache_bytes > 0
            else None
        )
        self._file_refs: Dict[int, int] = {}
        self._doomed_files: set = set()
        self._snapshots: List[int] = []
        self._closed = False
        #: Sticky background error (RocksDB's SetBackgroundError model).
        #: Set when a background flush/compaction/MANIFEST write fails
        #: beyond retry; while set, writes raise BackgroundError, reads
        #: keep serving the last consistent state, and no new background
        #: work is scheduled.  Cleared only by a successful resume().
        self._background_error: Optional[BackgroundError] = None
        #: Version edits already applied in memory whose MANIFEST append
        #: failed; resume() persists them into a fresh MANIFEST.
        self._pending_manifest_edits: List[VersionEdit] = []
        #: Once a MANIFEST append fails, the file may end in a torn or
        #: unsynced record; further appends would be shadowed behind it at
        #: recovery, so they queue instead until resume() rotates the file.
        self._manifest_suspect = False
        #: Input sstables whose deleting edit is not yet durable: crash
        #: recovery would replay the old version, which still references
        #: them, so deletion waits for resume().
        self._deferred_retirements: List[int] = []
        #: WAL files whose reclaiming flush edit is not yet durable.
        self._deferred_wal_deletions: List[str] = []
        #: Value-log segments whose retiring edit is not yet durable.
        self._deferred_vlog_retirements: List[int] = []
        #: Key–value separation: None unless ``value_separation_bytes`` is
        #: set.  Constructed before recovery so WAL replay can validate
        #: pointers against it.
        self._vlog: Optional[ValueLog] = (
            ValueLog(
                storage,
                prefix,
                segment_bytes=self.options.vlog_segment_bytes,
                gc_dead_ratio=self.options.vlog_gc_dead_ratio,
                alloc_number=self._alloc_file_number,
            )
            if self.options.value_separation_bytes is not None
            else None
        )

        #: Typed metrics registry; ``_stats`` is the mutable attribute
        #: façade engines write through, and :meth:`stats` builds the
        #: public StoreStats *view* from the same registry.
        self.registry = MetricsRegistry()
        self._stats = StatsCounters(self.registry)
        self._op_puts = self._stats.bind("puts")
        self._op_gets = self._stats.bind("gets")
        self._op_deletes = self._stats.bind("deletes")
        self._op_seeks = self._stats.bind("seeks")
        self._op_next_calls = self._stats.bind("next_calls")
        self._stall_cause_counters: Dict[str, Counter] = {}
        #: Exactly-once stall attribution: sim time up to which stall
        #: seconds have already been charged to a cause.  Nested or
        #: back-to-back stall sites (imm backpressure draining straight
        #: into an L0 stop inside one write) attribute only the part of
        #: their interval past this watermark, so no sim-clock second is
        #: ever reported under two causes.
        self._stall_accounted_until = 0.0
        #: Token-bucket pacing of compaction job start times (None = no
        #: limit).  Flushes and due-L0 drains bypass it; see
        #: :meth:`_compaction_start_time`.
        self._compaction_limiter: Optional[TokenBucket] = None
        if self.options.compaction_rate_bytes_per_sec is not None:
            self._compaction_limiter = TokenBucket(
                self.options.compaction_rate_bytes_per_sec
            )
            self._rate_limited_jobs = self.registry.counter(
                "compaction.rate_limited_jobs"
            )
            self._rate_limit_delay = self.registry.counter(
                "compaction.rate_limit_delay_seconds"
            )
            #: stall.seconds at the last reservation (auto-widen input).
            self._limiter_stall_mark = 0.0
        #: Per-level read-path tallies.  The per-probe path does a plain
        #: list add; the sums fold into ``read.files_probed`` /
        #: ``read.bloom_skipped`` registry counters when stats are read.
        self._probe_files = [0] * (self.options.num_levels + 1)
        self._probe_bloom = [0] * (self.options.num_levels + 1)
        self._wal_sync_counter = self.registry.counter("wal.syncs")
        self._flush_seconds = self.registry.histogram("flush.seconds")
        self._compaction_seconds = self.registry.histogram("compaction.seconds")
        #: Span tracer; None (the default) keeps every instrumentation
        #: site down to a single attribute check.  The tracer only reads
        #: the simulated clock — it never advances it or charges IO, so
        #: enabling tracing cannot change any simulated outcome.
        self.tracer: Optional[Tracer] = None
        #: Always-on flight recorder (``trace_sample`` knob).  In the
        #: default ``"errors"`` mode the hot path stays uninstrumented
        #: (``tracer`` above remains None) and only degraded/faulted
        #: paths record; ``"1/N"`` installs a sampling tracer.
        self.recorder = FlightRecorder(
            component=prefix or "store",
            seed=seed,
            clock=self.clock,
            mode=self.options.trace_sample,
            capacity=self.options.trace_ring_capacity,
            dump_dir=self.options.trace_dump_dir,
        )
        if self.recorder.sampling_tracer is not None:
            self.tracer = self.recorder.sampling_tracer
        #: Per-op latency percentiles over simulated time (admin plane
        #: ``windows`` section).  Recorded on the sim clock, so the
        #: series is byte-identical traced or untraced.
        self.op_windows: Dict[str, WindowedHistogram] = {
            "get": WindowedHistogram(window_seconds=0.5),
            "write": WindowedHistogram(window_seconds=0.5),
        }
        self._open_or_recover()

    # ==================================================================
    # Subclass interface
    # ==================================================================
    @abstractmethod
    def _install_flush(self, metas: List[FileMetadata], edit: VersionEdit) -> None:
        """Add freshly flushed Level-0 files to persistent state."""

    @abstractmethod
    def _level0_file_count(self) -> int:
        """Files currently in Level 0 (write stall input)."""

    @abstractmethod
    def _schedule_compactions(self) -> None:
        """Inspect state and submit any needed compaction jobs."""

    @abstractmethod
    def _get_from_tables(self, key: bytes, snapshot: int, account: IoAccount):
        """Search persistent state; returns a memtable-style GetResult."""

    @abstractmethod
    def _table_iterators(
        self, start: Optional[bytes], account: IoAccount
    ) -> List[Iterator[Entry]]:
        """Positioned entry iterators over persistent state."""

    @abstractmethod
    def _recover_file(self, level: int, meta: FileMetadata, marker: int, guard_key: bytes) -> None:
        """Re-install one file while replaying the MANIFEST."""

    @abstractmethod
    def _recover_drop_file(self, level: int, number: int) -> None:
        """Remove one file while replaying the MANIFEST."""

    def _recover_guard(self, level: int, key: bytes) -> None:
        """Re-install a committed guard (FLSM only)."""

    def _recover_guard_deletion(self, level: int, key: bytes) -> None:
        """Apply a guard deletion (FLSM only)."""

    @abstractmethod
    def level_sizes(self) -> List[int]:
        """Bytes per level (diagnostics and aggressive compaction)."""

    @abstractmethod
    def sstable_file_numbers(self) -> List[int]:
        """Numbers of every live sstable."""

    def live_files(self) -> List[FileMetadata]:
        """Metadata of every live sstable (for size estimation)."""
        raise NotImplementedError

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise AssertionError if internal invariants are violated."""

    # ==================================================================
    # Public operations
    # ==================================================================
    def put(self, key: bytes, value: bytes) -> None:
        self._write([(KIND_PUT, bytes(key), bytes(value))])
        self._op_puts.value += 1

    def delete(self, key: bytes) -> None:
        self._write([(KIND_DELETE, bytes(key), b"")])
        self._op_deletes.value += 1

    def write_batch(
        self, ops: List[Tuple[int, bytes, bytes]], sync: bool = False
    ) -> None:
        self._write([(kind, bytes(k), bytes(v)) for kind, k, v in ops], sync=sync)
        for kind, _, _ in ops:
            if kind == KIND_PUT:
                self._op_puts.value += 1
            else:
                self._op_deletes.value += 1

    def get(self, key: bytes, snapshot: Optional[Snapshot] = None) -> Optional[bytes]:
        self._check_open()
        _validate_key(key)
        self.executor.drain()
        self._op_gets.value += 1
        trc = self.tracer
        t0 = self.clock.now
        # One body for both paths (an extra call per get is measurable);
        # the try/finally is free on 3.11 when nothing raises.
        span = trc.span("get") if trc is not None else None
        try:
            acct = self._user_acct
            acct.charge(self.cpu.charge("memtable_lookup", self.cpu.memtable_lookup))
            seq = snapshot.sequence if snapshot is not None else self._last_sequence
            result = self._mem.get(key, seq)
            if result.found:
                if span is not None:
                    span.set(source="memtable", found=not result.is_deleted)
                if result.is_deleted:
                    return None
                return self._resolve_value(result.value, result.kind, acct)
            for imm, _ in reversed(self._imm):
                acct.charge(
                    self.cpu.charge("memtable_lookup", self.cpu.memtable_lookup)
                )
                result = imm.get(key, seq)
                if result.found:
                    if span is not None:
                        span.set(source="immutable", found=not result.is_deleted)
                    if result.is_deleted:
                        return None
                    return self._resolve_value(result.value, result.kind, acct)
            result = self._get_from_tables(key, seq, acct)
            found = result.found and not result.is_deleted
            if span is not None:
                if result.found:
                    span.set(source="table")
                span.set(found=found)
            if not found:
                return None
            return self._resolve_value(result.value, result.kind, acct)
        except BaseException as exc:
            if span is not None:
                span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.op_windows["get"].record(t0, self.clock.now - t0)
            if span is not None:
                span.end()

    def seek(self, key: bytes, snapshot: Optional[Snapshot] = None) -> DBIterator:
        self._check_open()
        _validate_key(key)
        self.executor.drain()
        self._op_seeks.value += 1
        self._note_seek()
        gen = self._visible_entries(key, snapshot)

        def on_next() -> None:
            self._op_next_calls.value += 1

        return DBIterator(gen, on_next=on_next)

    def scan(
        self, start: Optional[bytes] = None, snapshot: Optional[Snapshot] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Generator over all visible pairs from ``start`` onward."""
        self._check_open()
        self.executor.drain()
        return self._visible_entries(start if start is not None else b"", snapshot)

    def seek_reverse(self, key: bytes, snapshot: Optional[Snapshot] = None) -> DBIterator:
        """Iterator over keys <= ``key``, walking backward."""
        self._check_open()
        _validate_key(key)
        self.executor.drain()
        self._op_seeks.value += 1
        gen = self._visible_entries_reverse(key, snapshot)

        def on_next() -> None:
            self._op_next_calls.value += 1

        return DBIterator(gen, on_next=on_next)

    def scan_reverse(
        self, start: Optional[bytes] = None, snapshot: Optional[Snapshot] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """All visible pairs with key <= ``start``, descending."""
        self._check_open()
        self.executor.drain()
        return self._visible_entries_reverse(start, snapshot)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def get_snapshot(self) -> Snapshot:
        """Pin the current state; reads through it never see later writes."""
        self._check_open()
        snap = Snapshot(self._last_sequence)
        insort(self._snapshots, snap.sequence)
        return snap

    def release_snapshot(self, snapshot: Snapshot) -> None:
        """Unpin; versions kept only for this snapshot become collectable."""
        if snapshot._released:
            return
        snapshot._released = True
        idx = bisect_left(self._snapshots, snapshot.sequence)
        if idx < len(self._snapshots) and self._snapshots[idx] == snapshot.sequence:
            del self._snapshots[idx]

    def _active_snapshots(self) -> Tuple[int, ...]:
        return tuple(self._snapshots)

    # ------------------------------------------------------------------
    def flush_memtable(self) -> None:
        """Force the active memtable to Level 0 and wait for it."""
        self._check_open()
        if len(self._mem):
            self._rotate_memtable()
        while self._imm:
            self._maybe_schedule_flush()
            if self._flush_job is None:
                # Degraded mode: the flush cannot be scheduled; report
                # instead of spinning forever on the unflushable memtable.
                self._raise_if_degraded()
                break
            self.executor.wait_for(self._flush_job)
        self.executor.drain()

    def compact_all(self) -> None:
        """Drive compaction until the store reaches a steady state."""
        self._check_open()
        self.flush_memtable()
        self.executor.wait_all()
        for _ in range(200):
            before = self.executor.jobs_run
            self._schedule_compactions()
            if self.executor.jobs_run == before:
                break
            self.executor.wait_all()

    def wait_idle(self) -> None:
        """Let all scheduled background work finish (advances the clock)."""
        self.executor.wait_all()

    def close(self) -> None:
        if self._closed:
            return
        self.executor.wait_all()
        if self._wal is not None:
            try:
                self._wal.sync(self._wal_acct)
            except StorageError:
                # Closing anyway: unsynced tail records are lost exactly as
                # an ordinary crash would lose them, which recovery handles.
                pass
        self._closed = True

    # ------------------------------------------------------------------
    def _flush_probe_tallies(self) -> None:
        """Fold the per-level read-path tallies into registry counters."""
        for what, tallies in (
            ("files_probed", self._probe_files),
            ("bloom_skipped", self._probe_bloom),
        ):
            for level, n in enumerate(tallies):
                if n:
                    self.registry.counter(f"read.{what}", level=level).value += n
                    tallies[level] = 0

    def stats(self) -> StoreStats:
        """Assemble the public counter view from the metrics registry."""
        self._flush_probe_tallies()
        s = StoreStats(preset=self.options.preset)
        self._stats.fill(s)
        written = self.storage.stats.written_by_account
        read = self.storage.stats.read_by_account
        s.device_bytes_written = sum(
            v for name, v in written.items() if name.startswith(self.prefix)
        )
        s.device_bytes_read = sum(
            v for name, v in read.items() if name.startswith(self.prefix)
        )
        s.memory_bytes = self.memory_bytes()
        s.sstable_count = len(self.sstable_file_numbers())
        s.level_sizes = self.level_sizes()
        if self._block_cache is not None:
            s.block_cache_hits = self._block_cache.stats.hits
            s.block_cache_misses = self._block_cache.stats.misses
            s.block_cache_bytes = self._block_cache.size_bytes
        s.degraded = self._background_error is not None
        s.background_error = (
            str(self._background_error) if self._background_error is not None else ""
        )
        # Mirror the derived values into the registry so one exposition
        # dump is self-contained.
        reg = self.registry
        reg.gauge("io.device_bytes_written").set(s.device_bytes_written)
        reg.gauge("io.device_bytes_read").set(s.device_bytes_read)
        syncs = self.storage.stats.syncs_by_account
        reg.gauge("io.device_syncs").set(
            sum(v for name, v in syncs.items() if name.startswith(self.prefix))
        )
        reg.gauge("store.memory_bytes").set(s.memory_bytes)
        reg.gauge("store.sstables").set(s.sstable_count)
        reg.gauge("fault.degraded").set(1 if s.degraded else 0)
        for level, size in enumerate(s.level_sizes):
            reg.gauge("store.level_bytes", level=level).set(size)
        if self._block_cache is not None:
            reg.gauge("block_cache.hits").set(s.block_cache_hits)
            reg.gauge("block_cache.misses").set(s.block_cache_misses)
            reg.gauge("block_cache.bytes").set(s.block_cache_bytes)
        if self._vlog is not None:
            vl = self._vlog
            reg.counter("vlog.bytes_written").value = vl.bytes_written
            reg.counter("vlog.records_written").value = vl.records_written
            reg.counter("vlog.gc_relocated").value = vl.gc_relocated_bytes
            reg.counter("vlog.segments_retired").value = vl.segments_retired
            reg.gauge("vlog.segments").set(len(vl.segment_numbers()))
            reg.gauge("vlog.data_bytes").set(vl.data_bytes())
            reg.gauge("vlog.dead_bytes").set(vl.dead_bytes())
            s.extra["vlog_segments"] = len(vl.segment_numbers())
            s.extra["vlog_bytes_written"] = vl.bytes_written
            s.extra["vlog_gc_relocated"] = vl.gc_relocated_bytes
            s.extra["vlog_dead_bytes"] = vl.dead_bytes()
        # Serving-layer counters the server mirrors into this registry
        # (0 for stores that never served requests) — surfaced so one
        # health/stats line reflects the whole store state.
        s.extra["overload_rejects"] = reg.counter("server.overload_rejects").value
        s.extra["retry_after_hints"] = reg.counter("server.retry_after_hints").value
        return s

    def enable_tracing(
        self, sink: TraceSink, component: str = "engine"
    ) -> Tracer:
        """Attach a span tracer writing to ``sink``; returns the tracer.

        Ids derive from ``(component, seed, op ordinal)`` and timestamps
        from the simulated clock, so the same seed and workload produce a
        byte-identical trace file.
        """
        self.tracer = Tracer(
            sink, clock=self.clock, component=component, seed=self.seed
        )
        return self.tracer

    def io_ledger(self) -> IoLedger:
        """Per-cause I/O attribution for this store's traffic."""
        return IoLedger.from_storage(self.storage, self.prefix)

    def windows_payload(self) -> Dict[str, object]:
        """JSON-friendly per-op windowed-percentile series (admin plane)."""
        series: Dict[str, Dict[str, List]] = {}
        for op, wh in sorted(self.op_windows.items()):
            series[op] = {
                name: [[i, v] for i, v in wh.percentile_series(q)]
                for name, q in SUMMARY_PERCENTILES
            }
        return {"window_seconds": 0.5, "series": series}

    def _stall_cause(self, cause: str) -> Counter:
        counter = self._stall_cause_counters.get(cause)
        if counter is None:
            counter = self.registry.counter("stall.cause_seconds", cause=cause)
            self._stall_cause_counters[cause] = counter
        return counter

    def memory_bytes(self) -> int:
        """Resident memory: memtables plus cached table indexes/filters."""
        mem = self._mem.approximate_bytes
        mem += sum(imm.approximate_bytes for imm, _ in self._imm)
        mem += sum(r.memory_bytes for r in self._table_cache.values())
        return mem

    @property
    def last_sequence(self) -> int:
        return self._last_sequence

    def approximate_size(self, lo: bytes, hi: bytes) -> int:
        """Estimated on-storage bytes of keys in ``[lo, hi]``.

        LevelDB's ``GetApproximateSizes``: derived from file metadata
        only — full size for files contained in the range, half for files
        straddling a boundary — so it costs no IO.
        """
        if hi < lo:
            raise InvalidArgumentError("approximate_size: hi < lo")
        total = 0
        for meta in self.live_files():
            if not meta.overlaps(lo, hi):
                continue
            contained = meta.smallest.user_key >= lo and meta.largest.user_key <= hi
            total += meta.file_size if contained else meta.file_size // 2
        return total

    # ------------------------------------------------------------------
    # Introspection (LevelDB's GetProperty)
    # ------------------------------------------------------------------
    def get_property(self, name: str) -> Optional[str]:
        """Textual store properties, LevelDB-style.

        Supported names: ``repro.stats``, ``repro.levels``,
        ``repro.sstables``, ``repro.approximate-memory-usage``,
        ``repro.health`` (``ok``/``degraded`` plus scheduler counters),
        ``repro.background-error``
        (empty when healthy), ``repro.metrics`` (registry text
        exposition), ``repro.compaction-scheduler`` (mode,
        worker count, in-flight/peak parallelism, conflict counters),
        ``repro.num-files-at-level<N>``, plus engine extras (PebblesDB
        adds ``repro.guards``, ``repro.empty-guards``,
        ``repro.uncommitted-guards``).  Returns None for unknown names.
        """
        if name == "repro.stats":
            s = self.stats()
            return (
                f"puts={s.puts} gets={s.gets} deletes={s.deletes} seeks={s.seeks}\n"
                f"user-bytes={s.user_bytes_written} "
                f"device-write-bytes={s.device_bytes_written} "
                f"device-read-bytes={s.device_bytes_read}\n"
                f"write-amplification={s.write_amplification:.3f} "
                f"stall-seconds={s.stall_seconds:.6f}\n"
                f"flushes={s.flushes} compactions={s.compactions} "
                f"sstables={s.sstable_count}"
            )
        if name == "repro.levels":
            return " ".join(str(n) for n in self.level_sizes())
        if name == "repro.sstables":
            layout = getattr(self, "layout", None)
            return layout() if layout else None
        if name == "repro.approximate-memory-usage":
            return str(self.memory_bytes())
        if name == "repro.block-cache":
            if self._block_cache is None:
                return "disabled"
            bc = self._block_cache.stats
            return (
                f"hits={bc.hits} misses={bc.misses} "
                f"hit-rate={bc.hit_rate:.3f} "
                f"bytes={self._block_cache.size_bytes} "
                f"blocks={len(self._block_cache)} evictions={bc.evictions}"
            )
        if name == "repro.health":
            return _health_line(self.stats())
        if name == "repro.background-error":
            return "" if self._background_error is None else str(self._background_error)
        if name == "repro.metrics":
            self.stats()  # refresh derived gauges before dumping
            return self.registry.to_text()
        if name == "repro.compaction-scheduler":
            s = self._stats
            return (
                f"mode={self._scheduler_mode()} workers={self.executor.workers} "
                f"inflight={self._compactions_inflight} "
                f"peak={s.compactions_parallel_peak} "
                f"conflicts={s.compaction_conflicts} "
                f"conflict-stall={s.conflict_stall_seconds:.6f}s"
            )
        if name == "repro.vlog":
            return (
                self._vlog.state_line() if self._vlog is not None else "disabled"
            )
        if name == "repro.ledger":
            return IoLedger.from_storage(self.storage, self.prefix).to_json()
        if name == "repro.windows":
            import json as _json

            return _json.dumps(
                self.windows_payload(), sort_keys=True, separators=(",", ":")
            )
        if name == "repro.flight-recorder":
            import json as _json

            return _json.dumps(
                self.recorder.summary(), sort_keys=True, separators=(",", ":")
            )
        if name.startswith("repro.num-files-at-level"):
            try:
                level = int(name[len("repro.num-files-at-level"):])
            except ValueError:
                return None
            counts = self.files_per_level()
            if 0 <= level < len(counts):
                return str(counts[level])
            return None
        return self._extra_property(name)

    def _extra_property(self, name: str) -> Optional[str]:
        """Hook for engine-specific properties."""
        return None

    def property_names(self) -> List[str]:
        names = [
            "repro.stats",
            "repro.levels",
            "repro.sstables",
            "repro.approximate-memory-usage",
            "repro.block-cache",
            "repro.health",
            "repro.background-error",
            "repro.metrics",
            "repro.compaction-scheduler",
            "repro.vlog",
            "repro.ledger",
            "repro.windows",
            "repro.flight-recorder",
            "repro.num-files-at-level<N>",
        ]
        names.extend(self._extra_property_names())
        return names

    def _extra_property_names(self) -> List[str]:
        """Hook for engine-specific property names."""
        return []

    def _scheduler_mode(self) -> str:
        """Granularity at which this engine serializes compactions."""
        return "level"

    def set_dispatch_policy(
        self, policy: Optional[Callable[[List], int]]
    ) -> None:
        """Install a compaction dispatch policy (None restores default).

        Schedule-exploration hook: when the engine has several runnable
        compaction candidates, ``policy(candidates)`` picks the index to
        submit next instead of the built-in priority order.  Candidates
        are collected deterministically, so a seeded policy yields a
        replayable schedule; every schedule must produce the same
        user-visible state.
        """
        self._dispatch_policy = policy

    def _note_compaction_inflight(self, delta: int) -> None:
        """Track in-flight compaction jobs and their concurrency peak."""
        self._compactions_inflight += delta
        if self._compactions_inflight > self._stats.compactions_parallel_peak:
            self._stats.compactions_parallel_peak = self._compactions_inflight

    def files_per_level(self) -> List[int]:
        """Live sstable count per level (default: derived from sizes)."""
        raise NotImplementedError

    # ==================================================================
    # Write path
    # ==================================================================
    def _write(self, ops: List[Tuple[int, bytes, bytes]], sync: bool = False) -> None:
        self._check_open()
        if not ops:
            return
        trc = self.tracer
        t0 = self.clock.now
        try:
            if trc is None:
                self._write_impl(ops, sync)
                return
            with trc.span("write", ops=len(ops)) as span:
                self._write_impl(ops, sync, span)
        finally:
            self.op_windows["write"].record(t0, self.clock.now - t0)

    def _write_impl(
        self, ops: List[Tuple[int, bytes, bytes]], sync: bool, span=None
    ) -> None:
        for _, key, _ in ops:
            _validate_key(key)
        self.executor.drain()
        self._raise_if_degraded()
        self._make_room()
        # Stall waits run background apply callbacks, which may have just
        # moved the store into degraded mode.
        self._raise_if_degraded()
        seq = self._last_sequence + 1
        opts = self.options
        # Key–value separation happens *before* the WAL append (BVLSM):
        # large values go to the value log now and the WAL record carries
        # only the pointer, so the value travels through exactly one
        # durable append instead of WAL + every later compaction.
        tree_ops = ops
        vlog = self._vlog
        if vlog is not None:
            threshold = opts.value_separation_bytes
            pointers: List[ValuePointer] = []
            if any(
                kind == KIND_PUT and len(value) >= threshold
                for kind, _, value in ops
            ):
                tree_ops = list(ops)
                try:
                    for i, (kind, key, value) in enumerate(ops):
                        if kind == KIND_PUT and len(value) >= threshold:
                            pointer = vlog.append(
                                key, value, seq + i, self._vlog_acct
                            )
                            pointers.append(pointer)
                            tree_ops[i] = (KIND_VPTR, key, pointer.encode())
                    if opts.sync_writes or sync:
                        vlog.sync(self._vlog_acct)
                except StorageError:
                    # A torn value-log record, or complete records whose
                    # batch then failed: nothing references them, but they
                    # occupy their segment.  Burn the batch's sequence
                    # numbers (a phantom record carries its sequence; were
                    # a later write to reuse it, repair tools rebuilding
                    # from log records could shadow acknowledged data with
                    # the phantom) and count the orphan bytes dead.
                    self._last_sequence = seq + len(ops) - 1
                    vlog.abandon_tail(pointers)
                    raise
        if opts.wal_enabled:
            payload = encode_batch(seq, tree_ops)
            assert self._wal is not None
            size_before = self.storage.size(self._wal.name)
            try:
                self._wal.append(
                    payload, self._wal_acct, sync=opts.sync_writes or sync
                )
            except StorageError:
                # The failed append may have left a torn record; a later
                # record appended after it would be unreachable at replay
                # (the reader stops at the first bad record), so no
                # acknowledged write may ever land in this file again.
                # The memtable was not touched: the write fails cleanly.
                if self.storage.size(self._wal.name) != size_before:
                    # Bytes landed despite the failure — a torn record, or
                    # a *complete* record whose sync failed.  A complete
                    # record replays at recovery, so burn its sequence
                    # numbers: were a later acknowledged write to reuse
                    # them, replay would apply this phantom record first
                    # and skip the acknowledged one as a duplicate,
                    # silently replacing acknowledged data.
                    self._last_sequence = seq + len(ops) - 1
                if vlog is not None and tree_ops is not ops:
                    # The batch's value-log records are unreferenced now.
                    vlog.abandon_tail(pointers)
                self._switch_wal_file()
                raise
            self._wal_acct.charge(
                self.cpu.charge("wal_record", self.cpu.wal_record * len(ops))
            )
            if opts.sync_writes or sync:
                self._wal_sync_counter.value += 1
                if span is not None:
                    span.set(wal_sync=True)
        bytes_written = 0
        for i, (kind, key, value) in enumerate(tree_ops):
            self._mem.add(seq + i, kind, key, value)
            self._user_acct.charge(
                self.cpu.charge("memtable_insert", self.cpu.memtable_insert)
            )
            # User bytes count the *original* value size: write
            # amplification must keep its meaning when the memtable holds
            # a 20-byte pointer in place of a 64 KiB value.
            bytes_written += len(key) + len(ops[i][2])
            self._on_insert_key(key)
        self._stats.user_bytes_written += bytes_written
        if span is not None:
            span.set(bytes=bytes_written)
        self._last_sequence = seq + len(ops) - 1
        if self._mem.approximate_bytes >= opts.memtable_bytes:
            self._rotate_memtable()

    def _make_room(self) -> None:
        opts = self.options
        # Backpressure from unflushed immutable memtables.
        while len(self._imm) > opts.max_immutable_memtables:
            self._maybe_schedule_flush()
            if self._flush_job is None:
                break
            self._stall_until(self._flush_job, cause="imm_backpressure")
        # Level-0 file count: slow down, then stop.
        l0 = self._level0_file_count()
        if l0 >= opts.level0_stop_trigger:
            self._schedule_compactions()
            guard = 0
            while (
                self._level0_file_count() >= opts.level0_stop_trigger
                and self.executor.pending_count
                and guard < 10000
            ):
                before = self.clock.now
                cause = (
                    "l0_stop_conflict" if self._l0_conflict_blocked else "l0_stop"
                )
                self._stall_until(self._next_pending_job(), cause=cause)
                if self._l0_conflict_blocked:
                    # The L0 compaction that would relieve this stall was
                    # rejected by the conflict map; charge the wait to it.
                    self._stats.conflict_stall_seconds += self.clock.now - before
                self._schedule_compactions()
                guard += 1
        elif l0 >= opts.level0_slowdown_trigger:
            # Soft-limit band.  Both backpressure modes inject their delay
            # at exactly this decision point and nowhere else, so the
            # background schedule — and therefore the MANIFEST — is
            # byte-identical across modes; only the *amount* differs.
            delay = self._soft_limit_delay(l0)
            if delay > 0.0:
                before = self.clock.now
                self.clock.advance(delay)
                cause = (
                    "l0_slowdown"
                    if opts.backpressure == "cliff"
                    else "l0_graduated"
                )
                self._attribute_stall(cause, before, self.clock.now)

    def _soft_limit_delay(self, l0: int) -> float:
        """Per-write delay while Level 0 sits in the slowdown band.

        ``cliff`` mode returns the fixed historical ``slowdown_delay``.
        ``graduated`` mode ramps linearly with debt: ``slowdown_delay``
        at the soft limit, rising to ``slowdown_delay_max`` one file
        short of the stop trigger, further scaled up by immutable-
        memtable debt — monotone in both, so heavier debt always means
        at least as much delay.
        """
        opts = self.options
        if opts.backpressure == "cliff":
            return opts.slowdown_delay
        band = max(1, opts.level0_stop_trigger - 1 - opts.level0_slowdown_trigger)
        l0_debt = (l0 - opts.level0_slowdown_trigger) / band
        imm_debt = len(self._imm) / max(1, opts.max_immutable_memtables)
        debt = min(1.0, max(0.0, l0_debt, imm_debt))
        return opts.slowdown_delay + (opts.slowdown_delay_max - opts.slowdown_delay) * debt

    def _attribute_stall(self, cause: str, start: float, end: float) -> None:
        """Charge the stall interval ``[start, end]`` to ``cause``.

        Only the part past the attribution watermark is charged, and the
        watermark then advances to ``end`` — so when stall sites nest or
        chain within one write, each sim-clock second lands in exactly
        one ``stall.cause_seconds`` label and the per-cause counters
        always sum to ``stall.seconds``.
        """
        start = max(start, self._stall_accounted_until)
        if end <= start:
            return
        self._stall_accounted_until = end
        waited = end - start
        self._stats.stall_seconds += waited
        self._stall_cause(cause).value += waited
        trc = self.tracer
        if trc is not None:
            span = trc.start_span("stall", start=start, cause=cause)
            span.end(at=end)

    def _stall_until(self, job: Optional[Job], cause: str = "flush_wait") -> None:
        if job is None:
            return
        before = self.clock.now
        self.executor.wait_for(job)
        self._attribute_stall(cause, before, self.clock.now)

    def _compaction_start_time(self, amount_bytes: float) -> Optional[float]:
        """Token-bucket admission for one compaction job.

        Returns the sim time the job may start (to pass as ``at=`` to the
        executor), or None when it may start immediately.  Bypasses the
        limiter entirely while Level 0 is at or past the slowdown
        trigger: a due L0 drain must never queue behind the limiter's
        debt, which is what makes "rate limiter never deadlocks a due L0
        compaction" an invariant rather than a tuning outcome.
        """
        limiter = self._compaction_limiter
        if limiter is None:
            return None
        if self._level0_file_count() >= self.options.level0_slowdown_trigger:
            return None
        if self.options.compaction_rate_auto:
            stalled = self._stats.stall_seconds > self._limiter_stall_mark
            self._limiter_stall_mark = self._stats.stall_seconds
            limiter.adapt(stalled)
        start = limiter.reserve(amount_bytes, self.clock.now)
        if start <= self.clock.now:
            return None
        self._rate_limited_jobs.value += 1
        self._rate_limit_delay.value += start - self.clock.now
        return start

    def _next_pending_job(self) -> Optional[Job]:
        return self.executor.peek_next()

    def _rotate_memtable(self) -> None:
        self._imm.append((self._mem, self._wal_number))
        self._mem = Memtable(self.seed + len(self._imm) + self._next_file_number)
        self._wal_number = self._alloc_file_number()
        if self.options.wal_enabled:
            self._wal = LogWriter(self.storage, self._wal_name(self._wal_number))
        self._maybe_schedule_flush()

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _maybe_schedule_flush(self) -> None:
        """Compute a flush of the oldest immutable memtable and submit it.

        The sstable is *written* now (so the job's cost is exact) but only
        becomes part of the version — and the memtable only goes away —
        when the job's completion time passes, mirroring a real background
        flush thread.
        """
        if self._flush_job is not None or not self._imm:
            return
        if self._background_error is not None:
            return
        imm, _ = self._imm[0]
        acct = self.storage.background_account(self.prefix + "flush")
        metas = self._run_protected(
            "flush", lambda: self._write_sstables(iter(imm), acct, split_bytes=None)
        )
        if metas is None:  # degraded: the sstable could not be written
            return
        edit = VersionEdit(
            last_sequence=imm.max_sequence,
            next_file_number=self._next_file_number,
        )
        edit.log_number = self._imm[1][1] if len(self._imm) > 1 else self._wal_number
        cpu_cost = self.cpu.charge(
            "flush_build",
            (self.cpu.merge_entry + self.cpu.bloom_build_per_key) * len(imm),
        )
        acct.charge(cpu_cost)

        trc = self.tracer
        parent = trc.current() if trc is not None else None
        job_ref: List[Job] = []

        def apply() -> None:
            self._install_flush(metas, edit)
            manifest_acct = self.storage.background_account(self.prefix + "manifest")
            durable = self._append_manifest(edit, manifest_acct)
            self._imm.pop(0)
            self._flush_job = None
            if self.options.wal_enabled:
                self._reclaim_wals(edit.log_number, durable)
            self._stats.flushes += 1
            if trc is not None and job_ref:
                job = job_ref[0]
                span = trc.start_span(
                    "flush",
                    kind="background",
                    parent=parent,
                    start=job.start,
                    files_out=len(metas),
                    bytes_out=sum(m.file_size for m in metas),
                    entries=sum(m.num_entries for m in metas),
                )
                span.end(at=job.completion)
            self._maybe_schedule_flush()
            self._schedule_compactions()

        self._flush_seconds.record(acct.seconds)
        self._flush_job = self.executor.submit("flush", acct.seconds, apply)
        job_ref.append(self._flush_job)

    def _reclaim_wals(self, log_number: Optional[int], durable: bool) -> None:
        """Delete WALs superseded by a flush whose edit is in the MANIFEST.

        All logs numbered below the edit's ``log_number`` are obsolete
        (this also reclaims files abandoned by :meth:`_switch_wal_file`).
        When the edit did *not* reach the MANIFEST the files are kept and
        queued instead: crash recovery would replay the old version, drop
        the flushed sstable as an orphan, and need the WAL as the only
        remaining copy of the data.
        """
        if log_number is None:
            return
        for name in self.storage.list_files(self.prefix):
            if not name.endswith(".log"):
                continue
            try:
                number = int(name[len(self.prefix) : -4])
            except ValueError:
                continue
            if number >= log_number:
                continue
            if durable:
                if self.storage.exists(name):
                    self.storage.delete(name)
            elif name not in self._deferred_wal_deletions:
                self._deferred_wal_deletions.append(name)

    # ==================================================================
    # Fault handling and graceful degradation
    # ==================================================================
    @property
    def is_degraded(self) -> bool:
        """True while a sticky background error blocks writes."""
        return self._background_error is not None

    def background_error(self) -> Optional[BackgroundError]:
        """The sticky background error, or None when healthy."""
        return self._background_error

    def _raise_if_degraded(self) -> None:
        if self._background_error is not None:
            raise self._background_error

    def _set_background_error(self, kind: str, exc: Exception) -> None:
        """Declare a sticky background error (first failure wins)."""
        if self._background_error is None:
            self._background_error = BackgroundError(
                f"store degraded to read-only: background {kind} failed: {exc}",
                cause=exc,
            )
            self._stats.background_errors += 1
            if self.tracer is not None:
                self.tracer.point(
                    "fault.degraded", kind=kind, error=type(exc).__name__
                )
            self._flight_point(
                "fault.degraded", kind=kind, error=type(exc).__name__
            )
            reason = (
                "corruption" if isinstance(exc, CorruptionError) else "degraded"
            )
            self.recorder.dump(f"{reason}:{kind}")

    def _flight_point(self, name: str, **attrs: object) -> None:
        """Record an error-path event into the flight-recorder ring.

        Skipped when the recorder's own tracer is installed as the hot
        path tracer (``1/N`` mode), which already recorded the event via
        the normal ``tracer.point`` path above.
        """
        rec = self.recorder
        if rec.tracer is not None and rec.tracer is not self.tracer:
            rec.point(name, **attrs)

    def _run_protected(self, kind: str, compute: Callable):
        """Run a background compute step with retries and state rollback.

        On a :class:`TransientIOError` the attempt's partially written
        sstables are deleted, engine scheduling state is restored from a
        pre-attempt snapshot, the simulated clock advances by a capped
        exponential backoff, and the step reruns.  A persistent fault,
        corruption, or an exhausted retry budget sets the sticky
        background error instead and returns None.
        """
        opts = self.options
        attempt = 0
        while True:
            start_number = self._next_file_number
            snapshot = self._capture_background_state()
            try:
                return compute()
            except TransientIOError as exc:
                self._discard_attempt(start_number)
                self._restore_background_state(snapshot)
                if attempt >= opts.fault_retry_limit:
                    self._set_background_error(kind, exc)
                    return None
                self._stats.transient_fault_retries += 1
                if self.tracer is not None:
                    self.tracer.point(
                        "fault.retry", kind=kind, attempt=attempt + 1
                    )
                self._flight_point("fault.retry", kind=kind, attempt=attempt + 1)
                self.clock.advance(
                    min(
                        opts.fault_retry_base_delay * (2 ** attempt),
                        opts.fault_retry_max_delay,
                    )
                )
                attempt += 1
            except (CorruptionError, StorageError) as exc:
                self._discard_attempt(start_number)
                self._restore_background_state(snapshot)
                self._set_background_error(kind, exc)
                return None

    def _discard_attempt(self, start_number: int) -> None:
        """Delete sstables written by a failed compute attempt.

        File numbers stay monotonic — the counter is *not* rewound — so a
        stale table- or block-cache entry keyed by number can never alias
        a different file written later under the same number.
        """
        for number in range(start_number, self._next_file_number):
            self._table_cache.pop(number, None)
            if self._block_cache is not None:
                self._block_cache.drop_file(number)
            name = self._sst_name(number)
            if self.storage.exists(name):
                self.storage.delete(name)

    def _capture_background_state(self):
        """Snapshot engine scheduling state a failed attempt must restore."""
        return None

    def _restore_background_state(self, snapshot) -> None:
        """Restore the :meth:`_capture_background_state` snapshot."""

    def _reset_scheduling_state(self) -> None:
        """Drop stale busy/in-flight markers after resume()."""

    def _append_manifest(self, edit: VersionEdit, account: IoAccount) -> bool:
        """Append an edit to the MANIFEST, retrying transient faults.

        Returns False when the append did not durably reach storage: the
        edit is queued (resume() persists the queue into a fresh MANIFEST)
        and the sticky background error is set.  Callers must then keep
        any on-storage state the *persisted* MANIFEST still references —
        input sstables and WALs — until resume() makes the edit durable.
        """
        assert self._manifest is not None
        if self._manifest_suspect:
            self._pending_manifest_edits.append(edit)
            return False
        opts = self.options
        name = self._manifest.name
        error: Optional[Exception] = None
        for attempt in range(opts.fault_retry_limit + 1):
            size_before = self.storage.size(name)
            try:
                self._manifest.append(edit, account)
                return True
            except TransientIOError as exc:
                error = exc
                if self.storage.size(name) != size_before:
                    # Bytes landed despite the failure (a torn record, or a
                    # full record whose sync failed).  Appending after it
                    # could shadow or duplicate edits at recovery; stop and
                    # let resume() rotate to a fresh MANIFEST.
                    break
                if attempt < opts.fault_retry_limit:
                    self._stats.transient_fault_retries += 1
                    if self.tracer is not None:
                        self.tracer.point(
                            "fault.retry", kind="manifest_append", attempt=attempt + 1
                        )
                    self.clock.advance(
                        min(
                            opts.fault_retry_base_delay * (2 ** attempt),
                            opts.fault_retry_max_delay,
                        )
                    )
            except (CorruptionError, StorageError) as exc:
                error = exc
                break
        assert error is not None
        self._manifest_suspect = True
        self._pending_manifest_edits.append(edit)
        self._set_background_error("MANIFEST append", error)
        return False

    def _rotate_manifest(self, acct: IoAccount) -> None:
        """Persist queued edits by rewriting the MANIFEST.

        The old file may end in a torn or unsynced record, so queued edits
        cannot simply be appended — at recovery the reader stops at the
        bad record and everything behind it would be lost.  Instead the
        old file's intact records and the queued edits are written to a
        fresh MANIFEST and CURRENT flips atomically.
        """
        assert self._manifest is not None
        trc = self.tracer
        rotate_span = (
            trc.span("manifest.rotate", pending=len(self._pending_manifest_edits))
            if trc is not None
            else None
        )
        try:
            self._rotate_manifest_impl(acct)
        finally:
            if rotate_span is not None:
                rotate_span.end()
        self.registry.counter("manifest.rotations").inc()

    def _rotate_manifest_impl(self, acct: IoAccount) -> None:
        assert self._manifest is not None
        old_name = self._manifest.name
        # strict: losing an *intact durable* record here would silently
        # rewrite history; a damaged one must fail the resume instead.
        records = list(LogReader(self.storage, old_name).records(acct, strict=True))
        pending = [edit.encode() for edit in self._pending_manifest_edits]
        if pending and records and records[-1] == pending[0]:
            # The "failed" append actually reached storage completely
            # (only its sync failed); don't write the edit twice.
            pending.pop(0)
        new_name = f"{self.prefix}MANIFEST-{self._alloc_file_number():06d}"
        try:
            log = LogWriter(self.storage, new_name)
            for payload in records + pending:
                log.append(payload, acct)
            # Persist the counter advanced by allocating the new MANIFEST's
            # own number; without this a post-crash recovery could re-bump
            # the counter to below it and a later rotation would append
            # onto the live MANIFEST, duplicating every edit.
            log.append(
                VersionEdit(next_file_number=self._next_file_number).encode(), acct
            )
            log.sync(acct)
            set_current(self.storage, new_name, acct, self.prefix)
        except (CorruptionError, StorageError):
            if self.storage.exists(new_name):
                self.storage.delete(new_name)
            raise
        self._manifest = ManifestWriter(self.storage, new_name)
        self._pending_manifest_edits.clear()
        self._manifest_suspect = False
        self.storage.delete(old_name)

    def resume(self) -> bool:
        """Attempt to leave degraded mode (RocksDB's ``Resume``).

        Waits out in-flight background work, re-verifies that every live
        sstable still opens cleanly, persists any queued version edits
        into a fresh MANIFEST, completes deferred file deletions, then
        clears the error and re-schedules background work.  Returns True
        when the store is healthy again; on failure the store stays
        degraded (reads keep working) and resume() may be called again.
        """
        self._check_open()
        self.executor.wait_all()
        if self._background_error is None:
            return True
        acct = self.storage.foreground_account(self.prefix + "recover")
        try:
            for number in self.sstable_file_numbers():
                # Opening checks footer magic and index/filter checksums.
                self._get_reader(number, acct)
            if self._pending_manifest_edits or self._manifest_suspect:
                self._rotate_manifest(acct)
            for number in self._deferred_retirements:
                self._retire_file(number)
            self._deferred_retirements.clear()
            for name in self._deferred_wal_deletions:
                if self.storage.exists(name):
                    self.storage.delete(name)
            self._deferred_wal_deletions.clear()
            if self._vlog is not None:
                for segment in self._deferred_vlog_retirements:
                    self._vlog.retire_segment(segment)
                self._deferred_vlog_retirements.clear()
        except (CorruptionError, StorageError) as exc:
            self._background_error = BackgroundError(
                f"store degraded to read-only: resume failed: {exc}", cause=exc
            )
            return False
        self._background_error = None
        self._stats.resumes += 1
        if self.tracer is not None:
            self.tracer.point("fault.resume")
        self._reset_scheduling_state()
        # Rescheduled work may hit the same fault and re-degrade the
        # store immediately; report the post-reschedule health honestly.
        self._maybe_schedule_flush()
        self._schedule_compactions()
        self.executor.drain()
        return self._background_error is None

    def _retire_or_defer(self, number: int, durable: bool) -> None:
        """Retire an input file, or hold it until its edit is durable."""
        if durable:
            self._retire_file(number)
        else:
            self._deferred_retirements.append(number)

    # ------------------------------------------------------------------
    # Value-log GC hooks (engines call these around compaction jobs)
    # ------------------------------------------------------------------
    def _vlog_context(
        self, account: IoAccount
    ) -> Optional[VlogCompactionContext]:
        """Fresh GC context for one compaction compute attempt.

        Fresh per *attempt* — a retried attempt must not inherit the
        failed one's relocation bookkeeping (``abandon`` turned those
        copies into stray dead bytes already).

        GC relocation IO is charged to a dedicated ``vlog.gc`` account
        (not the compaction job's ``account``) so the attribution ledger
        separates tree rewrites from value-log GC; job durations add
        :attr:`VlogCompactionContext.seconds` back in, keeping the
        simulated timeline identical to the single-account scheme.
        """
        if self._vlog is None:
            return None
        gc_account = self.storage.background_account(self.prefix + "vlog.gc")
        return VlogCompactionContext(self._vlog, gc_account)

    def _vlog_commit(
        self, gcctx: Optional[VlogCompactionContext], edit: VersionEdit
    ) -> None:
        """Fold a job's GC counters into its edit (before the MANIFEST append)."""
        if gcctx is not None:
            gcctx.commit(edit)

    def _vlog_retire(
        self, gcctx: Optional[VlogCompactionContext], durable: bool
    ) -> None:
        """Delete fully-dead segments, durable-gated like sstable retirement."""
        if gcctx is not None:
            self._deferred_vlog_retirements.extend(gcctx.retire(durable))

    def _switch_wal_file(self) -> None:
        """Abandon the current WAL file after a failed append.

        The memtable's earlier records stay readable in the old file (the
        reader stops exactly at the failed record, which was never
        acknowledged); subsequent records go to a fresh file.  The flush
        that makes this memtable durable reclaims both files.
        """
        try:
            number = self._alloc_file_number()
            self._wal = LogWriter(self.storage, self._wal_name(number))
            self._wal_number = number
        except StorageError as exc:  # pragma: no cover - create is not faulted
            self._set_background_error("WAL rotation", exc)

    # ------------------------------------------------------------------
    # Shared sstable writing
    # ------------------------------------------------------------------
    def _write_sstables(
        self,
        entries: Iterator[Entry],
        account: IoAccount,
        split_bytes: Optional[int],
    ) -> List[FileMetadata]:
        """Write one or more sstables from an ordered entry stream.

        ``split_bytes`` caps each output file (None = single file).
        """
        metas: List[FileMetadata] = []
        builder: Optional[SSTableBuilder] = None
        number = 0
        opts = self.options

        def finish_current() -> None:
            nonlocal builder, number
            if builder is None or builder.num_entries == 0:
                builder = None
                return
            blob, props, _ = builder.finish()
            name = self._sst_name(number)
            self.storage.create(name, charge_factor=opts.compression_ratio)
            if opts.compression_ratio < 1.0:
                account.charge(
                    self.cpu.charge(
                        "compress", self.cpu.compress_per_kb * len(blob) / 1024
                    )
                )
            self.storage.append(name, blob, account)
            self.storage.sync(name, account)
            metas.append(
                FileMetadata(
                    number=number,
                    smallest=props.smallest,
                    largest=props.largest,
                    file_size=props.file_size,
                    num_entries=props.num_entries,
                )
            )
            builder = None

        pending_split = False
        prev_user_key: Optional[bytes] = None
        for key, value in entries:
            # Never split between versions of one user key: two files at
            # the same level sharing a user key would break the disjoint
            # level invariant (matters when snapshots preserve versions).
            if pending_split and key.user_key != prev_user_key:
                finish_current()
                pending_split = False
            if builder is None:
                number = self._alloc_file_number()
                builder = SSTableBuilder(opts.block_bytes, opts.bloom_bits_per_key)
            builder.add(key, value)
            prev_user_key = key.user_key
            if split_bytes is not None and builder.estimated_size >= split_bytes:
                pending_split = True
        finish_current()
        return metas

    # ------------------------------------------------------------------
    # Table cache and file lifecycle
    # ------------------------------------------------------------------
    def _get_reader(self, number: int, account: IoAccount) -> SSTableReader:
        cache = self._table_cache
        reader = cache.get(number)
        if reader is not None:
            cache.move_to_end(number)
            return reader
        try:
            reader = SSTableReader.open(
                self.storage,
                self._sst_name(number),
                account,
                load_bloom=self.options.enable_sstable_bloom,
                block_cache=self._block_cache,
                cache_key=number,
                zero_copy=self.options.zero_copy_blocks,
            )
        except (CorruptionError, StorageError):
            # A failed open may have cached partial metadata for this
            # file; evict so a later retry starts from storage, not from
            # a half-populated cache entry.
            if self._block_cache is not None:
                self._block_cache.drop_file(number)
            raise
        cache[number] = reader
        while len(cache) > self.options.table_cache_size:
            cache.popitem(last=False)
        return reader

    def _ref_file(self, number: int) -> None:
        self._file_refs[number] = self._file_refs.get(number, 0) + 1

    def _unref_file(self, number: int) -> None:
        refs = self._file_refs.get(number, 0) - 1
        if refs <= 0:
            self._file_refs.pop(number, None)
            if number in self._doomed_files:
                self._doomed_files.discard(number)
                self._drop_table_file(number)
        else:
            self._file_refs[number] = refs

    def _retire_file(self, number: int) -> None:
        """Delete a file once no iterator holds a reference to it."""
        if self._file_refs.get(number, 0) > 0:
            self._doomed_files.add(number)
        else:
            self._drop_table_file(number)

    def _drop_table_file(self, number: int) -> None:
        self._table_cache.pop(number, None)
        if self._block_cache is not None:
            self._block_cache.drop_file(number)
        name = self._sst_name(number)
        if self.storage.exists(name):
            self.storage.delete(name)

    # ------------------------------------------------------------------
    # Read helpers
    # ------------------------------------------------------------------
    def _resolve_value(self, value, kind: int, account: IoAccount) -> bytes:
        """Materialize one result value, chasing a value-log pointer."""
        if kind == KIND_VPTR:
            assert self._vlog is not None
            return self._vlog.read_value(
                ValuePointer.decode(bytes(value)), account
            )
        return bytes(value)

    def _visible_entries(
        self, start: bytes, snap: Optional[Snapshot] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Newest visible version of each user key from ``start`` onward."""
        acct = self._user_acct
        snapshot = snap.sequence if snap is not None else self._last_sequence
        iters: List[Iterator[Entry]] = [self._mem.seek(start)]
        iters.extend(imm.seek(start) for imm, _ in self._imm)
        iters.extend(self._table_iterators(start, acct))
        merged = merging_iterator(iters, cpu=self.cpu, account=acct)
        # Pin the value log for the generator's lifetime: consumer code
        # between yields may trigger compactions whose GC would otherwise
        # delete a segment this scan still has pointers into.
        vlog = self._vlog
        if vlog is not None:
            vlog.pin()
        try:
            prev: Optional[bytes] = None
            for key, value in merged:
                if key.sequence > snapshot:
                    continue
                if key.user_key == prev:
                    continue
                prev = key.user_key
                if key.kind == KIND_DELETE:
                    continue
                if key.kind == KIND_VPTR:
                    yield key.user_key, vlog.read_value(
                        ValuePointer.decode(bytes(value)), acct
                    )
                    continue
                # bytes() materializes zero-copy (memoryview) sstable
                # values; a no-op for memtable values (bytes already).
                yield key.user_key, bytes(value)
        finally:
            if vlog is not None:
                vlog.unpin()

    def _visible_entries_reverse(
        self, start: Optional[bytes], snap: Optional[Snapshot] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Newest visible version per user key, user keys descending.

        The merged stream is in *descending internal-key order*, so for
        one user key the versions arrive oldest first; the newest visible
        one is decided when the user key changes.
        """
        import heapq as _heapq

        acct = self._user_acct
        snapshot = snap.sequence if snap is not None else self._last_sequence
        iters: List[Iterator[Entry]] = [self._mem.reverse_iter(start)]
        iters.extend(imm.reverse_iter(start) for imm, _ in self._imm)
        iters.extend(self._table_iterators_reverse(start, acct))
        merged = _heapq.merge(*iters, key=lambda e: e[0], reverse=True)
        vlog = self._vlog
        if vlog is not None:
            vlog.pin()
        try:
            current_key: Optional[bytes] = None
            candidate: Optional[Entry] = None

            def emit(entry: Optional[Entry]):
                if entry is not None and entry[0].kind != KIND_DELETE:
                    if entry[0].kind == KIND_VPTR:
                        return entry[0].user_key, vlog.read_value(
                            ValuePointer.decode(bytes(entry[1])), acct
                        )
                    # bytes() materializes zero-copy sstable memoryviews.
                    return entry[0].user_key, bytes(entry[1])
                return None

            for key, value in merged:
                acct.charge(self.cpu.charge("iterator_step", self.cpu.iterator_step))
                if key.sequence > snapshot:
                    continue
                if key.user_key != current_key:
                    out = emit(candidate)
                    if out is not None:
                        yield out
                    current_key = key.user_key
                    candidate = (key, value)
                else:
                    # Ascending sequence within the key: later entry is newer.
                    candidate = (key, value)
            out = emit(candidate)
            if out is not None:
                yield out
        finally:
            if vlog is not None:
                vlog.unpin()

    def _table_iterators_reverse(
        self, start: Optional[bytes], account: IoAccount
    ) -> List[Iterator[Entry]]:
        """Descending-order entry iterators over persistent state."""
        raise NotImplementedError(f"{type(self).__name__} cannot iterate backward")

    def _note_seek(self) -> None:
        """Hook for seek-triggered compaction policies."""

    def _on_insert_key(self, key: bytes) -> None:
        """Hook invoked for every inserted key (FLSM guard selection)."""

    # ==================================================================
    # Recovery
    # ==================================================================
    def _open_or_recover(self) -> None:
        acct = self.storage.foreground_account(self.prefix + "recover")
        current = read_current(self.storage, acct, self.prefix)
        if current is None:
            self._create_fresh(acct)
        else:
            self._recover(current, acct)
        self._post_recover()

    def _post_recover(self) -> None:
        """Hook run after recovery (FLSM re-seeds uncommitted guards)."""

    def _create_fresh(self, acct: IoAccount) -> None:
        manifest_name = f"{self.prefix}MANIFEST-{1:06d}"
        self._next_file_number = 2
        self._wal_number = self._alloc_file_number()
        self._manifest = ManifestWriter(self.storage, manifest_name)
        edit = VersionEdit(
            last_sequence=0,
            next_file_number=self._next_file_number,
            log_number=self._wal_number,
        )
        self._manifest.append(edit, acct)
        set_current(self.storage, manifest_name, acct, self.prefix)
        if self.options.wal_enabled:
            self._wal = LogWriter(self.storage, self._wal_name(self._wal_number))

    def _recover(self, manifest_name: str, acct: IoAccount) -> None:
        log_number = 0
        vlog_dead: Dict[int, int] = {}
        vlog_deleted: set = set()
        for edit in ManifestReader(self.storage, manifest_name).edits(acct):
            if edit.last_sequence is not None:
                self._last_sequence = max(self._last_sequence, edit.last_sequence)
            if edit.next_file_number is not None:
                self._next_file_number = max(self._next_file_number, edit.next_file_number)
            if edit.log_number is not None:
                log_number = max(log_number, edit.log_number)
            for level, key in edit.new_guards:
                self._recover_guard(level, key)
            for level, key in edit.deleted_guards:
                self._recover_guard_deletion(level, key)
            for level, meta, marker, guard_key in edit.new_files:
                self._recover_file(level, meta, marker, guard_key)
            for level, number in edit.deleted_files:
                self._recover_drop_file(level, number)
            for segment, dead in edit.vlog_dead:
                vlog_dead[segment] = vlog_dead.get(segment, 0) + dead
            for segment in edit.deleted_vlog_segments:
                vlog_deleted.add(segment)
                vlog_dead.pop(segment, None)
        self._manifest = ManifestWriter(self.storage, manifest_name)
        # Files written by in-flight background jobs that never committed
        # are orphans; their numbers may exceed the persisted counter
        # (edits carry next_file_number only when the job commits).
        self._remove_orphans()
        for name in self.storage.list_files(self.prefix):
            if name.endswith((".sst", ".log")):
                number = int(name[len(self.prefix) : -4])
            elif name.endswith(".vlg"):
                number = int(name[len(self.prefix) : -4])
            elif name.startswith(self.prefix + "MANIFEST-"):
                # The live MANIFEST's number is allocated at rotation time;
                # counting it here keeps the counter ahead of it even when
                # the crash landed before that allocation was persisted.
                number = int(name[len(self.prefix) + len("MANIFEST-") :])
            else:
                continue
            self._next_file_number = max(self._next_file_number, number + 1)
        if self._vlog is not None:
            # Before WAL replay: replayed pointer ops validate against the
            # recovered segments.
            self._vlog.recover(vlog_dead, vlog_deleted)
        self._replay_wals(log_number, acct)
        self._wal_number = self._alloc_file_number()
        if self.options.wal_enabled:
            self._wal = LogWriter(self.storage, self._wal_name(self._wal_number))
        edit = VersionEdit(
            last_sequence=self._last_sequence,
            next_file_number=self._next_file_number,
            log_number=self._wal_number,
        )
        self._manifest.append(edit, acct)
        self._remove_orphans()

    def _replay_wals(self, log_number: int, acct: IoAccount) -> None:
        """Replay live WALs into the memtable and flush them to Level 0.

        With ``sync_writes`` (or ``strict_wal_recovery``) the reader runs
        in strict mode: every acknowledged record was synced, so a bad
        record *below* the durable boundary means acknowledged data was
        damaged and recovery raises :class:`CorruptionError` instead of
        silently truncating (a torn unsynced tail still stops normally).
        """
        strict = self.options.strict_wal_recovery
        if strict is None:
            strict = self.options.sync_writes
        wal_names = []
        for name in self.storage.list_files(self.prefix):
            if name.endswith(".log"):
                number = int(name[len(self.prefix) : -4])
                if number >= log_number:
                    wal_names.append((number, name))
        wal_names.sort()
        recovered = 0
        for _, name in wal_names:
            for record in LogReader(self.storage, name).records(acct, strict=strict):
                seq, ops = decode_batch(record)
                if not self._batch_pointers_intact(seq, ops, acct, strict):
                    # A pointer op leads to a torn value-log record: the
                    # batch was never acknowledged (acknowledged pointers
                    # sync their records before the WAL record), so drop
                    # it whole — batches are atomic — while still burning
                    # its sequence numbers.
                    self._last_sequence = max(
                        self._last_sequence, seq + len(ops) - 1
                    )
                    continue
                for i, (kind, key, value) in enumerate(ops):
                    op_seq = seq + i
                    if op_seq <= self._last_sequence:
                        continue  # already durable in an sstable
                    self._mem.add(op_seq, kind, key, value)
                    recovered += 1
                self._last_sequence = max(self._last_sequence, seq + len(ops) - 1)
        if recovered:
            metas = self._write_sstables(iter(self._mem), acct, split_bytes=None)
            edit = VersionEdit(
                last_sequence=self._last_sequence,
                next_file_number=self._next_file_number,
            )
            self._install_flush(metas, edit)
            assert self._manifest is not None
            self._manifest.append(edit, acct)
            self._mem = Memtable(self.seed)
        for _, name in wal_names:
            self.storage.delete(name)

    def _batch_pointers_intact(
        self, seq: int, ops: List[Tuple[int, bytes, bytes]], acct: IoAccount, strict: bool
    ) -> bool:
        """Validate every value pointer a replayed WAL batch carries.

        A pointer whose record fails to parse beyond its segment's synced
        boundary is the value-log half of a torn write — the batch is
        droppable (never acknowledged).  In strict mode a bad record
        *inside* the synced region means acknowledged data was damaged
        and recovery fails loudly, mirroring strict WAL replay.
        """
        vlog = self._vlog
        if vlog is None:
            if any(kind == KIND_VPTR for kind, _, _ in ops):
                raise CorruptionError(
                    "WAL contains value-log pointers but value separation "
                    "is disabled; reopen with value_separation_bytes set"
                )
            return True
        for kind, key, value in ops:
            if kind != KIND_VPTR:
                continue
            try:
                pointer = ValuePointer.decode(bytes(value))
            except CorruptionError:
                return False
            if vlog.pointer_intact(pointer, acct):
                continue
            if (
                strict
                and pointer.offset + pointer.record_length
                <= vlog.synced_size(pointer.segment)
            ):
                raise CorruptionError(
                    f"WAL batch at sequence {seq} references a damaged "
                    f"value-log record inside the synced region of "
                    f"segment {pointer.segment}"
                )
            return False
        return True

    def _remove_orphans(self) -> None:
        """Delete sstables not referenced by the recovered version."""
        live = set(self.sstable_file_numbers())
        for name in self.storage.list_files(self.prefix):
            if name.endswith(".sst"):
                number = int(name[len(self.prefix) : -4])
                if number not in live:
                    self.storage.delete(name)

    # ==================================================================
    # Naming and bookkeeping
    # ==================================================================
    def _alloc_file_number(self) -> int:
        number = self._next_file_number
        self._next_file_number += 1
        return number

    def _sst_name(self, number: int) -> str:
        return f"{self.prefix}{number:06d}.sst"

    def _wal_name(self, number: int) -> str:
        return f"{self.prefix}{number:06d}.log"

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

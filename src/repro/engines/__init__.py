"""Key-value store engines.

``base`` defines the store interface and the machinery common to every
LSM-family engine (WAL, memtable rotation, background flush/compaction
scheduling, write stalls, recovery).  ``lsm`` is the leveled-LSM baseline
standing in for LevelDB / HyperLevelDB / RocksDB via configuration presets;
``btree`` is the B+tree store (the KyotoCabinet comparison of paper section
2.2); ``wiredtiger`` is the checkpoint+journal engine MongoDB defaults to.
The FLSM/PebblesDB engine lives in :mod:`repro.core`.
"""

from repro.engines.base import DBIterator, KeyValueStore, Snapshot, StoreStats
from repro.engines.options import StoreOptions
from repro.engines.registry import ENGINES, create_store

__all__ = [
    "DBIterator",
    "KeyValueStore",
    "Snapshot",
    "StoreStats",
    "StoreOptions",
    "ENGINES",
    "create_store",
]

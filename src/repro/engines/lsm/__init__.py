"""Leveled log-structured merge tree engine (the paper's baselines)."""

from repro.engines.lsm.store import LeveledLSMStore

__all__ = ["LeveledLSMStore"]

"""Classic leveled LSM store (LevelDB-family baseline).

Invariant (paper section 2.2): every level except Level 0 holds sstables
with pairwise-disjoint key ranges, so a lookup reads at most one file per
level.  The price is the write amplification the paper attacks: compacting
a file into level *i+1* rewrites every overlapping file there.

Presets (see :mod:`repro.engines.options`) differentiate LevelDB,
HyperLevelDB, and RocksDB by memtable size, Level-0 limits, worker count,
and how many files one compaction pass takes.  LevelDB's trivial-move
optimization is implemented: a file that overlaps nothing in the next
level moves by metadata edit alone, which is why sequential insertion is
nearly free for LSM but not for FLSM (paper section 4.5).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.engines.base import Entry, LSMStoreBase
from repro.memtable.memtable import GetResult
from repro.sim.storage import IoAccount
from repro.sstable import compaction_iterator, merging_iterator
from repro.util.keys import InternalKey, KIND_PUT, KIND_SEEK, MAX_SEQUENCE
from repro.util.murmur import murmur3_64
from repro.version import VersionEdit
from repro.version.files import FileMetadata
from repro.version.manifest import GUARD_NONE


class LeveledLSMStore(LSMStoreBase):
    """Leveled-compaction LSM engine."""

    def __init__(self, *args, **kwargs) -> None:
        self._levels: List[List[FileMetadata]] = []
        self._busy: Set[int] = set()
        self._compact_pointer: Dict[int, bytes] = {}
        self._seek_overflow: List[Tuple[int, FileMetadata]] = []
        #: Optional compaction trace for the Figure 2.1 illustration:
        #: (from_level, input_numbers, output_numbers, bytes_written).
        self.compaction_trace: Optional[List[Tuple[int, List[int], List[int], int]]] = None
        super().__init__(*args, **kwargs)
        while len(self._levels) < self.options.num_levels:
            self._levels.append([])

    # ==================================================================
    # State installation
    # ==================================================================
    def _install_flush(self, metas: List[FileMetadata], edit: VersionEdit) -> None:
        while not self._levels:  # recovery may flush before levels exist
            self._levels.append([])
        for meta in metas:
            self._levels[0].insert(0, meta)
            edit.add_file(0, meta, GUARD_NONE)

    def _level0_file_count(self) -> int:
        return len(self._levels[0]) if self._levels else 0

    def level_sizes(self) -> List[int]:
        return [sum(f.file_size for f in level) for level in self._levels]

    def sstable_file_numbers(self) -> List[int]:
        return [f.number for level in self._levels for f in level]

    def sstable_sizes(self) -> List[int]:
        """Sizes of all live sstables (Table 5.1 input)."""
        return [f.file_size for level in self._levels for f in level]

    def files_per_level(self) -> List[int]:
        return [len(level) for level in self._levels]

    def live_files(self) -> List[FileMetadata]:
        return [f for level in self._levels for f in level]

    def compact_range(self, lo: bytes, hi: bytes) -> None:
        """Compact all data overlapping ``[lo, hi]`` to the deepest level
        holding it (LevelDB's CompactRange restricted to a key range)."""
        self.flush_memtable()
        self.executor.wait_all()
        for level in range(0, len(self._levels) - 1):
            while True:
                inputs = [
                    f
                    for f in self._levels[level]
                    if f.overlaps(lo, hi) and f.number not in self._busy
                ]
                if not inputs:
                    break
                next_inputs = self._overlapping(level + 1, inputs)
                if any(f.number in self._busy for f in next_inputs):
                    break
                if not self._submit_protected(level, inputs, next_inputs):
                    return
                self.executor.wait_all()

    # ==================================================================
    # Reads
    # ==================================================================
    def _get_from_tables(self, key: bytes, snapshot: int, account: IoAccount) -> GetResult:
        # One body for both the traced and untraced paths (an extra call
        # per get is measurable); the try/finally is free when nothing
        # raises.
        trc = self.tracer
        span = trc.span("table.search") if trc is not None else None
        try:
            # Level 0: files may overlap arbitrarily (e.g. after RepairDB
            # placed everything there), so the newest matching version
            # across all candidates wins, decided by sequence number.
            # One interned probe key serves every table probed below, and
            # one murmur digest serves every bloom filter screened.
            probe = InternalKey(key, min(snapshot, MAX_SEQUENCE), KIND_SEEK)
            kh = murmur3_64(key)
            get_reader = self._get_reader
            probed = 0
            bloom_skipped = 0
            best: Optional[GetResult] = None
            level_probed = level_skipped = 0
            for meta in self._levels[0]:
                if not meta.overlaps(key, key):
                    continue
                reader = get_reader(meta.number, account)
                if not reader.may_contain(key, account, kh):
                    level_skipped += 1
                    continue
                level_probed += 1
                result = reader.get(key, snapshot, account, probe)
                if result.found and (best is None or result.sequence > best.sequence):
                    best = result
            if level_skipped:
                self._probe_bloom[0] += level_skipped
                bloom_skipped += level_skipped
            if level_probed:
                self._probe_files[0] += level_probed
                probed += level_probed
            if best is not None:
                if span is not None:
                    span.set(
                        level=0,
                        files_probed=probed,
                        bloom_skipped=bloom_skipped,
                        found=True,
                    )
                return best
            # Deeper levels: at most one candidate file each.
            for level in range(1, len(self._levels)):
                files = self._levels[level]
                if not files:
                    continue
                account.charge(
                    self.cpu.charge("level_binary_search", self.cpu.level_binary_search)
                )
                meta = self._find_file(files, key)
                if meta is None:
                    continue
                reader = get_reader(meta.number, account)
                if not reader.may_contain(key, account, kh):
                    self._probe_bloom[level] += 1
                    bloom_skipped += 1
                    continue
                self._probe_files[level] += 1
                probed += 1
                result = reader.get(key, snapshot, account, probe)
                if result.found:
                    if span is not None:
                        span.set(
                            level=level,
                            files_probed=probed,
                            bloom_skipped=bloom_skipped,
                            found=True,
                        )
                    return result
            if span is not None:
                span.set(files_probed=probed, bloom_skipped=bloom_skipped, found=False)
            return GetResult(False, False, None)
        except BaseException as exc:
            if span is not None:
                span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            if span is not None:
                span.end()

    @staticmethod
    def _find_file(files: List[FileMetadata], key: bytes) -> Optional[FileMetadata]:
        """The single file in a disjoint level that may contain ``key``."""
        lo, hi = 0, len(files)
        while lo < hi:
            mid = (lo + hi) // 2
            if files[mid].largest.user_key < key:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(files):
            return None
        meta = files[lo]
        return meta if meta.smallest.user_key <= key else None

    def _table_iterators(
        self, start: Optional[bytes], account: IoAccount
    ) -> List[Iterator[Entry]]:
        start_key = start if start is not None else b""
        probe = InternalKey(start_key, MAX_SEQUENCE, KIND_SEEK)
        iters: List[Iterator[Entry]] = []
        touched: List[FileMetadata] = []
        for meta in list(self._levels[0]):
            if meta.largest.user_key < start_key:
                continue
            touched.append(meta)
            iters.append(self._file_iter(meta, probe, account))
        for level in range(1, len(self._levels)):
            files = list(self._levels[level])
            if not files:
                continue
            idx = self._file_index_for(files, start_key)
            if idx >= len(files):
                continue
            touched.append(files[idx])
            iters.append(self._level_iter(files, idx, probe, account))
        self._charge_seek_costs(touched, account)
        return iters

    def _charge_seek_costs(self, metas: List[FileMetadata], account: IoAccount) -> None:
        if metas:
            account.charge(
                self.cpu.charge(
                    "iterator_seek",
                    self.cpu.iterator_seek_per_table * len(metas),
                )
            )
        if not self.options.seek_compaction_enabled:
            return
        for meta in metas:
            meta.allowed_seeks -= 1
            if meta.allowed_seeks == 0:
                level = self._level_of(meta.number)
                if level is not None:
                    self._seek_overflow.append((level, meta))

    @staticmethod
    def _file_index_for(files: List[FileMetadata], key: bytes) -> int:
        lo, hi = 0, len(files)
        while lo < hi:
            mid = (lo + hi) // 2
            if files[mid].largest.user_key < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _file_iter(
        self, meta: FileMetadata, probe: InternalKey, account: IoAccount
    ) -> Iterator[Entry]:
        self._ref_file(meta.number)
        try:
            reader = self._get_reader(meta.number, account)
            yield from reader.seek(probe, account)
        finally:
            self._unref_file(meta.number)

    def _level_iter(
        self,
        files: List[FileMetadata],
        idx: int,
        probe: InternalKey,
        account: IoAccount,
    ) -> Iterator[Entry]:
        for number in (f.number for f in files[idx:]):
            self._ref_file(number)
        try:
            first = True
            for meta in files[idx:]:
                reader = self._get_reader(meta.number, account)
                if first:
                    yield from reader.seek(probe, account)
                    first = False
                else:
                    yield from reader.iter_all(account)
        finally:
            for number in (f.number for f in files[idx:]):
                self._unref_file(number)

    def _table_iterators_reverse(
        self, start: Optional[bytes], account: IoAccount
    ) -> List[Iterator[Entry]]:
        bound = start  # None = unbounded
        iters: List[Iterator[Entry]] = []
        for meta in list(self._levels[0]):
            if bound is not None and meta.smallest.user_key > bound:
                continue
            iters.append(self._file_iter_reverse(meta, bound, account))
        for level in range(1, len(self._levels)):
            files = list(self._levels[level])
            if not files:
                continue
            iters.append(self._level_iter_reverse(files, bound, account))
        return iters

    def _file_iter_reverse(
        self, meta: FileMetadata, bound: Optional[bytes], account: IoAccount
    ) -> Iterator[Entry]:
        self._ref_file(meta.number)
        try:
            reader = self._get_reader(meta.number, account)
            yield from reader.iter_reverse(account, max_user_key=bound)
        finally:
            self._unref_file(meta.number)

    def _level_iter_reverse(
        self, files: List[FileMetadata], bound: Optional[bytes], account: IoAccount
    ) -> Iterator[Entry]:
        for number in (f.number for f in files):
            self._ref_file(number)
        try:
            for meta in reversed(files):
                if bound is not None and meta.smallest.user_key > bound:
                    continue
                reader = self._get_reader(meta.number, account)
                yield from reader.iter_reverse(account, max_user_key=bound)
        finally:
            for number in (f.number for f in files):
                self._unref_file(number)

    # ==================================================================
    # Compaction
    # ==================================================================
    def _schedule_compactions(self) -> None:
        if self._background_error is not None:
            return
        for _ in range(len(self._levels) * 2):
            if not self._pick_and_submit():
                break

    def _pick_and_submit(self) -> bool:
        self._l0_conflict_blocked = False
        spec = self._pick_compaction()
        if spec is None:
            return False
        level, inputs, next_inputs = spec
        return self._submit_protected(level, inputs, next_inputs)

    def _scheduler_mode(self) -> str:
        # Leveled compaction already serializes at file granularity: jobs
        # conflict only when their input/output file sets intersect.
        return "file"

    def _submit_protected(
        self,
        level: int,
        inputs: List[FileMetadata],
        next_inputs: List[FileMetadata],
    ) -> bool:
        """Submit a compaction with fault retries; False once degraded."""
        self._run_protected(
            "compaction", lambda: self._submit_compaction(level, inputs, next_inputs)
        )
        return self._background_error is None

    # --- fault-rollback hooks (see LSMStoreBase._run_protected) ---------
    def _capture_background_state(self):
        return (
            set(self._busy),
            dict(self._compact_pointer),
            list(self._seek_overflow),
            self._compactions_inflight,
        )

    def _restore_background_state(self, snapshot) -> None:
        (
            self._busy,
            self._compact_pointer,
            self._seek_overflow,
            self._compactions_inflight,
        ) = snapshot

    def _reset_scheduling_state(self) -> None:
        # resume() runs after wait_all(): no job is in flight, so any
        # remaining busy marker is stale.
        self._busy.clear()
        self._compactions_inflight = 0

    def _pick_compaction(
        self,
    ) -> Optional[Tuple[int, List[FileMetadata], List[FileMetadata]]]:
        opts = self.options
        # Priority 1: Level 0 file count.
        l0 = [f for f in self._levels[0] if f.number not in self._busy]
        if len(self._levels[0]) >= opts.level0_compaction_trigger:
            if len(l0) == len(self._levels[0]):  # nothing already being compacted
                next_inputs = self._overlapping(1, l0)
                if all(f.number not in self._busy for f in next_inputs):
                    return (0, l0, next_inputs)
                self._l0_conflict_blocked = True
                self._stats.compaction_conflicts += 1
            else:
                self._l0_conflict_blocked = True
                self._stats.compaction_conflicts += 1
        # Priority 2: level size vs target.
        best_level, best_score = -1, opts.compaction_eagerness
        sizes = self.level_sizes()
        for level in range(1, len(self._levels) - 1):
            if not self._levels[level]:
                continue
            score = sizes[level] / opts.level_target_bytes(level)
            if score >= best_score:
                best_level, best_score = level, score
        if best_level > 0:
            picked = self._pick_level_inputs(best_level)
            if picked is not None:
                return picked
        # Priority 3: seek-triggered compaction.
        while self._seek_overflow:
            level, meta = self._seek_overflow.pop(0)
            if meta.number in self._busy or self._level_of(meta.number) != level:
                continue
            if level >= len(self._levels) - 1:
                continue
            next_inputs = self._overlapping(level + 1, [meta])
            if all(f.number not in self._busy for f in next_inputs):
                return (level, [meta], next_inputs)
        return None

    def _pick_level_inputs(
        self, level: int
    ) -> Optional[Tuple[int, List[FileMetadata], List[FileMetadata]]]:
        opts = self.options
        files = [f for f in self._levels[level] if f.number not in self._busy]
        if not files:
            return None
        count = 1 if opts.compaction_policy == "round_robin" else opts.compaction_max_input_files
        if opts.compaction_policy == "min_overlap":
            inputs = self._min_overlap_window(level, files, count)
        else:
            pointer = self._compact_pointer.get(level, b"")
            start = 0
            for i, meta in enumerate(files):
                if meta.largest.user_key > pointer:
                    start = i
                    break
            inputs = files[start : start + count]
            if not inputs:
                inputs = files[:count]
        next_inputs = self._overlapping(level + 1, inputs)
        if any(f.number in self._busy for f in next_inputs):
            return None
        return (level, inputs, next_inputs)

    def _min_overlap_window(
        self, level: int, files: List[FileMetadata], count: int
    ) -> List[FileMetadata]:
        """HyperLevelDB's compaction choice: the contiguous window of
        files whose next-level overlap is smallest relative to its size,
        minimizing the rewrite IO of the pass."""
        best: List[FileMetadata] = files[:count]
        best_score = float("inf")
        for start in range(len(files)):
            window = files[start : start + count]
            input_bytes = sum(f.file_size for f in window)
            if input_bytes == 0:
                continue
            overlap = sum(
                f.file_size for f in self._overlapping(level + 1, window)
            )
            score = overlap / input_bytes
            if score < best_score:
                best_score = score
                best = window
        return best

    def _overlapping(self, level: int, inputs: List[FileMetadata]) -> List[FileMetadata]:
        if level >= len(self._levels):
            return []
        lo = min(f.smallest.user_key for f in inputs)
        hi = max(f.largest.user_key for f in inputs)
        return [f for f in self._levels[level] if f.overlaps(lo, hi)]

    def _submit_compaction(
        self,
        level: int,
        inputs: List[FileMetadata],
        next_inputs: List[FileMetadata],
    ) -> None:
        opts = self.options
        target = level + 1
        all_inputs = inputs + next_inputs
        for meta in all_inputs:
            self._busy.add(meta.number)
        self._note_compaction_inflight(1)

        # Trivial move: nothing to merge with and inputs mutually disjoint —
        # a metadata-only edit, no IO.  This is LevelDB's fast path that
        # makes sequential insertion so cheap (paper section 4.5).
        if (
            opts.allow_trivial_move
            and not next_inputs
            and self._mutually_disjoint(inputs)
        ):
            self._submit_trivial_move(level, inputs)
            return

        acct = self.storage.background_account(
            self.prefix + f"compaction.level.L{level}"
        )
        input_entries = sum(f.num_entries for f in all_inputs)
        iters = [
            self._get_reader(f.number, acct).iter_all(acct, cache_insert=False)
            for f in all_inputs
        ]
        drop = self._is_bottom(target)
        gcctx = self._vlog_context(acct)
        merged = compaction_iterator(
            merging_iterator(iters),
            drop_tombstones=drop,
            snapshots=self._active_snapshots(),
            on_drop=gcctx.on_drop if gcctx is not None else None,
        )
        stream = merged if gcctx is None else gcctx.rewrite(merged)
        try:
            metas = self._write_sstables(stream, acct, split_bytes=opts.target_file_bytes)
        except BaseException:
            # A faulted attempt may have relocated records already; the
            # retry gets a fresh context, so these copies are stray dead.
            if gcctx is not None:
                gcctx.abandon()
            raise
        acct.charge(
            self.cpu.charge(
                "compaction_merge",
                self.cpu.merge_entry * input_entries
                + self.cpu.bloom_build_per_key * sum(m.num_entries for m in metas),
            )
        )
        edit = VersionEdit(next_file_number=self._next_file_number)
        for meta in inputs:
            edit.delete_file(level, meta.number)
        for meta in next_inputs:
            edit.delete_file(target, meta.number)
        for meta in metas:
            edit.add_file(target, meta, GUARD_NONE)
        if inputs:
            self._compact_pointer[level] = max(f.largest.user_key for f in inputs)
        bytes_written = sum(m.file_size for m in metas)
        if self.compaction_trace is not None:
            self.compaction_trace.append(
                (
                    level,
                    [f.number for f in all_inputs],
                    [m.number for m in metas],
                    bytes_written,
                )
            )

        trc = self.tracer
        parent = trc.current() if trc is not None else None
        job_ref: List = []

        def apply() -> None:
            self._apply_compaction_edit(
                level, target, inputs, next_inputs, metas, edit, gcctx
            )
            self._note_compaction_inflight(-1)
            self._stats.compactions += 1
            self._stats.compaction_bytes_written += bytes_written
            if trc is not None and job_ref:
                job = job_ref[0]
                span = trc.start_span(
                    "compaction",
                    kind="background",
                    parent=parent,
                    start=job.start,
                    level=level,
                    files_in=len(all_inputs),
                    files_out=len(metas),
                    bytes_in=sum(f.file_size for f in all_inputs),
                    bytes_out=bytes_written,
                    queue_wait=job.queue_wait,
                )
                span.end(at=job.completion)
            self._schedule_compactions()

        # GC relocation IO lives on its own ledger account; the job's
        # duration covers both so the timeline matches the pre-split one.
        job_seconds = acct.seconds + (gcctx.seconds if gcctx is not None else 0.0)
        self._compaction_seconds.record(job_seconds)
        bytes_in = sum(f.file_size for f in all_inputs)
        start_at = self._compaction_start_time(bytes_in + bytes_written)
        job_ref.append(
            self.executor.submit("compaction", job_seconds, apply, at=start_at)
        )

    @staticmethod
    def _mutually_disjoint(metas: List[FileMetadata]) -> bool:
        ordered = sorted(metas, key=lambda f: f.smallest)
        return all(
            a.largest.user_key < b.smallest.user_key
            for a, b in zip(ordered, ordered[1:])
        )

    def _submit_trivial_move(self, level: int, inputs: List[FileMetadata]) -> None:
        target = level + 1
        edit = VersionEdit()
        for meta in inputs:
            edit.delete_file(level, meta.number)
            edit.add_file(target, meta, GUARD_NONE)

        trc = self.tracer
        parent = trc.current() if trc is not None else None
        job_ref: List = []

        def apply() -> None:
            for meta in inputs:
                self._remove_from_level(level, meta.number)
                insort(self._levels[target], meta, key=lambda f: f.smallest)
                self._busy.discard(meta.number)
            manifest_acct = self.storage.background_account(self.prefix + "manifest")
            # Metadata-only: no file moves, so nothing to defer on failure.
            self._append_manifest(edit, manifest_acct)
            self._note_compaction_inflight(-1)
            self._stats.compactions += 1
            if trc is not None and job_ref:
                job = job_ref[0]
                span = trc.start_span(
                    "compaction.move",
                    kind="background",
                    parent=parent,
                    start=job.start,
                    level=level,
                    files_in=len(inputs),
                )
                span.end(at=job.completion)
            self._schedule_compactions()

        job_ref.append(self.executor.submit("move", 1.0e-5, apply))

    def _apply_compaction_edit(
        self,
        level: int,
        target: int,
        inputs: List[FileMetadata],
        next_inputs: List[FileMetadata],
        metas: List[FileMetadata],
        edit: VersionEdit,
        gcctx=None,
    ) -> None:
        manifest_acct = self.storage.background_account(self.prefix + "manifest")
        # Value-log GC counters join the edit before the append so recovery
        # replays the same liveness state (and relocated records are synced
        # before the manifest can make them reachable).
        self._vlog_commit(gcctx, edit)
        # The edit must reach the MANIFEST before any input file dies: if
        # it does not, crash recovery replays the old version, which still
        # references the inputs, so their deletion is deferred to resume().
        durable = self._append_manifest(edit, manifest_acct)
        self._vlog_retire(gcctx, durable)
        for meta in inputs:
            self._remove_from_level(level, meta.number)
            self._busy.discard(meta.number)
            self._retire_or_defer(meta.number, durable)
        for meta in next_inputs:
            self._remove_from_level(target, meta.number)
            self._busy.discard(meta.number)
            self._retire_or_defer(meta.number, durable)
        for meta in metas:
            insort(self._levels[target], meta, key=lambda f: f.smallest)

    def _remove_from_level(self, level: int, number: int) -> None:
        self._levels[level] = [f for f in self._levels[level] if f.number != number]

    def _is_bottom(self, level: int) -> bool:
        """True when no live data exists below ``level``."""
        return all(not self._levels[l] for l in range(level + 1, len(self._levels)))

    def _level_of(self, number: int) -> Optional[int]:
        for level, files in enumerate(self._levels):
            if any(f.number == number for f in files):
                return level
        return None

    def force_full_compaction(self) -> None:
        """LevelDB's ``CompactRange``: merge every level into the next
        until all data sits at the deepest populated level and tombstones
        are garbage collected."""
        self.flush_memtable()
        self.executor.wait_all()
        for level in range(0, len(self._levels) - 1):
            while self._levels[level]:
                inputs = [
                    f for f in self._levels[level] if f.number not in self._busy
                ]
                if not inputs:
                    break
                next_inputs = self._overlapping(level + 1, inputs)
                if any(f.number in self._busy for f in next_inputs):
                    break
                if not self._submit_protected(level, inputs, next_inputs):
                    return
                self.executor.wait_all()

    # ==================================================================
    # Recovery plumbing
    # ==================================================================
    def _recover_file(
        self, level: int, meta: FileMetadata, marker: int, guard_key: bytes
    ) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
        if level == 0:
            self._levels[0].insert(0, meta)
        else:
            insort(self._levels[level], meta, key=lambda f: f.smallest)

    def _recover_drop_file(self, level: int, number: int) -> None:
        if level < len(self._levels):
            self._remove_from_level(level, number)

    # ==================================================================
    # Diagnostics
    # ==================================================================
    def layout(self) -> str:
        """Human-readable level map (the Figure 2.1 style illustration)."""
        lines = []
        for level, files in enumerate(self._levels):
            if not files and level > 1:
                continue
            parts = [
                f"[{f.smallest.user_key!r}..{f.largest.user_key!r}#{f.number}]"
                for f in files
            ]
            lines.append(f"Level {level}: " + (" ".join(parts) if parts else "(empty)"))
        return "\n".join(lines)

    def check_invariants(self) -> None:
        for level in range(1, len(self._levels)):
            files = self._levels[level]
            for a, b in zip(files, files[1:]):
                assert a.smallest <= a.largest, "file range inverted"
                assert a.largest.user_key < b.smallest.user_key, (
                    f"level {level} files overlap: {a.largest!r} vs {b.smallest!r}"
                )
        numbers = self.sstable_file_numbers()
        assert len(numbers) == len(set(numbers)), "duplicate file numbers"
        for number in numbers:
            if number not in self._busy:
                assert self.storage.exists(self._sst_name(number)), (
                    f"live sstable missing on storage: {number}"
                )

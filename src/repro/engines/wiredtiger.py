"""WiredTiger-style engine: B-tree with journaling and checkpoints.

MongoDB's default storage engine is not an LSM: updates happen in an
in-memory B-tree, a journal (write-ahead log) makes them durable, and a
periodic *checkpoint* writes every dirty page (paper section 5.4
configures it with a 16 MB in-memory log).  Compared to the write-through
B+tree this batches page writes — each page absorbs many updates between
checkpoints — so total write IO sits between LSM stores and KyotoCabinet,
matching Figure 5.6(b) where RocksDB writes ~40% more IO than WiredTiger.

Checkpoints run on a background timeline; while a checkpoint is still in
flight and the dirty set has grown past twice the trigger, writes stall
(cache-eviction pressure in the real engine).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.engines.base import DBIterator, KeyValueStore, StatsCounters, StoreStats
from repro.obs.metrics import MetricsRegistry
from repro.engines.btree.bptree import PAGE_SIZE, BPlusTree
from repro.errors import InvalidArgumentError, StoreClosedError
from repro.sim.executor import BackgroundExecutor, Job
from repro.sim.storage import SimulatedStorage
from repro.wal import LogReader, LogWriter, decode_batch, encode_batch
from repro.util.keys import KIND_DELETE, KIND_PUT


class WiredTigerStore(KeyValueStore):
    """Checkpoint + journal B-tree store."""

    def __init__(
        self,
        storage: SimulatedStorage,
        prefix: str = "wt/",
        checkpoint_dirty_bytes: int = 256 * 1024,
        fanout: int = 128,
    ) -> None:
        self.storage = storage
        self.prefix = prefix
        self.cpu = storage.cpu
        self.checkpoint_dirty_bytes = checkpoint_dirty_bytes
        self._tree = BPlusTree(fanout)
        self._acct = storage.foreground_account(prefix + "user")
        self.executor = BackgroundExecutor(storage.clock, workers=1)
        self._data_file = prefix + "tree.db"
        if not storage.exists(self._data_file):
            storage.create(self._data_file)
        self._journal_name = prefix + "journal.log"
        recovering = storage.exists(self._journal_name)
        self._journal = LogWriter(storage, self._journal_name)
        self._dirty_bytes = 0
        self._checkpoint_job: Optional[Job] = None
        self.registry = MetricsRegistry()
        self._stats = StatsCounters(self.registry)
        self.tracer = None
        self._closed = False
        if recovering:
            self._recover()

    # ------------------------------------------------------------------
    def enable_tracing(self, sink, component: str = "engine", seed: int = 0):
        """Attach a tracer (server-layer spans; the tree emits none yet)."""
        from repro.obs.trace import Tracer

        self.tracer = Tracer(
            sink, clock=self.storage.clock, component=component, seed=seed
        )
        return self.tracer

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._validate(key)
        key, value = bytes(key), bytes(value)
        self.executor.drain()
        self._journal.append(encode_batch(0, [(KIND_PUT, key, value)]), self._acct)
        path = self._tree.put(key, value)
        self._read_pages(path[:-1])
        self._dirty_bytes += len(key) + len(value)
        self._acct.charge(self.cpu.charge("btree_update", 3.0e-6))
        self._stats.puts += 1
        self._stats.user_bytes_written += len(key) + len(value)
        self._maybe_checkpoint()

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._validate(key)
        key = bytes(key)
        self.executor.drain()
        self._journal.append(encode_batch(0, [(KIND_DELETE, key, b"")]), self._acct)
        removed, path = self._tree.delete(key)
        self._read_pages(path[:-1])
        if removed:
            self._dirty_bytes += len(key)
        self._stats.deletes += 1
        self._stats.user_bytes_written += len(key)
        self._maybe_checkpoint()

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self._validate(key)
        self.executor.drain()
        value, path = self._tree.get(bytes(key))
        self._read_pages(path)
        self._acct.charge(self.cpu.charge("btree_search", 2.0e-6))
        self._stats.gets += 1
        return value

    def seek(self, key: bytes) -> DBIterator:
        self._check_open()
        self._validate(key)
        self.executor.drain()
        self._stats.seeks += 1

        def gen() -> Iterator[Tuple[bytes, bytes]]:
            last_page = None
            for k, v, page_id in self._tree.iterate_from(bytes(key)):
                if page_id != last_page:
                    self._read_pages([page_id])
                    last_page = page_id
                yield k, v

        def on_next() -> None:
            self._stats.next_calls += 1

        return DBIterator(gen(), on_next=on_next)

    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self._dirty_bytes < self.checkpoint_dirty_bytes:
            return
        if self._checkpoint_job is not None and not self._checkpoint_job.applied:
            # Previous checkpoint still running: stall once the dirty set
            # doubles (eviction pressure), as the real engine does.
            if self._dirty_bytes >= 2 * self.checkpoint_dirty_bytes:
                before = self.storage.clock.now
                self.executor.wait_for(self._checkpoint_job)
                self._stats.stall_seconds += self.storage.clock.now - before
            else:
                return
        dirty = sorted(self._tree.take_dirty())
        self._dirty_bytes = 0
        if not dirty:
            return
        acct = self.storage.background_account(self.prefix + "checkpoint")
        max_page = max(dirty)
        needed = (max_page + 1) * PAGE_SIZE
        current = self.storage.size(self._data_file)
        if needed > current:
            self.storage.append(self._data_file, b"\x00" * (needed - current), acct)
        for page_id in dirty:
            self.storage.write_at(
                self._data_file, page_id * PAGE_SIZE, b"\x00" * PAGE_SIZE, acct
            )
        self.storage.sync(self._data_file, acct)

        def apply() -> None:
            self._checkpoint_job = None
            self._stats.flushes += 1

        self._checkpoint_job = self.executor.submit("checkpoint", acct.seconds, apply)

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the in-memory tree by replaying the journal.

        The journal holds the store's full history (it is retained across
        checkpoints, so durability never depends on the simulated page
        images); replaying it restores the exact pre-crash contents up to
        the last durable journal byte.
        """
        from repro.util.keys import KIND_PUT as _PUT

        acct = self.storage.foreground_account(self.prefix + "recover")
        for record in LogReader(self.storage, self._journal_name).records(acct):
            _, ops = decode_batch(record)
            for kind, key, value in ops:
                if kind == _PUT:
                    self._tree.put(key, value)
                else:
                    self._tree.delete(key)
        self._tree.take_dirty()
        self._dirty_bytes = 0

    # ------------------------------------------------------------------
    def _read_pages(self, page_ids) -> None:
        size = self.storage.size(self._data_file)
        for page_id in page_ids:
            offset = page_id * PAGE_SIZE
            if offset + PAGE_SIZE <= size:
                self.storage.read(self._data_file, offset, PAGE_SIZE, self._acct)

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    @staticmethod
    def _validate(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise InvalidArgumentError(f"keys must be non-empty bytes: {key!r}")

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        s = StoreStats(preset="wiredtiger")
        self._stats.fill(s)
        written = self.storage.stats.written_by_account
        read = self.storage.stats.read_by_account
        s.device_bytes_written = sum(
            v for name, v in written.items() if name.startswith(self.prefix)
        )
        s.device_bytes_read = sum(
            v for name, v in read.items() if name.startswith(self.prefix)
        )
        s.memory_bytes = len(self._tree) * 64 + self._dirty_bytes
        return s

    def check_invariants(self) -> None:
        self._tree.check_invariants()

    def wait_idle(self) -> None:
        self.executor.wait_all()

    def close(self) -> None:
        if self._closed:
            return
        self.executor.wait_all()
        self._journal.sync(self._acct)
        self._closed = True

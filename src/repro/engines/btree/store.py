"""Write-through B+tree store (KyotoCabinet-style).

Every ``put`` updates the leaf in place and writes the dirty 4 KiB pages
back immediately (after journaling the operation for durability).  With
128-byte values one insert dirties a whole leaf page — the ~30-60x write
amplification of section 2.2's KyotoCabinet experiment emerges directly.
Random in-place page writes also pay the device's random-write latency,
which is why B+trees lose to LSM on write throughput.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.engines.base import DBIterator, KeyValueStore, StoreStats
from repro.engines.btree.bptree import PAGE_SIZE, BPlusTree
from repro.errors import InvalidArgumentError, StoreClosedError
from repro.sim.storage import SimulatedStorage
from repro.wal import LogWriter, encode_batch
from repro.util.keys import KIND_DELETE, KIND_PUT


class BPlusTreeStore(KeyValueStore):
    """Embedded B+tree key-value store with write-through pages."""

    def __init__(
        self,
        storage: SimulatedStorage,
        prefix: str = "btree/",
        fanout: int = 128,
    ) -> None:
        self.storage = storage
        self.prefix = prefix
        self.cpu = storage.cpu
        self._tree = BPlusTree(fanout)
        self._acct = storage.foreground_account(prefix + "user")
        self._data_file = prefix + "tree.db"
        if not storage.exists(self._data_file):
            storage.create(self._data_file)
        self._journal_name = prefix + "journal.log"
        recovering = storage.exists(self._journal_name)
        self._journal = LogWriter(storage, self._journal_name)
        self._stats = StoreStats(preset="btree")
        self._closed = False
        if recovering:
            self._recover()

    # ------------------------------------------------------------------
    def _page_offset(self, page_id: int) -> int:
        return page_id * PAGE_SIZE

    def _write_pages(self, page_ids) -> None:
        for page_id in sorted(page_ids):
            self.storage.write_at(
                self._data_file,
                self._page_offset(page_id),
                b"\x00" * PAGE_SIZE,
                self._acct,
            )

    def _read_pages(self, page_ids) -> None:
        for page_id in page_ids:
            offset = self._page_offset(page_id)
            if offset + PAGE_SIZE <= self.storage.size(self._data_file):
                self.storage.read(self._data_file, offset, PAGE_SIZE, self._acct)

    def _recover(self) -> None:
        """Rebuild the tree from the journal after a reopen or crash."""
        from repro.wal import LogReader, decode_batch

        acct = self.storage.foreground_account(self.prefix + "recover")
        for record in LogReader(self.storage, self._journal_name).records(acct):
            _, ops = decode_batch(record)
            for kind, key, value in ops:
                if kind == KIND_PUT:
                    self._tree.put(key, value)
                else:
                    self._tree.delete(key)
        self._tree.take_dirty()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    @staticmethod
    def _validate(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise InvalidArgumentError(f"keys must be non-empty bytes: {key!r}")

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._validate(key)
        key, value = bytes(key), bytes(value)
        self._journal.append(encode_batch(0, [(KIND_PUT, key, value)]), self._acct)
        path = self._tree.put(key, value)
        self._read_pages(path[:-1])  # interior pages consulted on the way down
        self._write_pages(self._tree.take_dirty())
        self._acct.charge(self.cpu.charge("btree_update", 3.0e-6))
        self._stats.puts += 1
        self._stats.user_bytes_written += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._validate(key)
        key = bytes(key)
        self._journal.append(encode_batch(0, [(KIND_DELETE, key, b"")]), self._acct)
        removed, path = self._tree.delete(key)
        self._read_pages(path[:-1])
        if removed:
            self._write_pages(self._tree.take_dirty())
        self._stats.deletes += 1
        self._stats.user_bytes_written += len(key)

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self._validate(key)
        value, path = self._tree.get(bytes(key))
        self._read_pages(path)
        self._acct.charge(self.cpu.charge("btree_search", 2.0e-6))
        self._stats.gets += 1
        return value

    def seek(self, key: bytes) -> DBIterator:
        self._check_open()
        self._validate(key)
        self._stats.seeks += 1

        def gen() -> Iterator[Tuple[bytes, bytes]]:
            last_page = None
            for k, v, page_id in self._tree.iterate_from(bytes(key)):
                if page_id != last_page:
                    self._read_pages([page_id])
                    last_page = page_id
                yield k, v

        def on_next() -> None:
            self._stats.next_calls += 1

        return DBIterator(gen(), on_next=on_next)

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        s = self._stats
        written = self.storage.stats.written_by_account
        read = self.storage.stats.read_by_account
        s.device_bytes_written = sum(
            v for name, v in written.items() if name.startswith(self.prefix)
        )
        s.device_bytes_read = sum(
            v for name, v in read.items() if name.startswith(self.prefix)
        )
        s.sstable_count = 0
        s.memory_bytes = len(self._tree) * 64
        return s

    def check_invariants(self) -> None:
        self._tree.check_invariants()

    def close(self) -> None:
        if not self._closed:
            self._journal.sync(self._acct)
            self._closed = True

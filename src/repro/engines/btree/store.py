"""Write-through B+tree store (KyotoCabinet-style).

Every ``put`` updates the leaf in place and writes the dirty 4 KiB pages
back immediately (after journaling the operation for durability).  With
128-byte values one insert dirties a whole leaf page — the ~30-60x write
amplification of section 2.2's KyotoCabinet experiment emerges directly.
Random in-place page writes also pay the device's random-write latency,
which is why B+trees lose to LSM on write throughput.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.engines.base import DBIterator, KeyValueStore, StatsCounters, StoreStats
from repro.obs.metrics import MetricsRegistry
from repro.engines.btree.bptree import PAGE_SIZE, BPlusTree
from repro.errors import (
    BackgroundError,
    InvalidArgumentError,
    PersistentIOError,
    StorageError,
    StoreClosedError,
    TransientIOError,
)
from repro.sim.storage import SimulatedStorage
from repro.wal import LogWriter, encode_batch
from repro.util.keys import KIND_DELETE, KIND_PUT


class BPlusTreeStore(KeyValueStore):
    """Embedded B+tree key-value store with write-through pages."""

    def __init__(
        self,
        storage: SimulatedStorage,
        prefix: str = "btree/",
        fanout: int = 128,
    ) -> None:
        self.storage = storage
        self.prefix = prefix
        self.cpu = storage.cpu
        self._tree = BPlusTree(fanout)
        self._acct = storage.foreground_account(prefix + "user")
        self._data_file = prefix + "tree.db"
        if not storage.exists(self._data_file):
            storage.create(self._data_file)
        self._journal_name = prefix + "journal.log"
        recovering = storage.exists(self._journal_name)
        self._journal = LogWriter(storage, self._journal_name)
        self.registry = MetricsRegistry()
        self._stats = StatsCounters(self.registry)
        self.tracer = None
        self._closed = False
        #: Sticky error: set when the journal may hold a torn record or a
        #: persistent fault hit the write path.  Writes then raise
        #: BackgroundError; reads keep serving; resume() rewrites the
        #: journal as a clean checkpoint of the in-memory tree.
        self._background_error: Optional[BackgroundError] = None
        if recovering:
            self._recover()

    # ------------------------------------------------------------------
    def enable_tracing(self, sink, component: str = "engine", seed: int = 0):
        """Attach a tracer (server-layer spans; the tree emits none yet)."""
        from repro.obs.trace import Tracer

        self.tracer = Tracer(
            sink, clock=self.storage.clock, component=component, seed=seed
        )
        return self.tracer

    # ------------------------------------------------------------------
    def _page_offset(self, page_id: int) -> int:
        return page_id * PAGE_SIZE

    def _write_pages(self, page_ids) -> None:
        for page_id in sorted(page_ids):
            try:
                self.storage.write_at(
                    self._data_file,
                    self._page_offset(page_id),
                    b"\x00" * PAGE_SIZE,
                    self._acct,
                )
            except TransientIOError:
                # The journal already holds the operation; the page image
                # is rebuilt from it at recovery, so a transient writeback
                # failure costs nothing but the retry a real pager would do.
                continue
            except PersistentIOError as exc:
                self._set_background_error("page writeback", exc)
                return

    def _read_pages(self, page_ids) -> None:
        for page_id in page_ids:
            offset = self._page_offset(page_id)
            if offset + PAGE_SIZE <= self.storage.size(self._data_file):
                try:
                    self.storage.read(self._data_file, offset, PAGE_SIZE, self._acct)
                except StorageError:
                    # Reads serve from the in-memory tree; a faulted page
                    # read only loses its simulated cache accounting.
                    continue

    def _recover(self) -> None:
        """Rebuild the tree from the journal after a reopen or crash."""
        from repro.wal import LogReader, decode_batch

        acct = self.storage.foreground_account(self.prefix + "recover")
        for record in LogReader(self.storage, self._journal_name).records(acct):
            _, ops = decode_batch(record)
            for kind, key, value in ops:
                if kind == KIND_PUT:
                    self._tree.put(key, value)
                else:
                    self._tree.delete(key)
        self._tree.take_dirty()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    @staticmethod
    def _validate(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise InvalidArgumentError(f"keys must be non-empty bytes: {key!r}")

    # ------------------------------------------------------------------
    # Degraded mode and resume (mirrors LSMStoreBase's state machine)
    # ------------------------------------------------------------------
    @property
    def is_degraded(self) -> bool:
        return self._background_error is not None

    def background_error(self) -> Optional[BackgroundError]:
        return self._background_error

    def _set_background_error(self, kind: str, exc: Exception) -> None:
        if self._background_error is None:
            self._background_error = BackgroundError(
                f"store degraded to read-only: {kind} failed: {exc}", cause=exc
            )
            self._stats.background_errors += 1

    def _journal_append(self, payload: bytes) -> None:
        """Journal one operation; the journal precedes every tree mutation.

        A failed append that left bytes behind may have torn the record: a
        later record appended after the tear would be unreadable at
        recovery even though it was acknowledged, so the store degrades
        until resume() rewrites the journal.  A failure that left nothing
        behind is a clean, retryable foreground error.
        """
        if self._background_error is not None:
            raise self._background_error
        size_before = self.storage.size(self._journal_name)
        try:
            self._journal.append(payload, self._acct)
        except StorageError as exc:
            if (
                self.storage.size(self._journal_name) != size_before
                or isinstance(exc, PersistentIOError)
            ):
                self._set_background_error("journal append", exc)
            raise

    def resume(self) -> bool:
        """Rewrite the journal as a checkpoint and re-enable writes.

        The in-memory tree is the authoritative state (every acknowledged
        operation reached it), so the new journal is simply one PUT record
        per live pair, synced, then atomically renamed over the suspect
        file.  Returns True when the store is healthy again.
        """
        self._check_open()
        if self._background_error is None:
            return True
        acct = self.storage.foreground_account(self.prefix + "recover")
        tmp = self._journal_name + ".new"
        try:
            if self.storage.exists(tmp):
                self.storage.delete(tmp)
            checkpoint = LogWriter(self.storage, tmp)
            for key, value, _ in self._tree.iterate_from(b"\x00"):
                checkpoint.append(encode_batch(0, [(KIND_PUT, key, value)]), acct)
            checkpoint.sync(acct)
            self.storage.rename(tmp, self._journal_name)
        except StorageError as exc:
            if self.storage.exists(tmp):
                self.storage.delete(tmp)
            self._background_error = BackgroundError(
                f"store degraded to read-only: resume failed: {exc}", cause=exc
            )
            return False
        self._journal = LogWriter(self.storage, self._journal_name)
        self._background_error = None
        self._stats.resumes += 1
        return True

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._validate(key)
        key, value = bytes(key), bytes(value)
        self._journal_append(encode_batch(0, [(KIND_PUT, key, value)]))
        path = self._tree.put(key, value)
        self._read_pages(path[:-1])  # interior pages consulted on the way down
        self._write_pages(self._tree.take_dirty())
        self._acct.charge(self.cpu.charge("btree_update", 3.0e-6))
        self._stats.puts += 1
        self._stats.user_bytes_written += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._validate(key)
        key = bytes(key)
        self._journal_append(encode_batch(0, [(KIND_DELETE, key, b"")]))
        removed, path = self._tree.delete(key)
        self._read_pages(path[:-1])
        if removed:
            self._write_pages(self._tree.take_dirty())
        self._stats.deletes += 1
        self._stats.user_bytes_written += len(key)

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self._validate(key)
        value, path = self._tree.get(bytes(key))
        self._read_pages(path)
        self._acct.charge(self.cpu.charge("btree_search", 2.0e-6))
        self._stats.gets += 1
        return value

    def seek(self, key: bytes) -> DBIterator:
        self._check_open()
        self._validate(key)
        self._stats.seeks += 1

        def gen() -> Iterator[Tuple[bytes, bytes]]:
            last_page = None
            for k, v, page_id in self._tree.iterate_from(bytes(key)):
                if page_id != last_page:
                    self._read_pages([page_id])
                    last_page = page_id
                yield k, v

        def on_next() -> None:
            self._stats.next_calls += 1

        return DBIterator(gen(), on_next=on_next)

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        s = StoreStats(preset="btree")
        self._stats.fill(s)
        written = self.storage.stats.written_by_account
        read = self.storage.stats.read_by_account
        s.device_bytes_written = sum(
            v for name, v in written.items() if name.startswith(self.prefix)
        )
        s.device_bytes_read = sum(
            v for name, v in read.items() if name.startswith(self.prefix)
        )
        s.sstable_count = 0
        s.memory_bytes = len(self._tree) * 64
        s.degraded = self._background_error is not None
        s.background_error = (
            str(self._background_error) if self._background_error is not None else ""
        )
        return s

    def check_invariants(self) -> None:
        self._tree.check_invariants()

    def close(self) -> None:
        if not self._closed:
            try:
                self._journal.sync(self._acct)
            except StorageError:
                # Closing anyway; the unsynced tail is an ordinary crash loss.
                pass
            self._closed = True

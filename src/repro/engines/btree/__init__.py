"""Page-based B+tree store (the KyotoCabinet-style baseline of section 2.2)."""

from repro.engines.btree.bptree import BPlusTree
from repro.engines.btree.store import BPlusTreeStore

__all__ = ["BPlusTree", "BPlusTreeStore"]

"""An in-memory B+tree with page-granular dirty tracking.

This is the data structure under both the KyotoCabinet-style store
(write-through pages, section 2.2's 61x-write-amplification baseline) and
the WiredTiger-style store (journal + checkpoint).  The tree itself is a
textbook B+tree over byte-string keys; what the stores add is *when* dirty
pages are written and how reads are charged.

Every node owns a page id; the store maps page ids to 4 KiB-aligned file
offsets.  Structure changes (splits, merges) mark the affected pages dirty
so the store can charge exactly the pages a real engine would write.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Set, Tuple

PAGE_SIZE = 4096
#: Per-entry overhead used when deciding whether a leaf page is full.
_ENTRY_OVERHEAD = 8


class _Node:
    __slots__ = ("page_id", "parent")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.parent: Optional["_Internal"] = None


class _Leaf(_Node):
    __slots__ = ("keys", "values", "next_leaf", "bytes_used")

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self.keys: List[bytes] = []
        self.values: List[bytes] = []
        self.next_leaf: Optional["_Leaf"] = None
        self.bytes_used = 0


class _Internal(_Node):
    __slots__ = ("keys", "children")

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self.keys: List[bytes] = []  # separator keys
        self.children: List[_Node] = []


class BPlusTree:
    """B+tree over bytes keys; tracks dirty and touched page ids."""

    def __init__(self, fanout: int = 128) -> None:
        self.fanout = fanout
        self._next_page = 0
        self.root: _Node = self._new_leaf()
        self._size = 0
        self.dirty_pages: Set[int] = set()

    def __len__(self) -> int:
        return self._size

    @property
    def page_count(self) -> int:
        return self._next_page

    # ------------------------------------------------------------------
    def _new_leaf(self) -> _Leaf:
        leaf = _Leaf(self._next_page)
        self._next_page += 1
        return leaf

    def _new_internal(self) -> _Internal:
        node = _Internal(self._next_page)
        self._next_page += 1
        return node

    # ------------------------------------------------------------------
    def _descend(self, key: bytes) -> Tuple[_Leaf, List[int]]:
        """Leaf for ``key`` plus the page ids touched on the way down."""
        path = []
        node = self.root
        while isinstance(node, _Internal):
            path.append(node.page_id)
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
        path.append(node.page_id)
        return node, path  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Tuple[Optional[bytes], List[int]]:
        """Returns ``(value_or_None, touched_page_ids)``."""
        leaf, path = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx], path
        return None, path

    def put(self, key: bytes, value: bytes) -> List[int]:
        """Insert/overwrite; returns touched page ids (dirty ones marked)."""
        leaf, path = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.bytes_used += len(value) - len(leaf.values[idx])
            leaf.values[idx] = value
        else:
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, value)
            leaf.bytes_used += len(key) + len(value) + _ENTRY_OVERHEAD
            self._size += 1
        self.dirty_pages.add(leaf.page_id)
        if leaf.bytes_used > PAGE_SIZE:
            self._split_leaf(leaf)
        return path

    def delete(self, key: bytes) -> Tuple[bool, List[int]]:
        """Remove ``key``; returns ``(removed, touched_page_ids)``.

        Underflowed leaves are left in place (lazy deletion, as most
        embedded B-tree engines do); empty pages are reclaimed only when a
        sibling split reuses them.
        """
        leaf, path = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False, path
        leaf.bytes_used -= len(key) + len(leaf.values[idx]) + _ENTRY_OVERHEAD
        del leaf.keys[idx]
        del leaf.values[idx]
        self._size -= 1
        self.dirty_pages.add(leaf.page_id)
        return True, path

    # ------------------------------------------------------------------
    def _split_leaf(self, leaf: _Leaf) -> None:
        mid = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.bytes_used = sum(
            len(k) + len(v) + _ENTRY_OVERHEAD for k, v in zip(right.keys, right.values)
        )
        del leaf.keys[mid:]
        del leaf.values[mid:]
        leaf.bytes_used -= right.bytes_used
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        self.dirty_pages.add(leaf.page_id)
        self.dirty_pages.add(right.page_id)
        self._insert_into_parent(leaf, right.keys[0], right)

    def _insert_into_parent(self, left: _Node, sep: bytes, right: _Node) -> None:
        parent = left.parent
        if parent is None:
            new_root = self._new_internal()
            new_root.keys = [sep]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self.root = new_root
            self.dirty_pages.add(new_root.page_id)
            return
        idx = bisect_right(parent.keys, sep)
        parent.keys.insert(idx, sep)
        parent.children.insert(idx + 1, right)
        right.parent = parent
        self.dirty_pages.add(parent.page_id)
        if len(parent.children) > self.fanout:
            self._split_internal(parent)

    def _split_internal(self, node: _Internal) -> None:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = self._new_internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        del node.keys[mid:]
        del node.children[mid + 1 :]
        self.dirty_pages.add(node.page_id)
        self.dirty_pages.add(right.page_id)
        self._insert_into_parent(node, sep, right)

    # ------------------------------------------------------------------
    def first_leaf(self) -> _Leaf:
        node = self.root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node  # type: ignore[return-value]

    def iterate_from(self, key: bytes) -> Iterator[Tuple[bytes, bytes, int]]:
        """Yield ``(key, value, leaf_page_id)`` for keys >= ``key``."""
        leaf, _ = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        current: Optional[_Leaf] = leaf
        while current is not None:
            for i in range(idx, len(current.keys)):
                yield current.keys[i], current.values[i], current.page_id
            current = current.next_leaf
            idx = 0

    def take_dirty(self) -> Set[int]:
        dirty, self.dirty_pages = self.dirty_pages, set()
        return dirty

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify ordering and linkage."""
        prev = None
        count = 0
        leaf: Optional[_Leaf] = self.first_leaf()
        while leaf is not None:
            for key in leaf.keys:
                assert prev is None or key > prev, "B+tree keys out of order"
                prev = key
                count += 1
            leaf = leaf.next_leaf
        assert count == self._size, f"size mismatch: {count} != {self._size}"

"""Engine registry: map preset names to store classes.

``create_store`` is the factory behind :func:`repro.open_store`.  Imports
are lazy so that importing :mod:`repro.engines` does not pull in every
engine implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.engines.base import KeyValueStore
from repro.engines.options import StoreOptions
from repro.sim.storage import SimulatedStorage

#: Engine preset names accepted by :func:`create_store`.
ENGINES = ("leveldb", "hyperleveldb", "rocksdb", "pebblesdb", "btree", "wiredtiger")


def create_store(
    engine: str,
    storage: SimulatedStorage,
    options: Optional[StoreOptions] = None,
    prefix: Optional[str] = None,
    seed: int = 0,
) -> KeyValueStore:
    """Instantiate the engine named ``engine`` on ``storage``.

    ``options`` defaults to the preset configuration matching the engine
    name; ``prefix`` defaults to ``"<engine>/"`` so several stores can
    share one simulated device.
    """
    if prefix is None:
        prefix = f"{engine}/"
    if engine in ("leveldb", "hyperleveldb", "rocksdb"):
        from repro.engines.lsm import LeveledLSMStore

        opts = options if options is not None else StoreOptions.for_preset(engine)
        return LeveledLSMStore(storage, opts, prefix=prefix, seed=seed)
    if engine == "pebblesdb":
        from repro.core import PebblesDBStore

        opts = options if options is not None else StoreOptions.pebblesdb()
        return PebblesDBStore(storage, opts, prefix=prefix, seed=seed)
    if engine == "btree":
        from repro.engines.btree import BPlusTreeStore

        return BPlusTreeStore(storage, prefix=prefix)
    if engine == "wiredtiger":
        from repro.engines.wiredtiger import WiredTigerStore

        return WiredTigerStore(storage, prefix=prefix)
    raise ValueError(f"unknown engine {engine!r} (have {ENGINES})")

"""Key–value separation: the garbage-collected value log."""

from repro.sstable.format import ValuePointer
from repro.vlog.log import (
    SEGMENT_SUFFIX,
    SegmentState,
    ValueLog,
    VlogCompactionContext,
    decode_record,
    encode_record,
    segment_name,
)

__all__ = [
    "SEGMENT_SUFFIX",
    "SegmentState",
    "ValueLog",
    "ValuePointer",
    "VlogCompactionContext",
    "decode_record",
    "encode_record",
    "segment_name",
]

"""Append-only, segment-rotated value log (WiscKey/BVLSM-style).

Large values leave the LSM tree at WAL-append time: the value body goes
into the active value-log segment and the tree carries only a
:class:`~repro.sstable.format.ValuePointer` under a ``KIND_VPTR``
internal key.  Records are CRC-framed like WAL records, so a torn or
bit-flipped record is detected at read time rather than returned as
data::

    masked_crc(4) | klen(4) | vlen(4) | sequence(8) | key | value

The key and sequence ride along for garbage collection and repair: a
segment is self-describing without consulting the tree.

Liveness is counter-based.  Every record appended adds to its segment's
``data_bytes``; every pointer a compaction drops (shadowed version,
dropped tombstone target) or relocates adds the record's length to
``dead_bytes``.  The deltas travel in MANIFEST version edits, so the
counters — and therefore segment retirement — replay deterministically
at recovery.  A segment retires when every byte in it is dead; a *cold*
segment (``dead_bytes/data_bytes >= vlog_gc_dead_ratio``) has its live
pointers relocated by the next compaction that rewrites their key
range, which is what drives it to fully dead.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import CorruptionError
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.sstable.format import ValuePointer
from repro.util.crc import crc32c, mask_crc, unmask_crc
from repro.util.keys import KIND_VPTR

SEGMENT_SUFFIX = ".vlg"

#: ``masked_crc(4) | klen(4) | vlen(4) | sequence(8)``
_HEADER_SIZE = 20


def segment_name(prefix: str, number: int) -> str:
    return f"{prefix}{number:06d}{SEGMENT_SUFFIX}"


def encode_record(key: bytes, value: bytes, sequence: int) -> bytes:
    body = (
        len(key).to_bytes(4, "little")
        + len(value).to_bytes(4, "little")
        + sequence.to_bytes(8, "little")
        + key
        + value
    )
    return mask_crc(crc32c(body)).to_bytes(4, "little") + body


def decode_record(data: bytes) -> Tuple[bytes, bytes, int]:
    """Verify and parse one record; returns ``(key, value, sequence)``."""
    if len(data) < _HEADER_SIZE:
        raise CorruptionError("value-log record shorter than its header")
    stored = unmask_crc(int.from_bytes(data[0:4], "little"))
    body = memoryview(data)[4:]
    if crc32c(body) != stored:
        raise CorruptionError("value-log record checksum mismatch")
    klen = int.from_bytes(body[0:4], "little")
    vlen = int.from_bytes(body[4:8], "little")
    sequence = int.from_bytes(body[8:16], "little")
    if 16 + klen + vlen != len(body):
        raise CorruptionError("value-log record length mismatch")
    key = bytes(body[16 : 16 + klen])
    value = bytes(body[16 + klen : 16 + klen + vlen])
    return key, value, sequence


class SegmentState:
    """Liveness counters for one value-log segment."""

    __slots__ = ("number", "data_bytes", "dead_bytes")

    def __init__(self, number: int, data_bytes: int = 0, dead_bytes: int = 0) -> None:
        self.number = number
        self.data_bytes = data_bytes
        self.dead_bytes = dead_bytes


class ValueLog:
    """The store's value log: active-segment appends, reads, retirement.

    File numbers come from the owning store's allocator so segment names
    never collide with sstables or WALs; ``alloc_number`` is that
    allocator.  The doom/pin mechanism mirrors the store's sstable
    lifecycle: while any iterator is live (``pin``), retired segments are
    merely doomed and the files are deleted at the last ``unpin``, so an
    in-flight scan never loses a segment a GC pass just relocated out of.
    """

    def __init__(
        self,
        storage: SimulatedStorage,
        prefix: str,
        *,
        segment_bytes: int,
        gc_dead_ratio: float,
        alloc_number: Callable[[], int],
    ) -> None:
        self._storage = storage
        self._prefix = prefix
        self._segment_bytes = segment_bytes
        self._gc_dead_ratio = gc_dead_ratio
        self._alloc_number = alloc_number
        self._segments: Dict[int, SegmentState] = {}
        self._active: Optional[int] = None
        self._active_offset = 0
        self._pins = 0
        self._doomed: Set[int] = set()
        #: Dead bytes from abandoned work (failed write batches, faulted
        #: compaction attempts) not yet persisted in a MANIFEST edit;
        #: drained into the next job commit.
        self._stray_dead: Dict[int, int] = {}
        # Monotonic counters surfaced through the store's metrics.
        self.bytes_written = 0
        self.records_written = 0
        self.gc_relocated_bytes = 0
        self.gc_relocated_records = 0
        self.segments_retired = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def segment_numbers(self) -> List[int]:
        return sorted(self._segments)

    def segment_file_names(self) -> List[str]:
        return [segment_name(self._prefix, n) for n in sorted(self._segments)]

    @property
    def active_segment(self) -> Optional[int]:
        return self._active

    def data_bytes(self) -> int:
        return sum(s.data_bytes for s in self._segments.values())

    def dead_bytes(self) -> int:
        return sum(s.dead_bytes for s in self._segments.values())

    def state_line(self) -> str:
        """The ``repro.vlog`` property text."""
        return (
            f"segments={len(self._segments)} "
            f"active={self._active if self._active is not None else '-'} "
            f"data-bytes={self.data_bytes()} dead-bytes={self.dead_bytes()} "
            f"written={self.bytes_written} relocated={self.gc_relocated_bytes} "
            f"retired={self.segments_retired}"
        )

    def is_cold(self, segment: int) -> bool:
        """True when a compaction touching this segment should relocate.

        The active segment is never cold: it is still growing, and
        relocating out of it would chase a moving target.
        """
        if segment == self._active:
            return False
        state = self._segments.get(segment)
        if state is None or state.data_bytes == 0:
            return False
        return state.dead_bytes >= self._gc_dead_ratio * state.data_bytes

    def cold_segments(self) -> Set[int]:
        return {n for n in self._segments if self.is_cold(n)}

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self, key: bytes, value: bytes, sequence: int, account: IoAccount
    ) -> ValuePointer:
        """Append one record; returns the pointer that locates it.

        The in-memory offset commits only after the storage append
        succeeds, exactly like the WAL writer: a torn append leaves the
        writer consistent with what actually landed (the caller then
        clears the torn tail from its view via :meth:`abandon_tail`).
        """
        if self._active is None:
            self._open_segment()
        assert self._active is not None
        record = encode_record(key, value, sequence)
        name = segment_name(self._prefix, self._active)
        offset = self._active_offset
        self._storage.append(name, record, account)
        self._active_offset = offset + len(record)
        state = self._segments[self._active]
        state.data_bytes += len(record)
        self.bytes_written += len(record)
        self.records_written += 1
        pointer = ValuePointer(self._active, offset, len(record), len(value))
        if self._active_offset >= self._segment_bytes:
            self._rotate(account)
        return pointer

    def _open_segment(self) -> None:
        number = self._alloc_number()
        name = segment_name(self._prefix, number)
        if not self._storage.exists(name):
            self._storage.create(name)
        self._segments[number] = SegmentState(number)
        self._active = number
        self._active_offset = 0

    def _rotate(self, account: IoAccount) -> None:
        """Seal the active segment (synced: later pointers into it may be
        acknowledged while only the new active segment gets synced)."""
        assert self._active is not None
        self._storage.sync(segment_name(self._prefix, self._active), account)
        self._active = None
        self._active_offset = 0

    def sync(self, account: IoAccount) -> None:
        """Make every record appended so far durable.

        Rotation syncs sealed segments, so only the active one can hold
        unsynced bytes; called before the WAL sync that acknowledges the
        pointers, which is what makes "WAL record durable implies its
        vlog records durable" an invariant.
        """
        if self._active is not None:
            self._storage.sync(segment_name(self._prefix, self._active), account)

    def abandon_tail(self, pointers: List[ValuePointer]) -> None:
        """Recover from a failed append or an abandoned write batch.

        Resynchronizes the writer's offset with what actually landed (a
        torn append may have left partial bytes) and counts the records
        behind ``pointers`` — appended successfully but never referenced
        by an acknowledged write — as stray dead bytes.
        """
        if self._active is not None:
            name = segment_name(self._prefix, self._active)
            size = self._storage.size(name) if self._storage.exists(name) else 0
            torn = size - self._active_offset
            if torn > 0:
                # Torn bytes occupy the file but can never be referenced:
                # count them as data *and* stray dead so they neither skew
                # liveness nor block the segment's eventual retirement.
                self._segments[self._active].data_bytes += torn
                self.note_stray_dead(self._active, torn)
                self._active_offset = size
        for pointer in pointers:
            self.note_stray_dead(pointer.segment, pointer.record_length)

    def note_stray_dead(self, segment: int, nbytes: int) -> None:
        self._stray_dead[segment] = self._stray_dead.get(segment, 0) + nbytes

    def drain_stray_dead(self) -> Dict[int, int]:
        out = self._stray_dead
        self._stray_dead = {}
        return out

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_record(
        self, pointer: ValuePointer, account: IoAccount
    ) -> Tuple[bytes, bytes, int]:
        """Resolve a pointer to ``(key, value, sequence)`` (CRC-checked)."""
        name = segment_name(self._prefix, pointer.segment)
        if not self._storage.exists(name):
            raise CorruptionError(
                f"value pointer into missing segment {pointer.segment}"
            )
        if pointer.offset + pointer.record_length > self._storage.size(name):
            raise CorruptionError(
                f"value pointer overruns segment {pointer.segment}"
            )
        data = self._storage.read(
            name, pointer.offset, pointer.record_length, account
        )
        key, value, sequence = decode_record(bytes(data))
        if len(value) != pointer.value_length:
            raise CorruptionError("value pointer length mismatch")
        return key, value, sequence

    def read_value(self, pointer: ValuePointer, account: IoAccount) -> bytes:
        return self.read_record(pointer, account)[1]

    def pointer_intact(self, pointer: ValuePointer, account: IoAccount) -> bool:
        """True when the pointed-to record parses cleanly (WAL replay)."""
        try:
            self.read_record(pointer, account)
            return True
        except CorruptionError:
            return False

    def synced_size(self, segment: int) -> int:
        name = segment_name(self._prefix, segment)
        return self._storage.synced_size(name) if self._storage.exists(name) else 0

    # ------------------------------------------------------------------
    # Pinning and retirement
    # ------------------------------------------------------------------
    def pin(self) -> None:
        self._pins += 1

    def unpin(self) -> None:
        self._pins -= 1
        if self._pins <= 0:
            self._pins = 0
            while self._doomed:
                self._delete_segment(self._doomed.pop())

    def retire_segment(self, segment: int) -> None:
        """Delete a fully-dead segment (deferred while iterators pin it)."""
        self._segments.pop(segment, None)
        self.segments_retired += 1
        if self._pins > 0:
            self._doomed.add(segment)
        else:
            self._delete_segment(segment)

    def _delete_segment(self, segment: int) -> None:
        name = segment_name(self._prefix, segment)
        if self._storage.exists(name):
            self._storage.delete(name)

    # ------------------------------------------------------------------
    # Job commit (runs at compaction apply time, before the MANIFEST append)
    # ------------------------------------------------------------------
    def commit_job(
        self, dead: Dict[int, int], edit
    ) -> List[int]:
        """Fold a job's dead-byte deltas and decide retirements.

        Merges the job's deltas with any stray dead bytes, applies them
        to the in-memory counters, records them on ``edit`` (so recovery
        replays the same counters), and returns the segments that are now
        fully dead — the caller deletes them once the edit is durable.
        """
        merged = dict(self._stray_dead)
        self._stray_dead = {}
        for segment, nbytes in dead.items():
            merged[segment] = merged.get(segment, 0) + nbytes
        retirable: List[int] = []
        for segment in sorted(merged):
            state = self._segments.get(segment)
            if state is None:
                continue  # already retired (stale stray entry)
            state.dead_bytes += merged[segment]
            edit.vlog_dead.append((segment, merged[segment]))
            if (
                segment != self._active
                and state.data_bytes > 0
                and state.dead_bytes >= state.data_bytes
            ):
                retirable.append(segment)
        edit.deleted_vlog_segments.extend(retirable)
        return retirable

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        dead_by_segment: Dict[int, int],
        deleted_segments: Set[int],
    ) -> None:
        """Rebuild segment state from disk plus replayed MANIFEST edits.

        Segments present on disk register with ``data_bytes = file
        size`` — a torn tail from a crash is conservatively counted as
        live, so GC can only under-collect, never free a referenced
        record.  Segments the MANIFEST retired but whose files survived
        the crash are deleted; dead counters for segments missing from
        disk are pruned.  The newest surviving segment resumes as the
        active one (appends continue at its tail).
        """
        on_disk: List[int] = []
        for name in self._storage.list_files(self._prefix):
            if not name.endswith(SEGMENT_SUFFIX):
                continue
            number = int(name[len(self._prefix) : -len(SEGMENT_SUFFIX)])
            if number in deleted_segments:
                self._storage.delete(name)
                continue
            on_disk.append(number)
        self._segments = {}
        for number in sorted(on_disk):
            size = self._storage.size(segment_name(self._prefix, number))
            self._segments[number] = SegmentState(
                number, size, min(dead_by_segment.get(number, 0), size)
            )
        if self._segments:
            newest = max(self._segments)
            size = self._segments[newest].data_bytes
            if size < self._segment_bytes:
                self._active = newest
                self._active_offset = size
            else:
                self._active = None
                self._active_offset = 0


class VlogCompactionContext:
    """Per-compaction-job value-log GC state.

    Created fresh for every compute attempt (a faulted attempt's
    relocations are abandoned as stray dead, so retries never
    double-count), wrapped around the job's output stream via
    :meth:`rewrite`, passed as ``on_drop`` to ``compaction_iterator``,
    then committed at apply time: :meth:`commit` before the MANIFEST
    append (folding counters into the edit), :meth:`retire` after it
    (durable-gated deletion).
    """

    def __init__(
        self,
        vlog: ValueLog,
        account: IoAccount,
        cold_segments: Optional[Set[int]] = None,
    ) -> None:
        self._vlog = vlog
        self._account = account
        self._cold = vlog.cold_segments() if cold_segments is None else cold_segments
        self.dead: Dict[int, int] = {}
        #: Pointers appended by relocation this attempt; become stray
        #: dead if the attempt is abandoned.
        self._appended: List[ValuePointer] = []
        self.relocated_bytes = 0
        self.relocated_records = 0
        self._retirable: List[int] = []

    @property
    def seconds(self) -> float:
        """Device seconds charged to this context's (GC) account.

        Compaction jobs add this to their own account's seconds when
        computing the job duration, so splitting GC IO into its own
        ledger account does not change the simulated timeline.
        """
        return self._account.seconds

    def rewrite(self, stream: Iterator) -> Iterator:
        """Relocate surviving pointers that lead into cold segments.

        The old record's bytes become dead (it now has a fresh copy in
        the active segment), which is what drives a cold segment toward
        fully-dead and retirement.
        """
        vlog = self._vlog
        cold = self._cold
        for key, value in stream:
            if key.kind == KIND_VPTR:
                pointer = ValuePointer.decode(bytes(value))
                if pointer.segment in cold:
                    _, user_value, _ = vlog.read_record(pointer, self._account)
                    new_pointer = vlog.append(
                        key.user_key, user_value, key.sequence, self._account
                    )
                    self._appended.append(new_pointer)
                    self._note_dead(pointer)
                    self.relocated_bytes += pointer.value_length
                    self.relocated_records += 1
                    yield key, new_pointer.encode()
                    continue
            yield key, value

    def on_drop(self, key, value) -> None:
        """``compaction_iterator`` drop hook: a dropped pointer's record
        is dead."""
        if key.kind == KIND_VPTR:
            self._note_dead(ValuePointer.decode(bytes(value)))

    def _note_dead(self, pointer: ValuePointer) -> None:
        self.dead[pointer.segment] = (
            self.dead.get(pointer.segment, 0) + pointer.record_length
        )

    def abandon(self) -> None:
        """Discard this attempt: relocated copies become stray dead."""
        for pointer in self._appended:
            self._vlog.note_stray_dead(pointer.segment, pointer.record_length)
        self._appended = []
        self.dead = {}
        self.relocated_bytes = 0
        self.relocated_records = 0

    def commit(self, edit) -> None:
        """Fold counters into ``edit``; call before the MANIFEST append.

        Relocated records are synced first: the edit's new sstables
        reference the new pointers, and the manifest append must never
        land ahead of the records it makes reachable.
        """
        if self._appended:
            self._vlog.sync(self._account)
        self._vlog.gc_relocated_bytes += self.relocated_bytes
        self._vlog.gc_relocated_records += self.relocated_records
        self._retirable = self._vlog.commit_job(self.dead, edit)
        self._appended = []
        self.dead = {}

    def retire(self, durable: bool) -> List[int]:
        """Delete (or defer) the segments :meth:`commit` found fully dead.

        Returns the deferred segment numbers when ``durable`` is False:
        crash recovery would replay the pre-edit version, whose sstables
        still hold pointers into them, so the caller queues the deletion
        until the edit is durable (mirroring sstable retirement).
        """
        retirable, self._retirable = self._retirable, []
        if durable:
            for segment in retirable:
                self._vlog.retire_segment(segment)
            return []
        return retirable

"""Binary layout of an sstable.

::

    [data block 0] [data block 1] ... [filter block] [index block] [footer]

*Data block* — records ``varint32 klen | packed internal key | varint32
vlen | value``, each block covering ~4 KiB of payload and carrying a
4-byte masked CRC trailer, so a flipped bit inside a block is detected at
read time rather than returned as data.

*Filter block* — one encoded :class:`repro.bloom.BloomFilter` over the
table's user keys (sstable-level filters, paper section 4.1).

*Index block* — per data block: packed *last* internal key, offset, size.
Finding a key costs one binary search here plus one data-block read.

*Footer* — fixed-size trailer locating index and filter, with a magic
number and a CRC over the header fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import CorruptionError
from repro.util.crc import crc32c, mask_crc, unmask_crc
from repro.util.keys import (
    KIND_VPTR,
    InternalKey,
    pack_internal_key,
    unpack_internal_key,
)
from repro.util.varint import (
    decode_varint32,
    decode_varint_run,
    encode_varint32,
    encode_varint64,
)

#: Target uncompressed payload per data block.
DEFAULT_BLOCK_SIZE = 4096

_MAGIC = 0x50454242_4C455342  # "PEBBLESB"
FOOTER_SIZE = 8 * 5 + 8 + 4  # five u64 fields + magic + masked crc


class BlockBuilder:
    """Accumulates records for one data block."""

    __slots__ = ("_buf", "_count", "_first_key", "_last_key")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._count = 0
        self._first_key: InternalKey = None  # type: ignore[assignment]
        self._last_key: InternalKey = None  # type: ignore[assignment]

    def add(self, key: InternalKey, value: bytes) -> None:
        packed = pack_internal_key(key)
        self._buf += encode_varint32(len(packed))
        self._buf += packed
        self._buf += encode_varint32(len(value))
        self._buf += value
        if self._count == 0:
            self._first_key = key
        self._last_key = key
        self._count += 1

    @property
    def size_bytes(self) -> int:
        return len(self._buf)

    @property
    def count(self) -> int:
        return self._count

    @property
    def last_key(self) -> InternalKey:
        return self._last_key

    def finish(self) -> bytes:
        return bytes(self._buf)

    def reset(self) -> None:
        self._buf.clear()
        self._count = 0
        self._first_key = None  # type: ignore[assignment]
        self._last_key = None  # type: ignore[assignment]


BLOCK_TRAILER_SIZE = 4


def seal_block(payload: bytes) -> bytes:
    """Append the masked CRC trailer to a data block's payload."""
    return payload + mask_crc(crc32c(payload)).to_bytes(4, "little")


def decode_block(
    data: bytes, zero_copy: bool = False
) -> List[Tuple[InternalKey, bytes]]:
    """Verify and parse one data block into ``(internal key, value)``s."""
    return decode_block_with_keys(data, zero_copy)[0]


def decode_block_with_keys(
    data: bytes, zero_copy: bool = False
) -> Tuple[List[Tuple[InternalKey, bytes]], List[InternalKey]]:
    """Verify and parse one data block, returning entries and key array.

    The key array (``[key for key, _ in entries]``) is built during the
    same parse pass; the decoded-block cache stores it alongside the
    entries so point lookups bisect without rebuilding it per probe.

    With ``zero_copy`` the values are returned as read-only
    :class:`memoryview` slices into ``data`` instead of per-entry
    ``bytes`` copies — callers materialize (``bytes(value)``) only the
    value they actually hand out.  User keys are always materialized:
    they participate in orderings (bisect, merge heaps) that memoryviews
    do not support against ``bytes``.  Both modes raise identical
    :class:`CorruptionError`\\ s on damaged input; the varint and
    internal-key parsing is inlined because this loop dominates the
    wall-clock cost of an uncached point read.
    """
    nbytes = len(data)
    if nbytes < BLOCK_TRAILER_SIZE:
        raise CorruptionError("data block shorter than its checksum")
    view = memoryview(data)
    end = nbytes - BLOCK_TRAILER_SIZE
    payload = view[:end]
    if crc32c(payload) != unmask_crc(int.from_bytes(view[end:], "little")):
        raise CorruptionError("data block checksum mismatch")
    out: List[Tuple[InternalKey, bytes]] = []
    keys: List[InternalKey] = []
    entry_append = out.append
    key_append = keys.append
    from_bytes = int.from_bytes
    offset = 0
    while offset < end:
        # Inlined varint32 (klen); lengths are almost always one byte.
        byte = data[offset]
        if byte < 0x80:
            klen = byte
            offset += 1
        else:
            klen, offset = decode_varint32(data, offset)
        key_end = offset + klen
        if key_end > end:
            raise CorruptionError("data block key overruns block")
        # Inlined unpack_internal_key: user key + 8-byte (seq, kind) trailer.
        if klen < 8:
            raise CorruptionError("internal key shorter than trailer")
        trailer = from_bytes(view[key_end - 8 : key_end], "little")
        kind = trailer & 0xFF
        if kind > KIND_VPTR:  # kinds are 0 (delete), 1 (put), 2 (vlog pointer)
            raise CorruptionError(f"bad internal key kind: {kind}")
        key = InternalKey(bytes(view[offset : key_end - 8]), trailer >> 8, kind)
        offset = key_end
        byte = data[offset] if offset < end else 0x80
        if byte < 0x80:
            vlen = byte
            offset += 1
        else:
            vlen, offset = decode_varint32(data, offset)
        value_end = offset + vlen
        if value_end > end:
            raise CorruptionError("data block value overruns block")
        value = payload[offset:value_end] if zero_copy else bytes(view[offset:value_end])
        entry_append((key, value))
        key_append(key)
        offset = value_end
    return out, keys


@dataclass(frozen=True)
class ValuePointer:
    """Locates one value inside the value log.

    ``record_length`` is the full framed record length (header + key +
    value), so resolution is a single contiguous storage read;
    ``value_length`` lets sizing decisions (cache accounting, stats)
    avoid that read entirely.
    """

    segment: int
    offset: int
    record_length: int
    value_length: int

    def encode(self) -> bytes:
        return (
            encode_varint64(self.segment)
            + encode_varint64(self.offset)
            + encode_varint64(self.record_length)
            + encode_varint64(self.value_length)
        )

    @classmethod
    def decode(cls, data: bytes) -> "ValuePointer":
        try:
            (segment, offset, record_length, value_length), end = decode_varint_run(
                bytes(data), 0, 4
            )
        except (IndexError, ValueError) as exc:
            raise CorruptionError(f"truncated value pointer: {exc}") from exc
        if end != len(data):
            raise CorruptionError("trailing bytes after value pointer")
        return cls(segment, offset, record_length, value_length)


@dataclass
class IndexEntry:
    """Locates one data block: its last key, byte offset, and size."""

    last_key: InternalKey
    offset: int
    size: int


def encode_index(entries: List[IndexEntry]) -> bytes:
    buf = bytearray()
    for entry in entries:
        packed = pack_internal_key(entry.last_key)
        buf += encode_varint32(len(packed))
        buf += packed
        buf += encode_varint64(entry.offset)
        buf += encode_varint64(entry.size)
    return bytes(buf)


def decode_index(data: bytes) -> List[IndexEntry]:
    out: List[IndexEntry] = []
    offset = 0
    while offset < len(data):
        klen, offset = decode_varint32(data, offset)
        if offset + klen > len(data):
            raise CorruptionError("index entry key overruns block")
        key = unpack_internal_key(data[offset : offset + klen])
        offset += klen
        (blk_offset, blk_size), offset = decode_varint_run(data, offset, 2)
        out.append(IndexEntry(key, blk_offset, blk_size))
    return out


@dataclass
class Footer:
    """Fixed-size trailer locating the index and filter blocks."""

    index_offset: int
    index_size: int
    filter_offset: int
    filter_size: int
    num_entries: int

    def encode(self) -> bytes:
        fields = (
            self.index_offset.to_bytes(8, "little")
            + self.index_size.to_bytes(8, "little")
            + self.filter_offset.to_bytes(8, "little")
            + self.filter_size.to_bytes(8, "little")
            + self.num_entries.to_bytes(8, "little")
            + _MAGIC.to_bytes(8, "little")
        )
        crc = mask_crc(crc32c(fields))
        return fields + crc.to_bytes(4, "little")

    @classmethod
    def decode(cls, data: bytes) -> "Footer":
        if len(data) != FOOTER_SIZE:
            raise CorruptionError(f"footer wrong size: {len(data)}")
        fields, crc_bytes = data[:-4], data[-4:]
        stored = unmask_crc(int.from_bytes(crc_bytes, "little"))
        if crc32c(fields) != stored:
            raise CorruptionError("footer checksum mismatch")
        magic = int.from_bytes(fields[40:48], "little")
        if magic != _MAGIC:
            raise CorruptionError(f"bad sstable magic: {magic:#x}")
        return cls(
            index_offset=int.from_bytes(fields[0:8], "little"),
            index_size=int.from_bytes(fields[8:16], "little"),
            filter_offset=int.from_bytes(fields[16:24], "little"),
            filter_size=int.from_bytes(fields[24:32], "little"),
            num_entries=int.from_bytes(fields[32:40], "little"),
        )

"""Reads sstables back, paying simulated device time per block touched.

Opening a reader loads the footer, index block, and bloom filter (this is
the "index block caching" the paper discusses for Table 5.1 / Workload C:
engines keep a bounded table cache of open readers, so stores with many
small sstables miss that cache more often).  ``get`` consults the bloom
filter first — the PebblesDB optimization of section 4.1 — and reads at
most one data block on a negative filter answer avoided.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.bloom import BloomFilter
from repro.errors import CorruptionError
from repro.memtable.memtable import GetResult
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.sstable.format import FOOTER_SIZE, Footer, IndexEntry, decode_block, decode_index
from repro.util.keys import KIND_DELETE, KIND_PUT, MAX_SEQUENCE, InternalKey


class SSTableReader:
    """Random and sequential access to one immutable sstable."""

    def __init__(
        self,
        storage: SimulatedStorage,
        name: str,
        footer: Footer,
        index: List[IndexEntry],
        bloom: Optional[BloomFilter],
        file_size: int,
    ) -> None:
        self._storage = storage
        self.name = name
        self._footer = footer
        self._index = index
        self._index_keys = [entry.last_key for entry in index]
        self.bloom = bloom
        self.file_size = file_size

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        storage: SimulatedStorage,
        name: str,
        account: IoAccount,
        *,
        load_bloom: bool = True,
    ) -> "SSTableReader":
        """Read footer + index (+ bloom) and return a ready reader."""
        size = storage.size(name)
        if size < FOOTER_SIZE:
            raise CorruptionError(f"sstable too small: {name}")
        footer = Footer.decode(storage.read(name, size - FOOTER_SIZE, FOOTER_SIZE, account))
        index_raw = storage.read(name, footer.index_offset, footer.index_size, account)
        index = decode_index(index_raw)
        bloom = None
        if load_bloom and footer.filter_size:
            filter_raw = storage.read(
                name, footer.filter_offset, footer.filter_size, account
            )
            bloom = BloomFilter.decode(filter_raw)
        return cls(storage, name, footer, index, bloom, size)

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return self._footer.num_entries

    @property
    def num_blocks(self) -> int:
        return len(self._index)

    @property
    def memory_bytes(self) -> int:
        """Resident footprint: parsed index + bloom (Table 5.4 input)."""
        index_bytes = sum(len(e.last_key.user_key) + 24 for e in self._index)
        bloom_bytes = self.bloom.size_bytes if self.bloom is not None else 0
        return index_bytes + bloom_bytes

    def may_contain(self, user_key: bytes, account: IoAccount) -> bool:
        """Bloom-filter test; True when no filter is loaded."""
        if self.bloom is None:
            return True
        cpu = self._storage.cpu
        account.charge(cpu.charge("bloom_check", cpu.bloom_check))
        return self.bloom.may_contain(user_key)

    # ------------------------------------------------------------------
    def _read_block(self, entry: IndexEntry, account: IoAccount, *, sequential: bool = False):
        raw = self._storage.read(
            self.name, entry.offset, entry.size, account, sequential=sequential
        )
        return decode_block(raw)

    def get(self, user_key: bytes, snapshot: int, account: IoAccount) -> GetResult:
        """Newest visible version of ``user_key`` in this table."""
        cpu = self._storage.cpu
        account.charge(cpu.charge("sstable_search", cpu.sstable_search))
        probe = InternalKey(user_key, min(snapshot, MAX_SEQUENCE), KIND_PUT)
        idx = bisect_left(self._index_keys, probe)
        while idx < len(self._index):
            block = self._read_block(self._index[idx], account)
            pos = bisect_left([k for k, _ in block], probe)
            for key, value in block[pos:]:
                if key.user_key != user_key:
                    return GetResult(False, False, None)
                if key.sequence <= snapshot:
                    if key.kind == KIND_DELETE:
                        return GetResult(True, True, None, key.sequence)
                    return GetResult(True, False, value, key.sequence)
            # All matching entries in this block were newer than the
            # snapshot; the next block may hold older versions.
            idx += 1
        return GetResult(False, False, None)

    # ------------------------------------------------------------------
    def iter_all(self, account: IoAccount, *, cache_insert: bool = True) -> Iterator[
        Tuple[InternalKey, bytes]
    ]:
        """Scan every entry in order (compactions use cache_insert=False)."""
        for entry in self._index:
            raw = self._storage.read(
                self.name,
                entry.offset,
                entry.size,
                account,
                sequential=True,
                cache_insert=cache_insert,
            )
            for item in decode_block(raw):
                yield item

    def seek(self, probe: InternalKey, account: IoAccount) -> Iterator[
        Tuple[InternalKey, bytes]
    ]:
        """Iterate entries starting at the first internal key >= probe."""
        cpu = self._storage.cpu
        account.charge(cpu.charge("sstable_search", cpu.sstable_search))
        idx = bisect_left(self._index_keys, probe)
        first = True
        for entry in self._index[idx:]:
            block = self._read_block(entry, account)
            if first:
                pos = bisect_left([k for k, _ in block], probe)
                block = block[pos:]
                first = False
            for item in block:
                yield item

    def seek_user_key(self, user_key: bytes, account: IoAccount) -> Iterator[
        Tuple[InternalKey, bytes]
    ]:
        """Iterate starting at the newest entry for ``user_key``."""
        return self.seek(InternalKey(user_key, MAX_SEQUENCE, KIND_PUT), account)

    def iter_reverse(
        self, account: IoAccount, max_user_key: Optional[bytes] = None
    ) -> Iterator[Tuple[InternalKey, bytes]]:
        """Iterate entries in descending internal-key order.

        Blocks are visited back to front (each block read costs one
        random read, like a backward scan on a real store); entries with
        user key > ``max_user_key`` are skipped.
        """
        cpu = self._storage.cpu
        account.charge(cpu.charge("sstable_search", cpu.sstable_search))
        for idx in range(len(self._index) - 1, -1, -1):
            if (
                max_user_key is not None
                and idx > 0
                and self._index[idx - 1].last_key.user_key > max_user_key
            ):
                # Every key in this block exceeds the bound.
                continue
            block = self._read_block(self._index[idx], account)
            for key, value in reversed(block):
                if max_user_key is not None and key.user_key > max_user_key:
                    continue
                yield key, value

"""Reads sstables back, paying simulated device time per block touched.

Opening a reader loads the footer, index block, and bloom filter (this is
the "index block caching" the paper discusses for Table 5.1 / Workload C:
engines keep a bounded table cache of open readers, so stores with many
small sstables miss that cache more often).  ``get`` consults the bloom
filter first — the PebblesDB optimization of section 4.1 — and reads at
most one data block on a negative filter answer avoided.

All data-block access funnels through :meth:`SSTableReader._decoded_block`,
which consults the engine's host-side :class:`DecodedBlockCache` when one
is attached.  A cache hit skips the CRC check and varint re-parse but
still charges the *identical* simulated costs (page-cache accounting,
device time, IO statistics) via ``SimulatedStorage.charge_read`` — the
cache saves wall-clock only, never simulated time.  Compaction scans
(``cache_insert=False``) bypass the decoded cache entirely, matching how
they bypass page-cache insertion.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Hashable, Iterator, List, Optional, Tuple

from repro.bloom import BloomFilter
from repro.errors import CorruptionError
from repro.memtable.memtable import GetResult
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.sstable.block_cache import DecodedBlock, DecodedBlockCache
from repro.sstable.format import (
    FOOTER_SIZE,
    Footer,
    IndexEntry,
    decode_block,
    decode_block_with_keys,
    decode_index,
)
from repro.util.keys import KIND_DELETE, KIND_PUT, KIND_SEEK, MAX_SEQUENCE, InternalKey

#: Sentinel "offset" under which a table's parsed metadata lives in the
#: decoded cache.  Real block offsets are non-negative, so it can't collide.
_META_OFFSET = -1

#: Rough per-index-entry host overhead when budgeting cached metadata.
_INDEX_ENTRY_OVERHEAD = 96


class _TableMeta:
    """Parsed footer + index + bloom of one sstable, decoded-cache resident.

    Lets a table-cache miss reopen a reader without re-running
    ``decode_index``/``BloomFilter.decode``; the reopen still charges the
    exact simulated reads ``open`` would issue.
    """

    __slots__ = (
        "footer",
        "index",
        "index_keys",
        "index_sks",
        "bloom",
        "load_bloom",
        "nbytes",
    )

    def __init__(self, footer, index, index_keys, index_sks, bloom, load_bloom) -> None:
        self.footer = footer
        self.index = index
        self.index_keys = index_keys
        self.index_sks = index_sks
        self.bloom = bloom
        self.load_bloom = load_bloom
        self.nbytes = (
            footer.index_size
            + footer.filter_size
            + _INDEX_ENTRY_OVERHEAD * len(index)
        )


class SSTableReader:
    """Random and sequential access to one immutable sstable."""

    def __init__(
        self,
        storage: SimulatedStorage,
        name: str,
        footer: Footer,
        index: List[IndexEntry],
        bloom: Optional[BloomFilter],
        file_size: int,
        block_cache: Optional[DecodedBlockCache] = None,
        cache_key: Optional[Hashable] = None,
        index_keys: Optional[List[InternalKey]] = None,
        index_sks: Optional[List[tuple]] = None,
        zero_copy: bool = True,
    ) -> None:
        self._storage = storage
        self.name = name
        self._footer = footer
        self._index = index
        self._index_keys = (
            index_keys if index_keys is not None else [entry.last_key for entry in index]
        )
        #: Sort-key tuples of ``_index_keys``: bisecting a tuple list is a
        #: pure C comparison per step (no InternalKey.__lt__ frames).
        #: Shared through _TableMeta, so reopens don't rebuild it.
        self._index_sks = (
            index_sks
            if index_sks is not None
            else [key._sort_key() for key in self._index_keys]
        )
        self.bloom = bloom
        self.file_size = file_size
        self._block_cache = block_cache
        #: When set, block decode keeps values as memoryview slices into
        #: the raw block; ``get`` (and the engine scan paths) materialize
        #: bytes only for the value actually returned.
        self._zero_copy = zero_copy
        #: Decoded-cache namespace for this table (the engine passes its
        #: file number); defaults to the file name for standalone readers.
        self._cache_key: Hashable = cache_key if cache_key is not None else name

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        storage: SimulatedStorage,
        name: str,
        account: IoAccount,
        *,
        load_bloom: bool = True,
        block_cache: Optional[DecodedBlockCache] = None,
        cache_key: Optional[Hashable] = None,
        zero_copy: bool = True,
    ) -> "SSTableReader":
        """Read footer + index (+ bloom) and return a ready reader.

        When the engine's decoded cache holds this table's parsed
        metadata (a previous open cached it before the table cache
        evicted the reader), the reopen skips ``decode_index`` and
        ``BloomFilter.decode`` — but still charges the identical
        simulated footer/index/filter reads through ``charge_read``.
        """
        size = storage.size(name)
        if size < FOOTER_SIZE:
            raise CorruptionError(f"sstable too small: {name}")
        ckey: Hashable = cache_key if cache_key is not None else name
        if block_cache is not None:
            meta = block_cache.get(ckey, _META_OFFSET)
            if meta is not None and meta.load_bloom == load_bloom:
                footer = meta.footer
                storage.charge_read(name, size - FOOTER_SIZE, FOOTER_SIZE, account)
                storage.charge_read(name, footer.index_offset, footer.index_size, account)
                if load_bloom and footer.filter_size:
                    storage.charge_read(
                        name, footer.filter_offset, footer.filter_size, account
                    )
                return cls(
                    storage,
                    name,
                    footer,
                    meta.index,
                    meta.bloom,
                    size,
                    block_cache=block_cache,
                    cache_key=ckey,
                    index_keys=meta.index_keys,
                    index_sks=meta.index_sks,
                    zero_copy=zero_copy,
                )
        footer = Footer.decode(storage.read(name, size - FOOTER_SIZE, FOOTER_SIZE, account))
        index_raw = storage.read(name, footer.index_offset, footer.index_size, account)
        index = decode_index(index_raw)
        bloom = None
        if load_bloom and footer.filter_size:
            filter_raw = storage.read(
                name, footer.filter_offset, footer.filter_size, account
            )
            bloom = BloomFilter.decode(filter_raw)
        reader = cls(
            storage,
            name,
            footer,
            index,
            bloom,
            size,
            block_cache=block_cache,
            cache_key=ckey,
            zero_copy=zero_copy,
        )
        if block_cache is not None:
            block_cache.put(
                ckey,
                _META_OFFSET,
                _TableMeta(
                    footer,
                    index,
                    reader._index_keys,
                    reader._index_sks,
                    bloom,
                    load_bloom,
                ),
            )
        return reader

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return self._footer.num_entries

    @property
    def num_blocks(self) -> int:
        return len(self._index)

    @property
    def index_keys(self) -> List[InternalKey]:
        """The last internal key of each data block, in file order."""
        return self._index_keys

    @property
    def memory_bytes(self) -> int:
        """Resident footprint: parsed index + bloom (Table 5.4 input).

        Deliberately excludes any decoded-block cache share: that cache is
        host-side memoization invisible to the simulated memory accounting.
        """
        index_bytes = sum(len(e.last_key.user_key) + 24 for e in self._index)
        bloom_bytes = self.bloom.size_bytes if self.bloom is not None else 0
        return index_bytes + bloom_bytes

    def may_contain(
        self, user_key: bytes, account: IoAccount, h: Optional[int] = None
    ) -> bool:
        """Bloom-filter test; True when no filter is loaded.

        ``h`` is an optional precomputed ``murmur3_64(user_key)`` digest:
        the engine get path hashes the key once and shares the digest
        across every table it screens (the simulated ``bloom_check``
        charge is per probe, exactly as before).
        """
        if self.bloom is None:
            return True
        cpu = self._storage.cpu
        account.charge(cpu.charge("bloom_check", cpu.bloom_check))
        if h is None:
            return self.bloom.may_contain(user_key)
        return self.bloom.may_contain_hash(h)

    # ------------------------------------------------------------------
    def _decoded_block(
        self,
        entry: IndexEntry,
        account: IoAccount,
        *,
        sequential: bool = False,
        cache_insert: bool = True,
    ) -> DecodedBlock:
        """The parsed form of one data block, memoized when cacheable.

        Simulated accounting is identical on both paths: a decoded-cache
        hit charges through ``charge_read`` exactly what the raw ``read``
        below would charge (same page-cache touches, same device time,
        same IO statistics).
        """
        cache = self._block_cache
        if cache is not None and cache_insert:
            block = cache.get(self._cache_key, entry.offset)
            if block is not None:
                self._storage.charge_read(
                    self.name, entry.offset, entry.size, account, sequential=sequential
                )
                return block
        raw = self._storage.read(
            self.name,
            entry.offset,
            entry.size,
            account,
            sequential=sequential,
            cache_insert=cache_insert,
        )
        if cache is not None and cache_insert:
            try:
                entries, keys = decode_block_with_keys(raw, self._zero_copy)
            except CorruptionError:
                # Never leave a partially-decoded table in the cache: a
                # later open of the same file number must re-read the
                # device, not trust host-side state from a bad block.
                cache.drop_file(self._cache_key)
                raise
            block = DecodedBlock(entries, len(raw), keys)
            cache.put(self._cache_key, entry.offset, block)
            return block
        # Not retained: skip the key-array pass (scans never bisect, and
        # a one-shot probe bisects with ``key=`` instead).
        return DecodedBlock(decode_block(raw, self._zero_copy), len(raw))

    def get(
        self,
        user_key: bytes,
        snapshot: int,
        account: IoAccount,
        probe: Optional[InternalKey] = None,
    ) -> GetResult:
        """Newest visible version of ``user_key`` in this table.

        Callers probing many tables for the same key (the engine get
        path) pass a pre-built ``probe`` so the internal key — and its
        memoized sort tuple — is constructed once per lookup, not once
        per table.
        """
        cpu = self._storage.cpu
        account.charge(cpu.charge("sstable_search", cpu.sstable_search))
        if probe is None:
            probe = InternalKey(user_key, min(snapshot, MAX_SEQUENCE), KIND_SEEK)
        idx = bisect_left(self._index_sks, probe._sort_key())
        while idx < len(self._index):
            block = self._decoded_block(self._index[idx], account)
            pos = block.bisect(probe)
            entries = block.entries
            for i in range(pos, len(entries)):
                key, value = entries[i]
                if key.user_key != user_key:
                    return GetResult(False, False, None)
                if key.sequence <= snapshot:
                    if key.kind == KIND_DELETE:
                        return GetResult(True, True, None, key.sequence)
                    return GetResult(True, False, bytes(value), key.sequence, key.kind)
            # All matching entries in this block were newer than the
            # snapshot; the next block may hold older versions.
            idx += 1
        return GetResult(False, False, None)

    # ------------------------------------------------------------------
    def iter_all(self, account: IoAccount, *, cache_insert: bool = True) -> Iterator[
        Tuple[InternalKey, bytes]
    ]:
        """Scan every entry in order (compactions use cache_insert=False)."""
        for entry in self._index:
            block = self._decoded_block(
                entry, account, sequential=True, cache_insert=cache_insert
            )
            yield from block.entries

    def seek(self, probe: InternalKey, account: IoAccount) -> Iterator[
        Tuple[InternalKey, bytes]
    ]:
        """Iterate entries starting at the first internal key >= probe."""
        cpu = self._storage.cpu
        account.charge(cpu.charge("sstable_search", cpu.sstable_search))
        idx = bisect_left(self._index_sks, probe._sort_key())
        first = True
        for entry in self._index[idx:]:
            block = self._decoded_block(entry, account)
            if first:
                pos = block.bisect(probe)
                yield from block.entries[pos:]
                first = False
            else:
                yield from block.entries

    def seek_user_key(self, user_key: bytes, account: IoAccount) -> Iterator[
        Tuple[InternalKey, bytes]
    ]:
        """Iterate starting at the newest entry for ``user_key``."""
        return self.seek(InternalKey(user_key, MAX_SEQUENCE, KIND_SEEK), account)

    def iter_reverse(
        self, account: IoAccount, max_user_key: Optional[bytes] = None
    ) -> Iterator[Tuple[InternalKey, bytes]]:
        """Iterate entries in descending internal-key order.

        Blocks are visited back to front (each block read costs one
        random read, like a backward scan on a real store); entries with
        user key > ``max_user_key`` are skipped.
        """
        cpu = self._storage.cpu
        account.charge(cpu.charge("sstable_search", cpu.sstable_search))
        for idx in range(len(self._index) - 1, -1, -1):
            if (
                max_user_key is not None
                and idx > 0
                and self._index[idx - 1].last_key.user_key > max_user_key
            ):
                # Every key in this block exceeds the bound.
                continue
            block = self._decoded_block(self._index[idx], account)
            for key, value in reversed(block.entries):
                if max_user_key is not None and key.user_key > max_user_key:
                    continue
                yield key, value

"""K-way merging of internal-key-ordered streams.

Used in three places: compaction (merge a guard's or level's sstables),
database iterators (merge memtable + per-level streams), and range queries.
``compaction_iterator`` additionally collapses shadowed versions and
garbage-collects tombstones at the bottom level — the only place a delete
may be forgotten without resurrecting older versions.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.sim.storage import IoAccount
from repro.sim.cpu import CpuCosts
from repro.util.keys import KIND_DELETE, InternalKey

Entry = Tuple[InternalKey, bytes]


def merging_iterator(
    iterators: Iterable[Iterator[Entry]],
    *,
    cpu: Optional[CpuCosts] = None,
    account: Optional[IoAccount] = None,
) -> Iterator[Entry]:
    """Merge ordered entry streams into one ordered stream.

    Internal keys are globally unique (every write gets a fresh sequence
    number) so ties cannot occur.  When ``cpu``/``account`` are given, each
    step charges the merging-iterator CPU cost.
    """
    merged = heapq.merge(*iterators, key=lambda entry: entry[0])
    if cpu is None or account is None:
        yield from merged
        return
    step = cpu.iterator_step
    for entry in merged:
        account.charge(cpu.charge("iterator_step", step))
        yield entry


def compaction_iterator(
    merged: Iterator[Entry],
    *,
    drop_tombstones: bool = False,
    snapshots: Sequence[int] = (),
    on_drop: Optional[Callable[[InternalKey, bytes], None]] = None,
) -> Iterator[Entry]:
    """Collapse a merged stream for writing to the next level.

    Without snapshots, only the newest version of each user key survives
    (older versions are shadowed and can never be observed).  With active
    ``snapshots`` (ascending sequence numbers), a version also survives
    when it is the newest one visible at some snapshot — LevelDB's
    compaction rule, which both engines inherit.

    Tombstones are retained unless ``drop_tombstones`` (bottom level) —
    dropping one higher up would resurrect versions buried below.  A
    tombstone kept alive only for a snapshot is never dropped.

    ``on_drop`` is invoked for every entry the collapse discards (value-log
    liveness accounting: a dropped pointer entry makes its log record
    dead).
    """
    boundaries = sorted(snapshots)
    prev_user_key: Optional[bytes] = None
    prev_kept_seq = 0
    for key, value in merged:
        if key.user_key != prev_user_key:
            prev_user_key = key.user_key
            prev_kept_seq = key.sequence
            if drop_tombstones and key.kind == KIND_DELETE:
                # Droppable only when no snapshot predates it: an older
                # snapshot forces an older PUT of this key to survive,
                # and dropping the tombstone would resurrect that PUT for
                # present-time readers.
                if not boundaries or boundaries[0] >= key.sequence:
                    if on_drop is not None:
                        on_drop(key, value)
                    continue
            yield key, value
            continue
        # An older version of the same user key: visible to a snapshot?
        if _visible_to_some_snapshot(boundaries, key.sequence, prev_kept_seq):
            prev_kept_seq = key.sequence
            yield key, value
        elif on_drop is not None:
            on_drop(key, value)


def _visible_to_some_snapshot(boundaries: Sequence[int], seq: int, newer_seq: int) -> bool:
    """True if a snapshot s exists with seq <= s < newer_seq.

    At such a snapshot this version (not the newer one) is the visible
    one, so compaction must preserve it.
    """
    idx = bisect_left(boundaries, seq)
    return idx < len(boundaries) and boundaries[idx] < newer_seq

"""Constructs an sstable from an ordered entry stream."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.bloom import BloomFilter
from repro.errors import InvalidArgumentError
from repro.sstable.format import (
    DEFAULT_BLOCK_SIZE,
    BlockBuilder,
    Footer,
    IndexEntry,
    encode_index,
    seal_block,
)
from repro.util.keys import InternalKey


@dataclass
class TableProperties:
    """Metadata the engine keeps per sstable (persisted in the MANIFEST)."""

    smallest: InternalKey
    largest: InternalKey
    num_entries: int
    file_size: int
    raw_key_bytes: int
    raw_value_bytes: int


class SSTableBuilder:
    """Feed internal-key-ordered entries; ``finish`` yields file bytes.

    Entries must arrive in strictly increasing internal-key order — the
    invariant every sstable relies on for binary search.
    """

    def __init__(
        self, block_size: int = DEFAULT_BLOCK_SIZE, bloom_bits_per_key: int = 10
    ) -> None:
        self._block_size = block_size
        self._bloom_bits = bloom_bits_per_key
        self._block = BlockBuilder()
        self._blob = bytearray()
        self._index: List[IndexEntry] = []
        self._user_keys: List[bytes] = []
        self._smallest: Optional[InternalKey] = None
        self._largest: Optional[InternalKey] = None
        self._num_entries = 0
        self._raw_key_bytes = 0
        self._raw_value_bytes = 0

    # ------------------------------------------------------------------
    def add(self, key: InternalKey, value: bytes) -> None:
        if self._largest is not None and not (self._largest < key):
            raise InvalidArgumentError(
                f"sstable entries out of order: {self._largest!r} then {key!r}"
            )
        if self._smallest is None:
            self._smallest = key
        self._largest = key
        self._block.add(key, value)
        self._user_keys.append(key.user_key)
        self._num_entries += 1
        self._raw_key_bytes += len(key.user_key)
        self._raw_value_bytes += len(value)
        if self._block.size_bytes >= self._block_size:
            self._flush_block()

    def add_all(self, entries: Iterable[Tuple[InternalKey, bytes]]) -> None:
        for key, value in entries:
            self.add(key, value)

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def estimated_size(self) -> int:
        return len(self._blob) + self._block.size_bytes

    # ------------------------------------------------------------------
    def _flush_block(self) -> None:
        if self._block.count == 0:
            return
        data = seal_block(self._block.finish())
        self._index.append(IndexEntry(self._block.last_key, len(self._blob), len(data)))
        self._blob += data
        self._block.reset()

    def finish(self) -> Tuple[bytes, TableProperties, BloomFilter]:
        """Returns ``(file bytes, properties, bloom filter)``."""
        if self._num_entries == 0:
            raise InvalidArgumentError("cannot build an empty sstable")
        self._flush_block()
        bloom = BloomFilter.for_keys(self._user_keys, self._bloom_bits)
        filter_block = bloom.encode()
        filter_offset = len(self._blob)
        self._blob += filter_block
        index_block = encode_index(self._index)
        index_offset = len(self._blob)
        self._blob += index_block
        footer = Footer(
            index_offset=index_offset,
            index_size=len(index_block),
            filter_offset=filter_offset,
            filter_size=len(filter_block),
            num_entries=self._num_entries,
        )
        self._blob += footer.encode()
        assert self._smallest is not None and self._largest is not None
        props = TableProperties(
            smallest=self._smallest,
            largest=self._largest,
            num_entries=self._num_entries,
            file_size=len(self._blob),
            raw_key_bytes=self._raw_key_bytes,
            raw_value_bytes=self._raw_value_bytes,
        )
        return bytes(self._blob), props, bloom

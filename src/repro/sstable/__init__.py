"""Sorted string tables (sstables).

The on-storage unit of both LSM and FLSM: an immutable file of internal-key
ordered records, laid out as ~4 KiB data blocks, one sstable-level bloom
filter (paper section 4.1), an index block mapping last-key -> block, and a
fixed footer.  Readers pay device time through the simulated storage layer
for every block they touch, so sstable count and size drive read/seek cost
exactly as in the paper.
"""

from repro.sstable.format import (
    FOOTER_SIZE,
    BlockBuilder,
    Footer,
    IndexEntry,
    decode_block,
    decode_block_with_keys,
    decode_index,
    encode_index,
)
from repro.sstable.block_cache import BlockCacheStats, DecodedBlock, DecodedBlockCache
from repro.sstable.builder import SSTableBuilder, TableProperties
from repro.sstable.reader import SSTableReader
from repro.sstable.merger import merging_iterator, compaction_iterator

__all__ = [
    "FOOTER_SIZE",
    "BlockBuilder",
    "BlockCacheStats",
    "DecodedBlock",
    "DecodedBlockCache",
    "Footer",
    "IndexEntry",
    "decode_block",
    "decode_block_with_keys",
    "decode_index",
    "encode_index",
    "SSTableBuilder",
    "TableProperties",
    "SSTableReader",
    "merging_iterator",
    "compaction_iterator",
]

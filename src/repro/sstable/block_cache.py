"""Host-side cache of decoded sstable data blocks.

Every point read and seek used to call :func:`repro.sstable.format.
decode_block` on raw bytes and rebuild a per-block key list before
bisecting, so the pure-Python reproduction spent most of its wall-clock
re-parsing blocks it had already parsed.  :class:`DecodedBlockCache`
memoizes the *parsed* form — the ``(InternalKey, value)`` list plus its
pre-extracted key array — keyed by ``(file_number, block_offset)``.

The cache is **invisible to the simulation**: a hit still charges the
exact device time, page-cache accounting, and IO statistics the raw read
would have (via :meth:`repro.sim.storage.SimulatedStorage.charge_read`);
only the host-side CRC check, varint parsing, and key-list construction
are skipped.  Simulated metrics — device seconds, IO byte counts,
page-cache hit rates — are byte-identical with the cache on or off.
Compaction scans (``cache_insert=False``) bypass it entirely, mirroring
how they bypass page-cache insertion.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.util.keys import InternalKey

Entry = Tuple[InternalKey, bytes]

#: Rough per-entry host-memory overhead (tuple + InternalKey + key-array
#: slot) used when charging a parsed block against the byte budget.
_ENTRY_OVERHEAD = 64

try:  # Python >= 3.10
    bisect_left([], 0, key=lambda item: item)
    _HAVE_BISECT_KEY = True
except TypeError:  # pragma: no cover - depends on interpreter version
    _HAVE_BISECT_KEY = False


def _entry_key(entry: Entry) -> InternalKey:
    return entry[0]


class DecodedBlock:
    """One parsed data block: its entries and a memoized key array."""

    __slots__ = ("entries", "nbytes", "_keys", "_sks")

    def __init__(
        self,
        entries: List[Entry],
        raw_size: int,
        keys: Optional[List[InternalKey]] = None,
    ) -> None:
        self.entries = entries
        #: Budget charge: raw payload plus parsed-object overhead.
        self.nbytes = raw_size + _ENTRY_OVERHEAD * len(entries)
        self._keys = keys
        self._sks: Optional[List[tuple]] = None

    @property
    def keys(self) -> List[InternalKey]:
        """The block's internal keys, extracted once and memoized."""
        keys = self._keys
        if keys is None:
            keys = self._keys = [key for key, _ in self.entries]
        return keys

    def bisect(self, probe: InternalKey) -> int:
        """Index of the first entry with key >= ``probe``.

        Cached (retained) blocks bisect a memoized sort-key tuple list —
        every comparison is a C tuple compare, no ``InternalKey.__lt__``
        frames.  A block that is not retained — cache disabled or a
        bypassing scan — bisects with ``key=`` instead of materializing
        throwaway arrays, where the interpreter supports it.
        """
        if self._keys is not None:
            sks = self._sks
            if sks is None:
                sks = self._sks = [key._sort_key() for key in self._keys]
            return bisect_left(sks, probe._sort_key())
        if _HAVE_BISECT_KEY:
            return bisect_left(self.entries, probe, key=_entry_key)
        return bisect_left(self.keys, probe)


@dataclass
class BlockCacheStats:
    """Hit/miss/eviction counters for one DecodedBlockCache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DecodedBlockCache:
    """Byte-budgeted LRU over parsed sstable artifacts.

    Keys are ``(file_id, block_offset)``; ``file_id`` is the engine's
    sstable file number.  Values are :class:`DecodedBlock` instances for
    data blocks, plus the reader's parsed table metadata (footer + index
    + bloom) under a sentinel offset — anything with an ``nbytes`` budget
    charge.  ``drop_file`` (called when a compaction retires an sstable)
    uses a per-file offset index, so invalidation costs O(blocks of that
    file), not O(everything cached).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("block cache capacity must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._blocks: "OrderedDict[Tuple[Hashable, int], object]" = OrderedDict()
        self._file_index: Dict[Hashable, Set[int]] = {}
        self._size = 0
        self.stats = BlockCacheStats()

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Estimated host bytes currently held."""
        return self._size

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, file_id: Hashable, offset: int):
        """The cached item, freshened in LRU order; None on a miss."""
        block = self._blocks.get((file_id, offset))
        if block is None:
            self.stats.misses += 1
            return None
        self._blocks.move_to_end((file_id, offset))
        self.stats.hits += 1
        return block

    def put(self, file_id: Hashable, offset: int, block) -> None:
        """Insert a freshly parsed item, evicting LRU items over budget."""
        if block.nbytes > self.capacity_bytes:
            return  # would evict everything and still not fit
        key = (file_id, offset)
        old = self._blocks.pop(key, None)
        if old is not None:
            self._size -= old.nbytes
        self._blocks[key] = block
        self._size += block.nbytes
        self._file_index.setdefault(file_id, set()).add(offset)
        self.stats.insertions += 1
        while self._size > self.capacity_bytes:
            (evicted_file, evicted_offset), evicted = self._blocks.popitem(last=False)
            self._size -= evicted.nbytes
            offsets = self._file_index.get(evicted_file)
            if offsets is not None:
                offsets.discard(evicted_offset)
                if not offsets:
                    del self._file_index[evicted_file]
            self.stats.evictions += 1

    def drop_file(self, file_id: Hashable) -> None:
        """Invalidate every block of a deleted sstable."""
        offsets = self._file_index.pop(file_id, None)
        if not offsets:
            return
        for offset in offsets:
            block = self._blocks.pop((file_id, offset), None)
            if block is not None:
                self._size -= block.nbytes

    def cached_files(self) -> Set[Hashable]:
        """File ids with at least one resident block (test/diagnostic aid)."""
        return set(self._file_index)

    def clear(self) -> None:
        self._blocks.clear()
        self._file_index.clear()
        self._size = 0

"""Span-based tracing on the simulated clock with deterministic ids.

A :class:`Tracer` hands out spans whose ids derive purely from
``(component, seed, ordinal)`` — never from ``random`` or wall time — so
re-running the same seeded workload reproduces a byte-identical trace
file.  Timestamps come from the simulated clock; the tracer never
advances it or charges IO, so enabling tracing cannot perturb the
simulation (the MANIFEST/digest determinism tests stay bit-exact with
tracing on or off).

Span kinds:

* ``internal`` — synchronous work on the foreground path (get, write,
  stall, manifest rotation).  These nest via a per-tracer stack; the
  simulation is single-threaded so a stack is exact.
* ``background`` — flush/compaction work executed by the
  :class:`~repro.sim.executor.BackgroundExecutor`.  A background span
  records the *job's* start/completion times and links to the span that
  scheduled it, but since the job runs after its scheduler returns it is
  exempt from the containment nesting invariant.
* ``client`` / ``server`` — the two halves of one ``repro.net`` request.
  The client span's context travels in the wire frame; the server span
  adopts it so one trace id covers client retry → shard → engine →
  background work.
* ``event`` — zero-duration point spans (fault retries, degrade/resume
  transitions).

Spans are written to the sink when they *end*, as compact sorted-key
JSON lines; under the deterministic simulation that order is itself
deterministic.
"""

from __future__ import annotations

import io
import json
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

SpanContext = Tuple[str, str]  # (trace_id, span_id)


class TraceSink:
    """Appends finished spans as JSON lines to a file or stream.

    One sink can be shared by several tracers (the cluster client and
    every shard engine write into the same file, giving a single-file
    cross-layer trace).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.spans_written = 0

    def write(self, record: Dict[str, object]) -> None:
        self._file.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.spans_written += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Span:
    """One timed unit of work; finished spans are immutable JSON records."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "start",
        "end_time",
        "attrs",
        "events",
        "_tracer",
        "_stacked",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        start: float,
        stacked: bool,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs: Dict[str, object] = {}
        self.events: List[Dict[str, object]] = []
        self._tracer = tracer
        self._stacked = stacked

    @property
    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, at: Optional[float] = None, **attrs: object) -> None:
        record: Dict[str, object] = {
            "name": name,
            "t": self._tracer.now() if at is None else at,
        }
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def end(self, at: Optional[float] = None) -> None:
        if self.end_time is not None:
            return
        self.end_time = self._tracer.now() if at is None else at
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.attrs.setdefault("error", type(exc).__name__)
        self.end()


class Tracer:
    """Produces deterministically-identified spans for one component.

    ``clock`` is any object with a ``now`` attribute (the simulated
    clock, or a view of it); ``None`` means all times must be passed
    explicitly.  Ids are ``{component}-{seed:x}-{ordinal:x}`` with a
    single per-tracer ordinal counter shared by spans and root traces,
    so id assignment is a pure function of call order.
    """

    def __init__(
        self,
        sink: TraceSink,
        clock: Optional[object] = None,
        component: str = "store",
        seed: int = 0,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.component = component
        self.seed = seed
        self._ordinal = 0
        self._stack: List[Span] = []
        self._adopted: List[SpanContext] = []

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def _next_id(self, prefix: str = "") -> str:
        self._ordinal += 1
        return f"{prefix}{self.component}-{self.seed:x}-{self._ordinal:x}"

    def current(self) -> Optional[SpanContext]:
        """Context of the innermost open span (stacked or adopted)."""
        if self._stack:
            return self._stack[-1].context
        if self._adopted:
            return self._adopted[-1]
        return None

    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "internal", **attrs: object) -> Span:
        """Open a stacked span nested under the current context.

        Use as a context manager on the synchronous path; the simulation
        is single-threaded so the stack mirrors the call structure.
        """
        span = self.start_span(name, kind=kind, _stacked=True, **attrs)
        self._stack.append(span)
        return span

    def start_span(
        self,
        name: str,
        kind: str = "internal",
        parent: Optional[SpanContext] = None,
        start: Optional[float] = None,
        _stacked: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span; non-stacked spans must be ended explicitly.

        ``parent`` pins the span under a captured context (background
        jobs capture the scheduling span's context); otherwise the
        current context is used, and with no context at all the span
        starts a fresh trace.
        """
        if parent is None:
            parent = self.current()
        span_id = self._next_id()
        if parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = self._next_id("t"), None
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=self.now() if start is None else start,
            stacked=_stacked,
        )
        if attrs:
            span.attrs.update(attrs)
        return span

    def point(self, name: str, at: Optional[float] = None, **attrs: object) -> None:
        """Record a zero-duration event span (fault retry, degrade...)."""
        when = self.now() if at is None else at
        span = self.start_span(name, kind="event", start=when)
        if attrs:
            # Attrs may legitimately be named "kind"/"start"/"parent";
            # set them on the span rather than into start_span's kwargs.
            span.attrs.update(attrs)
        span.end(at=when)

    # ------------------------------------------------------------------
    def adopt(self, context: SpanContext) -> "_AdoptedContext":
        """Nest subsequent spans under a remote (wire-carried) context."""
        return _AdoptedContext(self, context)

    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        if span._stacked:
            # The single-threaded simulation always closes spans LIFO.
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            elif span in self._stack:  # pragma: no cover - defensive
                self._stack.remove(span)
        record: Dict[str, object] = {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "start": span.start,
            "end": span.end_time,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if span.events:
            record["events"] = span.events
        self.sink.write(record)


class _AdoptedContext:
    def __init__(self, tracer: Tracer, context: SpanContext) -> None:
        self._tracer = tracer
        self._context = context

    def __enter__(self) -> SpanContext:
        self._tracer._adopted.append(self._context)
        return self._context

    def __exit__(self, *exc) -> None:
        self._tracer._adopted.pop()


# ----------------------------------------------------------------------
# Reading and validating traces
# ----------------------------------------------------------------------
def read_trace(source: Union[str, IO[str]]) -> List[Dict[str, object]]:
    """Parse a trace JSONL file into span records; raises on bad lines."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    spans: List[Dict[str, object]] = []
    for lineno, line in enumerate(io.StringIO(text), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON: {exc}") from None
        for field in ("trace", "span", "name", "kind", "start", "end"):
            if field not in record:
                raise ValueError(f"trace line {lineno}: missing field {field!r}")
        spans.append(record)
    return spans


def verify_nesting(spans: Sequence[Dict[str, object]]) -> None:
    """Assert no span closes before its children (containment invariant).

    ``background`` spans run after the span that scheduled them returns,
    so they are linked for attribution but exempt from containment; the
    same applies to children of a background span's remote parent that
    the file does not contain (cross-file parents are skipped).
    ``server`` spans are timed on their shard's clock while the client
    parent is timed on the cluster clock view (the max over shards), so
    they too are linked but not containment-checked.
    """
    by_id = {record["span"]: record for record in spans}
    for record in spans:
        if record["kind"] in ("background", "event", "server"):
            continue
        parent_id = record.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None or parent["kind"] in ("background", "event"):
            continue
        if record["start"] < parent["start"] or record["end"] > parent["end"]:
            raise AssertionError(
                f"span {record['span']} ({record['name']}) "
                f"[{record['start']}, {record['end']}] escapes parent "
                f"{parent['span']} ({parent['name']}) "
                f"[{parent['start']}, {parent['end']}]"
            )

"""Deterministic observability: metrics registry and span tracing.

``repro.obs`` is the instrumentation substrate the engines, the
compaction scheduler, and the serving layer all report into:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of typed
  counters, gauges, and log-bucketed histograms (RocksDB-statistics
  style) with snapshot/delta/merge support and Prometheus-style text
  exposition.
* :mod:`repro.obs.trace` — span-based tracing on the *simulated* clock.
  Span and trace ids derive from (component, seed, ordinal) — never from
  ``random`` or wall time — so the same seed reproduces a byte-identical
  trace JSONL.
* :mod:`repro.obs.ledger` — per-cause I/O attribution built from the
  storage layer's per-account byte maps; sums exactly to device totals.
* :mod:`repro.obs.recorder` — always-on bounded flight recorder with
  ``off``/``errors``/``1/N`` sampling and automatic dumps on
  degradation.

All are zero- or near-zero cost when unused: stores carry
``tracer = None`` by default and every hot-path instrumentation site is
guarded by one attribute check; the default ``errors`` recorder mode
leaves the hot path entirely uninstrumented.
"""

from repro.obs.ledger import IoLedger, classify_account
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, parse_sample_mode
from repro.obs.trace import Span, Tracer, TraceSink, read_trace, verify_nesting
from repro.obs.windows import SUMMARY_PERCENTILES, WindowedHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WindowedHistogram",
    "SUMMARY_PERCENTILES",
    "IoLedger",
    "classify_account",
    "FlightRecorder",
    "parse_sample_mode",
    "Span",
    "Tracer",
    "TraceSink",
    "read_trace",
    "verify_nesting",
]

"""Deterministic observability: metrics registry and span tracing.

``repro.obs`` is the instrumentation substrate the engines, the
compaction scheduler, and the serving layer all report into:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of typed
  counters, gauges, and log-bucketed histograms (RocksDB-statistics
  style) with snapshot/delta/merge support and Prometheus-style text
  exposition.
* :mod:`repro.obs.trace` — span-based tracing on the *simulated* clock.
  Span and trace ids derive from (component, seed, ordinal) — never from
  ``random`` or wall time — so the same seed reproduces a byte-identical
  trace JSONL.

Both are zero-cost when unused: stores carry ``tracer = None`` by
default and every hot-path instrumentation site is guarded by one
attribute check.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer, TraceSink, read_trace, verify_nesting
from repro.obs.windows import SUMMARY_PERCENTILES, WindowedHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WindowedHistogram",
    "SUMMARY_PERCENTILES",
    "Span",
    "Tracer",
    "TraceSink",
    "read_trace",
    "verify_nesting",
]

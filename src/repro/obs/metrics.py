"""Typed metrics: counters, gauges, and log-bucketed histograms.

The registry is the store-internal source of truth for operational
counters; :class:`repro.engines.base.StoreStats` is assembled from it on
demand (a *view*), so the flat counter bag the tests and benchmarks read
keeps working while every metric also has a typed, queryable, exportable
home.

Histograms are log-bucketed in the RocksDB-statistics style: bucket
boundaries grow geometrically (``growth`` per bucket, default 2**0.25 ≈
+19%), so memory stays bounded no matter how many samples are recorded
and any percentile is off by at most one bucket width — the bucketing
preserves sample order, so the estimated quantile always lands in the
same bucket as the exact one.

Exposition follows the Prometheus text format (``repro_`` prefix, dots
mapped to underscores, sorted output) so a dump is diffable and
deterministic.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]
LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucketing: first finite boundary and per-bucket growth.
HIST_LO = 1e-9
HIST_GROWTH = 2.0 ** 0.25


def _labels_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _expo_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _expo_labels(labels: LabelItems) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _fmt(value: Number) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class Counter:
    """A monotonically increasing value (int or float)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A value that can move both ways (set, add, or track a maximum)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, n: Number) -> None:
        self.value += n

    def track_max(self, value: Number) -> None:
        if value > self.value:
            self.value = value

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Log-bucketed sample distribution with bounded memory.

    Bucket 0 covers ``(-inf, lo]``; bucket ``i >= 1`` covers
    ``(lo * growth**(i-1), lo * growth**i]``.  ``percentile(q)`` matches
    the ``sorted(samples)[min(n-1, int(q*n))]`` convention of the raw
    sample lists it replaces and is exact to within one bucket width.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "lo",
        "growth",
        "_log_growth",
        "_log_lo",
        "_inv_log_growth",
        "_count",
        "_total",
        "_min",
        "_max",
        "_buckets",
        "_pending",
    )

    #: ``record`` only appends to a pending list; bucketing happens in
    #: batches of this size, keeping the hot path close to a raw
    #: ``list.append`` while memory stays bounded.
    _BATCH = 4096

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        lo: float = HIST_LO,
        growth: float = HIST_GROWTH,
    ) -> None:
        if lo <= 0 or growth <= 1.0:
            raise ValueError("histogram needs lo > 0 and growth > 1")
        self.name = name
        self.labels = labels
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        self._log_lo = math.log(lo)
        self._inv_log_growth = 1.0 / self._log_growth
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._buckets: Dict[int, int] = {}
        self._pending: List[float] = []

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        pending = self._pending
        pending.append(value)
        if len(pending) >= self._BATCH:
            self._drain()

    def _drain(self) -> None:
        pending = self._pending
        if not pending:
            return
        # Sorting (C speed) lets whole runs of samples land in one bucket
        # with a single log/pow + bisect, instead of a log per sample.
        pending.sort()
        self._count += len(pending)
        self._total += sum(pending)
        if pending[0] < self._min:
            self._min = pending[0]
        if pending[-1] > self._max:
            self._max = pending[-1]
        buckets = self._buckets
        lo, growth = self.lo, self.growth
        log_lo, inv = self._log_lo, self._inv_log_growth
        i, n = 0, len(pending)
        while i < n:
            value = pending[i]
            if value <= lo:
                index, upper = 0, lo
            else:
                index = 1 + int((math.log(value) - log_lo) * inv)
                # Guard the boundary case where float rounding puts an
                # exact bucket upper bound one slot too high.
                lower = lo * growth ** (index - 1)
                if lower >= value:
                    index, upper = index - 1, lower
                else:
                    upper = lo * growth ** index
            # Claim at least one sample so rounding on the upper bound
            # can never stall the walk.
            j = max(bisect_right(pending, upper, i, n), i + 1)
            buckets[index] = buckets.get(index, 0) + (j - i)
            i = j
        self._pending = []

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count + len(self._pending)

    @property
    def total(self) -> float:
        self._drain()
        return self._total

    @property
    def min(self) -> float:
        self._drain()
        return self._min

    @property
    def max(self) -> float:
        self._drain()
        return self._max

    @property
    def buckets(self) -> Dict[int, int]:
        self._drain()
        return self._buckets

    def _index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        index = 1 + int((math.log(value) - self._log_lo) * self._inv_log_growth)
        while self.bucket_bounds(index)[0] >= value:
            index -= 1
        return index

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``(exclusive lower, inclusive upper)`` bounds of one bucket."""
        if index <= 0:
            return (0.0, self.lo)
        return (self.lo * self.growth ** (index - 1), self.lo * self.growth ** index)

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    @property
    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    def percentile(self, q: float) -> float:
        """Quantile estimate, within one bucket width of the exact value."""
        self._drain()
        if not self._count:
            return 0.0
        rank = min(self._count - 1, int(q * self._count))
        seen = 0
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            if seen + in_bucket > rank:
                lower, upper = self.bucket_bounds(index)
                # Interpolate by rank inside the bucket; clamp to the
                # recorded extremes so p0/p100 report real sample values.
                position = (rank - seen + 1) / in_bucket
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self._min), self._max)
            seen += in_bucket
        return self._max  # pragma: no cover - unreachable

    def bucket_width_at(self, value: float) -> float:
        """Width of the bucket containing ``value`` (error-bound checks)."""
        lower, upper = self.bucket_bounds(self._index(value))
        return upper - lower

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": dict(self.buckets),
        }

    def merge(self, other: "Histogram") -> None:
        if (other.lo, other.growth) != (self.lo, self.growth):
            raise ValueError("cannot merge histograms with different bucketing")
        self._drain()
        other._drain()
        self._count += other._count
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of typed metrics with deterministic exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        lo: float = HIST_LO,
        growth: float = HIST_GROWTH,
        **labels,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, lo=lo, growth=growth)

    def get(self, name: str, **labels) -> Optional[Metric]:
        return self._metrics.get((name, _labels_key(labels)))

    def value(self, name: str, default: Number = 0, **labels) -> Number:
        metric = self.get(name, **labels)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def __iter__(self) -> Iterable[Metric]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshot / delta / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data view keyed by ``name{label="v"}`` exposition keys."""
        out: Dict[str, object] = {}
        for metric in self:
            key = metric.name + _expo_labels(metric.labels)
            out[key] = metric.snapshot()
        return out

    def delta(self, before: Dict[str, object]) -> Dict[str, object]:
        """Difference between now and an earlier :meth:`snapshot`.

        Counters subtract; gauges report their current value; histograms
        subtract counts/sums/buckets (min/max are since-start).
        """
        out: Dict[str, object] = {}
        for metric in self:
            key = metric.name + _expo_labels(metric.labels)
            prior = before.get(key)
            if isinstance(metric, Counter) and isinstance(prior, (int, float)):
                out[key] = metric.value - prior
            elif isinstance(metric, Histogram) and isinstance(prior, dict):
                buckets = dict(metric.buckets)
                for index, n in prior.get("buckets", {}).items():
                    buckets[index] = buckets.get(index, 0) - n
                out[key] = {
                    "count": metric.count - prior.get("count", 0),
                    "sum": metric.total - prior.get("sum", 0.0),
                    "buckets": {i: n for i, n in buckets.items() if n},
                }
            else:
                out[key] = metric.snapshot()
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (shard aggregation).

        Counters add, gauges take the maximum (peaks stay peaks),
        histograms merge bucket-wise.
        """
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(metric, Histogram):
                    mine = Histogram(
                        metric.name, key[1], lo=metric.lo, growth=metric.growth
                    )
                else:
                    mine = type(metric)(metric.name, key[1])
                self._metrics[key] = mine
            if isinstance(metric, Histogram):
                assert isinstance(mine, Histogram)
                mine.merge(metric)
            elif isinstance(metric, Gauge):
                assert isinstance(mine, Gauge)
                mine.track_max(metric.value)
            else:
                assert isinstance(mine, Counter)
                mine.value += metric.value

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Prometheus-style text exposition (sorted, deterministic)."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for metric in self:
            base = _expo_name(metric.name)
            if base not in seen_types:
                seen_types[base] = metric.kind
                lines.append(f"# TYPE {base} {metric.kind}")
            label_text = _expo_labels(metric.labels)
            if isinstance(metric, Histogram):
                cumulative = 0
                for index in sorted(metric.buckets):
                    cumulative += metric.buckets[index]
                    upper = metric.bucket_bounds(index)[1]
                    le = (
                        "{" + (label_text[1:-1] + "," if label_text else "")
                        + f'le="{upper!r}"' + "}"
                    )
                    lines.append(f"{base}_bucket{le} {cumulative}")
                inf_label = (
                    "{" + (label_text[1:-1] + "," if label_text else "")
                    + 'le="+Inf"' + "}"
                )
                lines.append(f"{base}_bucket{inf_label} {metric.count}")
                lines.append(f"{base}_sum{label_text} {_fmt(metric.total)}")
                lines.append(f"{base}_count{label_text} {metric.count}")
            else:
                lines.append(f"{base}{label_text} {_fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

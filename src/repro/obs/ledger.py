"""Per-cause I/O attribution ledger.

Every device byte in the simulation is already tagged with the
:class:`~repro.sim.storage.IoAccount` that moved it —
:class:`~repro.sim.storage.StorageStats` keeps ``written_by_account`` /
``read_by_account`` / ``syncs_by_account`` maps that sum exactly to the
device totals by construction.  The ledger turns those raw account
names into a stable *cause* taxonomy so ``write_amplification``
decomposes into a table an operator (or a compaction auto-tuner) can
read:

========================  ====================================================
cause                     source
========================  ====================================================
``user``                  foreground puts/gets (logical user bytes)
``wal``                   write-ahead-log appends and group commits
``flush``                 memtable -> L0 sstable builds
``compaction``            legacy aggregate compaction account
``compaction.guard.L<n>`` FLSM guard compactions out of level *n*
``compaction.level.L<n>`` leveled compactions out of level *n*
``vlog.append``           foreground value-log appends (key–value separation)
``vlog.gc``               value-log GC: relocation reads + rewrites
``manifest``              MANIFEST appends and rotations
``shiplog``               durable commit shipping (``net/mp`` parent)
``recover``               crash-recovery replay reads
``backup`` / ``dump``     tooling passes
========================  ====================================================

Account names are ``<store prefix><cause>`` (for example
``shard0/compaction.guard.L2``); :meth:`IoLedger.from_storage` strips
the prefix, takes the last ``/``-separated component as the cause key,
and buckets anything unrecognised under ``other.<name>`` — so the
per-cause sums *always* equal the device totals, which
:meth:`verify_against` asserts.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional

#: Cause keys recognised verbatim (anything else that is not a
#: ``compaction.*`` level bucket lands under ``other.<key>``).
_KNOWN_CAUSES = frozenset(
    {
        "user",
        "wal",
        "flush",
        "compaction",
        "manifest",
        "recover",
        "maintenance",
        "checkpoint",
        "repair",
        "shiplog",
        "backup",
        "dump",
        "vlog.gc",
    }
)


def classify_account(name: str, prefix: str = "") -> str:
    """Map one raw account name to its ledger cause.

    ``prefix`` is the store prefix (``db/``, ``shard0/`` ...); accounts
    from other stores sharing the storage keep their own shard prefix
    stripped too — the cause key is the final ``/``-separated component.
    """
    rest = name[len(prefix):] if prefix and name.startswith(prefix) else name
    key = rest.rsplit("/", 1)[-1]
    if key == "vlog":
        return "vlog.append"
    if key in _KNOWN_CAUSES:
        return key
    if key.startswith("compaction.guard.L") or key.startswith("compaction.level.L"):
        return key
    return f"other.{key}"


class IoLedger:
    """Per-cause write/read bytes and sync counts for one storage device.

    Immutable-ish value object: build via :meth:`from_storage`, combine
    shards via :meth:`merge`, render via :meth:`to_dict` /
    :meth:`to_text` / :meth:`to_json`.
    """

    __slots__ = ("write_bytes", "read_bytes", "syncs")

    def __init__(
        self,
        write_bytes: Optional[Dict[str, int]] = None,
        read_bytes: Optional[Dict[str, int]] = None,
        syncs: Optional[Dict[str, int]] = None,
    ) -> None:
        self.write_bytes: Dict[str, int] = dict(write_bytes or {})
        self.read_bytes: Dict[str, int] = dict(read_bytes or {})
        self.syncs: Dict[str, int] = dict(syncs or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_storage(cls, storage, prefix: str = "") -> "IoLedger":
        """Build a ledger from a ``SimulatedStorage``'s account maps.

        With ``prefix=""`` every account on the device is included (the
        per-cause sums then equal the device totals exactly); a store
        prefix restricts the ledger to that store's traffic.
        """
        stats = storage.stats

        def bucket(source: Mapping[str, int]) -> Dict[str, int]:
            out: Dict[str, int] = {}
            for name, amount in source.items():
                if prefix and not name.startswith(prefix):
                    continue
                cause = classify_account(name, prefix)
                out[cause] = out.get(cause, 0) + amount
            return out

        return cls(
            write_bytes=bucket(stats.written_by_account),
            read_bytes=bucket(stats.read_by_account),
            syncs=bucket(stats.syncs_by_account),
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "IoLedger":
        return cls(
            write_bytes=dict(payload.get("write_bytes", {})),  # type: ignore[arg-type]
            read_bytes=dict(payload.get("read_bytes", {})),  # type: ignore[arg-type]
            syncs=dict(payload.get("syncs", {})),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    @property
    def total_write_bytes(self) -> int:
        return sum(self.write_bytes.values())

    @property
    def total_read_bytes(self) -> int:
        return sum(self.read_bytes.values())

    @property
    def total_syncs(self) -> int:
        return sum(self.syncs.values())

    def merge(self, other: "IoLedger") -> "IoLedger":
        """Sum two ledgers cause-by-cause (cluster aggregation)."""
        merged = IoLedger(self.write_bytes, self.read_bytes, self.syncs)
        for target, source in (
            (merged.write_bytes, other.write_bytes),
            (merged.read_bytes, other.read_bytes),
            (merged.syncs, other.syncs),
        ):
            for cause, amount in source.items():
                target[cause] = target.get(cause, 0) + amount
        return merged

    def verify_against(self, storage) -> None:
        """Assert the exactness invariant: per-cause sums == device totals."""
        stats = storage.stats
        if self.total_write_bytes != stats.bytes_written:
            raise AssertionError(
                f"ledger write bytes {self.total_write_bytes} != device "
                f"{stats.bytes_written}"
            )
        if self.total_read_bytes != stats.bytes_read:
            raise AssertionError(
                f"ledger read bytes {self.total_read_bytes} != device "
                f"{stats.bytes_read}"
            )
        if self.total_syncs != stats.sync_ops:
            raise AssertionError(
                f"ledger syncs {self.total_syncs} != device {stats.sync_ops}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "write_bytes": {k: self.write_bytes[k] for k in sorted(self.write_bytes)},
            "read_bytes": {k: self.read_bytes[k] for k in sorted(self.read_bytes)},
            "syncs": {k: self.syncs[k] for k in sorted(self.syncs)},
            "totals": {
                "write_bytes": self.total_write_bytes,
                "read_bytes": self.total_read_bytes,
                "syncs": self.total_syncs,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_text(self) -> str:
        """Human-readable attribution table (repro-top, shell)."""
        causes = sorted(
            set(self.write_bytes) | set(self.read_bytes) | set(self.syncs)
        )
        total_w = self.total_write_bytes
        lines = [
            f"{'cause':<24} {'write':>12} {'w%':>6} {'read':>12} {'syncs':>7}"
        ]
        for cause in causes:
            w = self.write_bytes.get(cause, 0)
            share = (100.0 * w / total_w) if total_w else 0.0
            lines.append(
                f"{cause:<24} {w:>12} {share:>5.1f}% "
                f"{self.read_bytes.get(cause, 0):>12} {self.syncs.get(cause, 0):>7}"
            )
        lines.append(
            f"{'total':<24} {total_w:>12} {'100.0%' if total_w else '0.0%':>6} "
            f"{self.total_read_bytes:>12} {self.total_syncs:>7}"
        )
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IoLedger):
            return NotImplemented
        return (
            self.write_bytes == other.write_bytes
            and self.read_bytes == other.read_bytes
            and self.syncs == other.syncs
        )

    def __repr__(self) -> str:
        return (
            f"IoLedger(write={self.total_write_bytes}, "
            f"read={self.total_read_bytes}, syncs={self.total_syncs})"
        )

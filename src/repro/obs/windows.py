"""Windowed percentile tracking over simulated time.

A plain :class:`~repro.obs.metrics.Histogram` answers "what was p99 over
the whole run" — which is exactly the number that hides stall cliffs: a
half-second write stall disappears into a million fast writes.  This
module slices the same log-bucketed histograms into fixed-width windows
of *simulated* time, so a latency spike shows up as one bad window
(height = that window's p99/p999, width = how many consecutive windows
stay bad) instead of vanishing into the aggregate.

Windows are keyed by ``int(at // window_seconds)``; everything is a pure
function of the recorded ``(at, value)`` stream, so same-seed runs
produce byte-identical summaries, and per-shard reducers merge into the
cluster-wide view window-by-window (partial windows included).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import HIST_GROWTH, HIST_LO, Histogram

#: Percentiles reported by :meth:`WindowedHistogram.summary`.  The
#: stability bench and the ``repro-trace stalls`` report both read this,
#: so the two always agree on which quantiles exist.
SUMMARY_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p99", 0.99),
    ("p999", 0.999),
)


class WindowedHistogram:
    """Per-window log-bucketed histograms over sim time.

    ``record(at, value)`` lands the sample in the window containing sim
    time ``at``.  Window boundaries follow half-open interval
    convention: window ``i`` covers ``[i * w, (i + 1) * w)``, so a
    sample recorded exactly on a boundary starts the next window.
    """

    __slots__ = ("window_seconds", "lo", "growth", "_windows")

    def __init__(
        self,
        window_seconds: float,
        lo: float = HIST_LO,
        growth: float = HIST_GROWTH,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self.window_seconds = window_seconds
        self.lo = lo
        self.growth = growth
        self._windows: Dict[int, Histogram] = {}

    # ------------------------------------------------------------------
    def window_index(self, at: float) -> int:
        return int(at // self.window_seconds)

    def record(self, at: float, value: float) -> None:
        index = int(at // self.window_seconds)
        hist = self._windows.get(index)
        if hist is None:
            hist = Histogram(
                f"window[{index}]", lo=self.lo, growth=self.growth
            )
            self._windows[index] = hist
        hist.record(value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._windows)

    def __bool__(self) -> bool:
        return bool(self._windows)

    @property
    def total_count(self) -> int:
        return sum(h.count for h in self._windows.values())

    def window(self, index: int) -> Optional[Histogram]:
        return self._windows.get(index)

    def windows(self) -> Iterator[Tuple[int, Histogram]]:
        """(index, histogram) pairs in window order (gaps skipped)."""
        for index in sorted(self._windows):
            yield index, self._windows[index]

    def percentile_series(self, q: float) -> List[Tuple[int, float]]:
        """``(window index, percentile)`` per populated window, in order."""
        return [(i, h.percentile(q)) for i, h in self.windows()]

    def worst(self, q: float) -> float:
        """The highest per-window percentile — the stability headline."""
        return max((h.percentile(q) for h in self._windows.values()), default=0.0)

    def worst_window(self, q: float) -> Optional[int]:
        """Index of the window with the highest ``q`` percentile."""
        worst, at = 0.0, None
        for index, hist in self.windows():
            value = hist.percentile(q)
            if at is None or value > worst:
                worst, at = value, index
        return at

    # ------------------------------------------------------------------
    def merge(self, other: "WindowedHistogram") -> None:
        """Fold ``other``'s windows into this reducer, index by index.

        Partial windows merge like any other: two shards that each saw
        half of window 7 contribute one combined window-7 histogram, as
        if every sample had been recorded on one reducer.
        """
        if other.window_seconds != self.window_seconds:
            raise ValueError("cannot merge different window widths")
        if (other.lo, other.growth) != (self.lo, self.growth):
            raise ValueError("cannot merge different bucketings")
        for index, hist in other._windows.items():
            mine = self._windows.get(index)
            if mine is None:
                mine = Histogram(
                    f"window[{index}]", lo=self.lo, growth=self.growth
                )
                self._windows[index] = mine
            mine.merge(hist)

    # ------------------------------------------------------------------
    def summary(self) -> List[Dict[str, object]]:
        """Deterministic per-window rows (stable key order, sorted windows).

        Each row: window index, the window's sim-time start, sample
        count, mean/max, and every :data:`SUMMARY_PERCENTILES` entry.
        """
        rows: List[Dict[str, object]] = []
        for index, hist in self.windows():
            row: Dict[str, object] = {
                "window": index,
                "start": index * self.window_seconds,
                "count": hist.count,
                "mean": hist.mean,
                "max": hist.max if hist.count else 0.0,
            }
            for name, q in SUMMARY_PERCENTILES:
                row[name] = hist.percentile(q)
            rows.append(row)
        return rows

    def to_text(self) -> str:
        """One fixed-format line per window (byte-stable across runs)."""
        lines = []
        for row in self.summary():
            parts = [
                f"window={row['window']}",
                f"start={row['start']:.6f}",
                f"count={row['count']}",
            ]
            for name, _ in SUMMARY_PERCENTILES:
                parts.append(f"{name}={row[name]:.9f}")
            parts.append(f"max={row['max']:.9f}")
            lines.append(" ".join(parts))
        return "\n".join(lines) + ("\n" if lines else "")

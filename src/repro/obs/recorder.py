"""Always-on flight recorder: a bounded ring of recent spans/events.

Full JSONL tracing costs ~1.66x (BENCH_obs.json) and nobody has it on
when a store actually degrades.  The flight recorder is the cheap
always-on alternative, controlled by the ``trace_sample`` store knob:

* ``"off"`` — recorder disabled; nothing is captured or dumped.
* ``"errors"`` — the hot path stays completely uninstrumented (the
  store's ``tracer`` remains ``None``), but every degraded/faulted
  path records an event into the ring: transient-IO retries,
  background-error degradation, ``CorruptionError``, OVERLOADED
  shedding, supervisor restarts.  This is the default: near-zero cost,
  100% capture on the paths that matter.
* ``"1/N"`` (for example ``"1/64"``) — additionally installs a
  sampling tracer as the store's ``tracer``: every Nth *root* op is
  traced in full (children and the background work it schedules
  included) into the ring; the other N-1 ops pay one counter increment
  and get a shared no-op span.

Records use the exact span-JSON schema of :mod:`repro.obs.trace`
(sim-clock timestamps, ``{component}-{seed:x}-{ordinal:x}`` ids), so a
dump is a valid trace file: :func:`repro.obs.trace.read_trace` parses
it and ``repro-trace`` renders it.  Dumps happen automatically on
degradation, breaker trips, shedding, and corruption; the first line is
a ``flight.dump`` event record carrying the dump reason.
"""

from __future__ import annotations

import collections
import json
import os
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.trace import Span, Tracer, TraceSink


def parse_sample_mode(spec: str) -> Tuple[str, int]:
    """Parse a ``trace_sample`` knob into ``(mode, rate)``.

    Returns ``("off", 0)``, ``("errors", 0)``, or ``("sample", N)``.
    Raises ``ValueError`` on anything else.
    """
    if spec == "off":
        return ("off", 0)
    if spec == "errors":
        return ("errors", 0)
    if spec.startswith("1/"):
        try:
            rate = int(spec[2:])
        except ValueError:
            rate = 0
        if rate >= 1:
            return ("sample", rate)
    raise ValueError(
        f"trace_sample must be 'off', 'errors', or '1/N' (N >= 1): {spec!r}"
    )


class _RingSink(TraceSink):
    """A TraceSink that appends finished span records to a bounded deque."""

    def __init__(self, capacity: int) -> None:
        self.records: Deque[Dict[str, object]] = collections.deque(maxlen=capacity)
        self.spans_written = 0

    def write(self, record: Dict[str, object]) -> None:  # type: ignore[override]
        self.records.append(record)
        self.spans_written += 1

    def flush(self) -> None:  # type: ignore[override]
        pass

    def close(self) -> None:  # type: ignore[override]
        pass


class _NullSpan:
    """Shared no-op span handed to unsampled ops (one per process)."""

    __slots__ = ()

    context = None
    attrs: Dict[str, object] = {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, at: Optional[float] = None, **attrs: object) -> None:
        pass

    def end(self, at: Optional[float] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SamplingTracer(Tracer):
    """Traces every Nth root op in full; others get the shared no-op span.

    The sampling decision is taken when a root span opens (empty stack,
    no adopted context) and sticks for everything nested under it —
    including background jobs it schedules — so a sampled op is always a
    complete trace, never a fragment.
    """

    def __init__(
        self,
        sink: TraceSink,
        clock: Optional[object],
        component: str,
        seed: int,
        rate: int,
    ) -> None:
        super().__init__(sink, clock=clock, component=component, seed=seed)
        self._rate = rate
        self._roots = 0
        self._sampling = False

    def span(self, name: str, kind: str = "internal", **attrs: object):
        if not self._stack and not self._adopted:
            self._roots += 1
            self._sampling = self._roots % self._rate == 0
        if not self._sampling:
            return _NULL_SPAN
        return super().span(name, kind=kind, **attrs)

    def start_span(self, name: str, kind: str = "internal", **kwargs):
        if not self._sampling and kwargs.get("parent") is None:
            return _NULL_SPAN
        return super().start_span(name, kind=kind, **kwargs)

    def point(self, name: str, at: Optional[float] = None, **attrs: object) -> None:
        # Error/degrade events are never sampled away.
        when = self.now() if at is None else at
        span = super(_SamplingTracer, self).start_span(
            name, kind="event", start=when
        )
        if attrs:
            span.attrs.update(attrs)
        span.end(at=when)


class FlightRecorder:
    """Bounded, deterministic ring buffer of recent spans and events.

    One recorder per store (or per supervisor).  ``clock`` is the
    simulated clock (or any object with ``now``); ids derive from
    ``(component, seed, ordinal)`` so same-seed runs produce
    byte-identical rings and dumps.
    """

    def __init__(
        self,
        component: str = "store",
        seed: int = 0,
        clock: Optional[object] = None,
        mode: str = "errors",
        capacity: int = 512,
        dump_dir: Optional[str] = None,
        max_dumps: int = 8,
    ) -> None:
        self.mode, self.sample_rate = parse_sample_mode(mode)
        self.component = component.strip("/").replace("/", "-") or "store"
        self.seed = seed
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.max_dumps = max_dumps
        self._sink = _RingSink(capacity)
        if self.mode == "sample":
            self.tracer: Optional[Tracer] = _SamplingTracer(
                self._sink, clock, self.component, seed, self.sample_rate
            )
        elif self.mode == "errors":
            self.tracer = Tracer(
                self._sink, clock=clock, component=self.component, seed=seed
            )
        else:
            self.tracer = None
        self.dumps = 0
        self.dump_paths: List[str] = []
        self.last_dump: List[Dict[str, object]] = []
        self.last_reason: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def sampling_tracer(self) -> Optional[Tracer]:
        """The tracer a store should install as its hot-path ``tracer``.

        Only ``"1/N"`` mode instruments the hot path; ``"errors"`` mode
        returns ``None`` so every per-op tracer check stays one failed
        ``is None`` test.
        """
        return self.tracer if self.mode == "sample" else None

    def point(self, name: str, at: Optional[float] = None, **attrs: object) -> None:
        """Record one event into the ring (error/degrade sites call this)."""
        if self.tracer is not None:
            self.tracer.point(name, at=at, **attrs)

    def records(self) -> List[Dict[str, object]]:
        """Current ring contents, oldest first."""
        return list(self._sink.records)

    def __len__(self) -> int:
        return len(self._sink.records)

    # ------------------------------------------------------------------
    def dump(self, reason: str, at: Optional[float] = None) -> Optional[str]:
        """Snapshot the ring to disk (or memory) on a degradation event.

        Returns the file path when ``dump_dir`` is set, else ``None``.
        Dumps are capped at ``max_dumps`` per recorder so repeated
        OVERLOADED shedding cannot flood the disk; the in-memory
        ``last_dump`` always reflects the most recent trigger.
        """
        if self.tracer is None:
            return None
        when = at if at is not None else self.tracer.now()
        header: Dict[str, object] = {
            "trace": f"t{self.component}-{self.seed:x}-dump{self.dumps:x}",
            "span": f"{self.component}-{self.seed:x}-dump{self.dumps:x}",
            "parent": None,
            "name": "flight.dump",
            "kind": "event",
            "start": when,
            "end": when,
            "attrs": {
                "reason": reason,
                "component": self.component,
                "records": len(self._sink.records),
            },
        }
        records = [header] + list(self._sink.records)
        self.last_dump = records
        self.last_reason = reason
        self.dumps += 1
        if self.dump_dir is None or self.dumps > self.max_dumps:
            return None
        os.makedirs(self.dump_dir, exist_ok=True)
        path = os.path.join(
            self.dump_dir,
            f"flight-{self.component}-{self.seed:x}-{self.dumps - 1:x}.jsonl",
        )
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                )
        self.dump_paths.append(path)
        return path

    def summary(self) -> Dict[str, object]:
        """Small JSON-friendly status block for the admin plane."""
        return {
            "mode": self.mode,
            "sample_rate": self.sample_rate,
            "capacity": self.capacity,
            "recorded": self._sink.spans_written,
            "in_ring": len(self._sink.records),
            "dumps": self.dumps,
            "last_reason": self.last_reason,
            "dump_paths": list(self.dump_paths),
        }


__all__ = ["FlightRecorder", "parse_sample_mode"]

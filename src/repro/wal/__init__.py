"""Write-ahead log.

Before a write reaches the memtable it is appended to a log file so a
crash loses nothing that was acknowledged.  Records use LevelDB's framing:
the log is a sequence of 32 KiB blocks, each record carries a masked CRC,
length, and a FULL/FIRST/MIDDLE/LAST type so records may span blocks and a
torn tail is detected and dropped cleanly on recovery.
"""

from repro.wal.log import (
    BLOCK_SIZE,
    LogReader,
    LogWriter,
    decode_batch,
    encode_batch,
)

__all__ = ["BLOCK_SIZE", "LogReader", "LogWriter", "encode_batch", "decode_batch"]

"""Record-framed log writer/reader plus the write-batch codec.

Framing (per LevelDB): 32 KiB blocks; each physical record is
``masked_crc(4) | length(2) | type(1) | payload``.  A logical record that
does not fit the current block is split FIRST/MIDDLE/.../LAST; a block tail
smaller than a header is zero-padded.  Readers stop at the first corrupt or
truncated record — exactly the durability boundary a crash leaves.

A *write batch* (one logical record) is ``sequence(8) | count(4)`` followed
by ``kind(1) | varint klen | key [| varint vlen | value]`` per operation.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import CorruptionError
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.util.crc import crc32c, mask_crc, unmask_crc
from repro.util.keys import KIND_DELETE, KIND_PUT, KIND_VPTR
from repro.util.varint import decode_varint32, encode_varint32

BLOCK_SIZE = 32 * 1024
_HEADER_SIZE = 7

_FULL = 1
_FIRST = 2
_MIDDLE = 3
_LAST = 4

#: Operations are (kind, user_key, value) triples; value is b"" for deletes.
Op = Tuple[int, bytes, bytes]


def encode_batch(sequence: int, ops: List[Op]) -> bytes:
    """Serialize a write batch starting at ``sequence``."""
    buf = bytearray()
    buf += sequence.to_bytes(8, "little")
    buf += len(ops).to_bytes(4, "little")
    for kind, key, value in ops:
        if kind not in (KIND_PUT, KIND_DELETE, KIND_VPTR):
            raise ValueError(f"bad op kind: {kind}")
        buf.append(kind)
        buf += encode_varint32(len(key))
        buf += key
        if kind != KIND_DELETE:
            buf += encode_varint32(len(value))
            buf += value
    return bytes(buf)


def decode_batch(data: bytes) -> Tuple[int, List[Op]]:
    """Inverse of :func:`encode_batch`; returns ``(sequence, ops)``."""
    if len(data) < 12:
        raise CorruptionError("write batch too short")
    sequence = int.from_bytes(data[0:8], "little")
    count = int.from_bytes(data[8:12], "little")
    ops: List[Op] = []
    offset = 12
    for _ in range(count):
        if offset >= len(data):
            raise CorruptionError("write batch truncated")
        kind = data[offset]
        offset += 1
        klen, offset = decode_varint32(data, offset)
        key = data[offset : offset + klen]
        if len(key) != klen:
            raise CorruptionError("write batch key truncated")
        offset += klen
        value = b""
        if kind in (KIND_PUT, KIND_VPTR):
            vlen, offset = decode_varint32(data, offset)
            value = data[offset : offset + vlen]
            if len(value) != vlen:
                raise CorruptionError("write batch value truncated")
            offset += vlen
        elif kind != KIND_DELETE:
            raise CorruptionError(f"bad op kind in batch: {kind}")
        ops.append((kind, key, value))
    return sequence, ops


class LogWriter:
    """Appends framed records to a log file."""

    def __init__(self, storage: SimulatedStorage, name: str) -> None:
        self._storage = storage
        self.name = name
        if not storage.exists(name):
            storage.create(name)
        self._block_offset = storage.size(name) % BLOCK_SIZE

    def append(self, payload: bytes, account: IoAccount, *, sync: bool = False) -> None:
        """Write one logical record (fragmenting across blocks as needed).

        The block offset is committed only after the storage append
        succeeds, so a failed (or torn) append leaves the writer's view of
        the file consistent with what actually landed and a retried append
        frames its record correctly.
        """
        out = bytearray()
        remaining = payload
        first = True
        block_offset = self._block_offset
        while True:
            leftover = BLOCK_SIZE - block_offset
            if leftover < _HEADER_SIZE:
                out += b"\x00" * leftover
                block_offset = 0
                leftover = BLOCK_SIZE
            avail = leftover - _HEADER_SIZE
            fragment = remaining[:avail]
            remaining = remaining[avail:]
            if first and not remaining:
                rec_type = _FULL
            elif first:
                rec_type = _FIRST
            elif remaining:
                rec_type = _MIDDLE
            else:
                rec_type = _LAST
            crc = mask_crc(crc32c(bytes([rec_type]) + fragment))
            out += crc.to_bytes(4, "little")
            out += len(fragment).to_bytes(2, "little")
            out.append(rec_type)
            out += fragment
            block_offset += _HEADER_SIZE + len(fragment)
            first = False
            if not remaining:
                break
        self._storage.append(self.name, bytes(out), account)
        self._block_offset = block_offset
        if sync:
            self._storage.sync(self.name, account)

    def sync(self, account: IoAccount) -> None:
        self._storage.sync(self.name, account)


class LogReader:
    """Replays every intact logical record of a log file."""

    def __init__(self, storage: SimulatedStorage, name: str) -> None:
        self._storage = storage
        self.name = name

    def records(self, account: IoAccount, *, strict: bool = False) -> Iterator[bytes]:
        """Yield logical records until EOF or the first corruption.

        In ``strict`` mode, a corrupt or truncated record that starts
        *below* the file's durable (synced) boundary raises
        :class:`CorruptionError` instead of silently stopping: syncs
        happen at logical record boundaries, so everything below the
        boundary was acknowledged as durable and must parse cleanly.  A
        bad record at or past the boundary is the ordinary torn tail a
        crash leaves and stops replay normally in both modes.
        """
        durable = self._storage.synced_size(self.name) if strict else 0

        def damaged(reason: str, at: int) -> bool:
            return strict and at < durable

        data = self._storage.read(
            self.name, 0, self._storage.size(self.name), account, sequential=True
        )
        offset = 0
        pending: Optional[bytearray] = None
        while offset + _HEADER_SIZE <= len(data):
            block_left = BLOCK_SIZE - offset % BLOCK_SIZE
            if block_left < _HEADER_SIZE:
                offset += block_left  # zero-padded block tail
                continue
            stored_crc = unmask_crc(int.from_bytes(data[offset : offset + 4], "little"))
            length = int.from_bytes(data[offset + 4 : offset + 6], "little")
            rec_type = data[offset + 6]
            if rec_type == 0 and length == 0:
                offset += block_left  # padding
                continue
            start = offset + _HEADER_SIZE
            end = start + length
            if end > len(data):
                if damaged("truncated record", offset):
                    raise CorruptionError(
                        f"{self.name}: record at offset {offset} truncated "
                        f"inside the synced region (0..{durable})"
                    )
                return  # torn tail
            fragment = data[start:end]
            if crc32c(bytes([rec_type]) + fragment) != stored_crc:
                if damaged("checksum mismatch", offset):
                    raise CorruptionError(
                        f"{self.name}: record at offset {offset} fails its "
                        f"checksum inside the synced region (0..{durable})"
                    )
                return  # corrupt tail: stop replay
            offset = end
            if rec_type == _FULL:
                pending = None
                yield fragment
            elif rec_type == _FIRST:
                pending = bytearray(fragment)
            elif rec_type == _MIDDLE:
                if pending is None:
                    if damaged("orphan MIDDLE fragment", start):
                        raise CorruptionError(
                            f"{self.name}: orphan record fragment at offset "
                            f"{start} inside the synced region (0..{durable})"
                        )
                    return
                pending += fragment
            elif rec_type == _LAST:
                if pending is None:
                    if damaged("orphan LAST fragment", start):
                        raise CorruptionError(
                            f"{self.name}: orphan record fragment at offset "
                            f"{start} inside the synced region (0..{durable})"
                        )
                    return
                pending += fragment
                yield bytes(pending)
                pending = None
            else:
                if damaged("unknown record type", offset):
                    raise CorruptionError(
                        f"{self.name}: unknown record type {rec_type} at "
                        f"offset {offset} inside the synced region (0..{durable})"
                    )
                return

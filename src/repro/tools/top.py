"""``repro-top`` — live cluster introspection over the admin plane.

Connects to a serving cluster (``repro-server``, loopback or process
mode — the read-only ``Op.ADMIN`` wire op is answered identically by
both) and renders the aggregated observability sections::

    repro-top --connect 127.0.0.1:7380               # one full snapshot
    repro-top --connect 127.0.0.1:7380 --section ledger
    repro-top --connect 127.0.0.1:7380 --watch 2     # refresh every 2s
    repro-top --demo                                 # self-contained demo

Sections:

* ``health``  — per-shard serving state + summed op counters (JSON from
  the wire, rendered as a table).
* ``ledger``  — the I/O attribution ledger: device bytes by cause (WAL,
  flush, guard/level compaction, vlog, ship log, manifest, ...), whose
  rows sum exactly to the device totals.
* ``windows`` — windowed latency percentile series per op.
* ``metrics`` — the merged Prometheus text exposition, verbatim.
* ``all``     — everything above (default).

``--demo`` starts an in-process 2-shard cluster, runs a short seeded
workload, and renders the snapshot — useful for seeing the output format
without a running server.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import List, Optional

from repro.net.client import ClusterClient
from repro.obs.ledger import IoLedger

_SECTIONS = ("health", "ledger", "windows", "metrics")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Render a serving cluster's admin-plane sections.",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="cluster address (repro-server); omit with --demo",
    )
    parser.add_argument(
        "--section",
        choices=_SECTIONS + ("all",),
        default="all",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="refresh every N seconds until interrupted (0 = one snapshot)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a seeded in-process demo cluster instead of connecting",
    )
    parser.add_argument(
        "--demo-ops", type=int, default=2000, help="demo workload size"
    )
    return parser


def render_health(text: str) -> None:
    payload = json.loads(text)
    print(f"{'shard':>5} {'state':<11} health")
    print("-" * 72)
    for row in payload["shards"]:
        print(f"{row['shard']:>5} {row['state']:<11} {row['health']}")
    totals = payload["totals"]
    if totals:
        ops = " ".join(f"{k}={v}" for k, v in sorted(totals.items()) if v)
        print(f"totals: {ops or '(no ops yet)'}")


def render_ledger(text: str) -> None:
    print(IoLedger.from_dict(json.loads(text)).to_text())


def render_windows(text: str) -> None:
    payload = json.loads(text)
    width = payload["window_seconds"]
    print(f"latency percentiles per {width}s window (us):")
    for op, series in sorted(payload["series"].items()):
        names = sorted(series)
        windows = {i for name in names for i, _ in series[name]}
        if not windows:
            print(f"  {op}: (no samples)")
            continue
        header = f"  {op:<8} {'window':>7}"
        for name in names:
            header += f" {name:>9}"
        print(header)
        values = {
            name: dict((i, v) for i, v in series[name]) for name in names
        }
        for index in sorted(windows):
            line = f"  {'':<8} {index * width:>7.2f}"
            for name in names:
                value = values[name].get(index)
                line += (
                    f" {value * 1e6:>9.1f}" if value is not None else f" {'-':>9}"
                )
            print(line)


_RENDERERS = {
    "health": render_health,
    "ledger": render_ledger,
    "windows": render_windows,
    "metrics": lambda text: print(text, end="" if text.endswith("\n") else "\n"),
}


async def render_snapshot(client: ClusterClient, sections: List[str]) -> int:
    status = 0
    for section in sections:
        if len(sections) > 1:
            print(f"== {section} " + "=" * max(0, 60 - len(section)))
        text = await client.admin(section)
        if text is None:
            print(f"repro-top: server does not know section {section!r}",
                  file=sys.stderr)
            status = 1
            continue
        try:
            _RENDERERS[section](text)
        except (KeyError, ValueError) as exc:
            print(f"repro-top: cannot render {section}: {exc}", file=sys.stderr)
            status = 1
        if len(sections) > 1:
            print()
    return status


async def _run_connected(args, sections: List[str]) -> int:
    host, _, port = args.connect.rpartition(":")
    try:
        client = await ClusterClient.open_tcp(host or "127.0.0.1", int(port))
    except Exception as exc:  # connection refused, bad port, ...
        print(f"repro-top: cannot connect to {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    try:
        while True:
            status = await render_snapshot(client, sections)
            if args.watch <= 0:
                return status
            await asyncio.sleep(args.watch)
            print("\n" + "#" * 72 + f"\n# refreshed at {time.strftime('%H:%M:%S')}\n")
    finally:
        await client.aclose()


async def _run_demo(args, sections: List[str]) -> int:
    from repro.net.server import KVServer, ServerConfig

    server = KVServer(ServerConfig(shards=2, uniform_keys=10_000, seed=42))
    client = await ClusterClient.open_loopback(server)
    try:
        for i in range(args.demo_ops):
            await client.put(f"user{i % 1000:016d}".encode(), b"v" * 100)
            if i % 7 == 0:
                await client.get(f"user{(i * 13) % 1000:016d}".encode())
        await server.wait_idle()
        return await render_snapshot(client, sections)
    finally:
        await client.aclose()
        await server.aclose()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sections = list(_SECTIONS) if args.section == "all" else [args.section]
    if args.demo:
        return asyncio.run(_run_demo(args, sections))
    if not args.connect:
        print("repro-top: pass --connect HOST:PORT or --demo", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_run_connected(args, sections))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line tools.

* ``python -m repro.tools.dbbench`` — the db_bench-style CLI runner.
* ``python -m repro.tools.shell`` — an interactive store shell.
* :mod:`repro.tools.repair` — rebuild a store's MANIFEST from its
  sstables after metadata loss.
"""

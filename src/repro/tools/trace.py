"""``repro-trace`` — render span-trace JSONL files for humans.

Reads the trace files written by ``--trace-out`` (db_bench, netbench, or
any :class:`repro.obs.trace.TraceSink` user) and renders one of four
reports::

    repro-trace run.jsonl                      # summary (default)
    repro-trace run.jsonl --report timeline    # flush/compaction timeline
    repro-trace run.jsonl --report stalls      # write-stall attribution
    repro-trace run.jsonl --report reads       # read-path breakdown
    repro-trace flight-*.jsonl --report dump   # flight-recorder dump

Flight-recorder dumps (:mod:`repro.obs.recorder`) are valid trace files
whose first record is a ``flight.dump`` event carrying the dump reason;
``--report dump`` renders the reason plus the ring's recent events in
order.  A dump ring may hold children whose parents were already
evicted, so the nesting check is skipped for this report only.

Exits non-zero when the file cannot be decoded (2), is empty (1), or
violates the span-nesting invariant (1) — the CI trace-smoke job pipes a
fresh trace through every report mode and asserts a zero exit.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.obs.trace import read_trace, verify_nesting
from repro.obs.windows import SUMMARY_PERCENTILES, WindowedHistogram

#: Background span names that belong on the compaction/flush timeline.
_TIMELINE_NAMES = ("flush", "compaction", "compaction.move", "compaction.guard")

#: Every stall-cause label the engines emit, with a one-line gloss.  The
#: stalls report annotates known causes and flags unknown ones, so a
#: renamed label fails loudly here and in the stability bench together.
_STALL_CAUSES = {
    "imm_backpressure": "waiting for a memtable flush",
    "l0_slowdown": "cliff soft-limit delay (fixed)",
    "l0_graduated": "graduated soft-limit delay (debt-proportional)",
    "l0_stop": "hard stop: Level 0 at stop trigger",
    "l0_stop_conflict": "hard stop while the L0 drain was conflict-blocked",
    "flush_wait": "explicit flush/close wait",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render repro span-trace JSONL files.",
    )
    parser.add_argument("trace", help="trace JSONL file (from --trace-out)")
    parser.add_argument(
        "--report",
        choices=("summary", "timeline", "stalls", "reads", "dump"),
        default="summary",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=40,
        help="max timeline rows to print (0 = all)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.0,
        help="sim-seconds per stability window in the stalls report "
        "(0 = auto: 1/20 of the traced write span)",
    )
    return parser


def _attr(span: Dict[str, object], key: str, default=None):
    attrs = span.get("attrs")
    if isinstance(attrs, dict):
        return attrs.get(key, default)
    return default


def _fmt_bytes(n: Optional[object]) -> str:
    if not isinstance(n, (int, float)):
        return "-"
    return f"{n / 1e6:.2f}MB" if n >= 1e5 else f"{int(n)}B"


def report_summary(spans: List[Dict[str, object]]) -> None:
    by_name: Dict[str, List[Dict[str, object]]] = {}
    traces = set()
    for span in spans:
        by_name.setdefault(str(span["name"]), []).append(span)
        traces.add(span["trace"])
    t_lo = min(float(s["start"]) for s in spans)
    t_hi = max(float(s["end"]) for s in spans)
    print(
        f"{len(spans)} spans, {len(traces)} traces, "
        f"sim window [{t_lo:.6f}s, {t_hi:.6f}s]"
    )
    print(f"{'name':<20} {'kind':<10} {'count':>7} {'total-s':>10} {'mean-us':>9}")
    print("-" * 60)
    for name in sorted(by_name):
        group = by_name[name]
        total = sum(float(s["end"]) - float(s["start"]) for s in group)
        mean_us = total / len(group) * 1e6
        print(
            f"{name:<20} {group[0]['kind']:<10} {len(group):>7} "
            f"{total:>10.4f} {mean_us:>9.1f}"
        )


def report_timeline(spans: List[Dict[str, object]], limit: int) -> None:
    jobs = [s for s in spans if s["name"] in _TIMELINE_NAMES]
    if not jobs:
        print("no flush/compaction spans in this trace")
        return
    jobs.sort(key=lambda s: (float(s["start"]), float(s["end"])))
    print(
        f"{'start-s':>10} {'dur-ms':>8} {'name':<17} {'lvl':>3} "
        f"{'in':>9} {'out':>9} {'wait-ms':>8}  guard"
    )
    print("-" * 78)
    shown = jobs if limit <= 0 else jobs[:limit]
    for span in shown:
        duration_ms = (float(span["end"]) - float(span["start"])) * 1e3
        wait = _attr(span, "queue_wait", _attr(span, "conflict_wait"))
        wait_ms = f"{wait * 1e3:8.2f}" if isinstance(wait, (int, float)) else "       -"
        guard_lo = _attr(span, "guard_lo", _attr(span, "guard"))
        guard = "" if guard_lo is None else str(guard_lo)
        hi = _attr(span, "guard_hi")
        if hi is not None:
            guard = f"{guard}..{hi}"
        level = _attr(span, "level", "-")
        print(
            f"{float(span['start']):>10.4f} {duration_ms:>8.2f} "
            f"{span['name']:<17} {str(level):>3} "
            f"{_fmt_bytes(_attr(span, 'bytes_in')):>9} "
            f"{_fmt_bytes(_attr(span, 'bytes_out')):>9} {wait_ms}  {guard}"
        )
    if limit > 0 and len(jobs) > limit:
        print(f"... {len(jobs) - limit} more (raise --limit)")


def report_stalls(spans: List[Dict[str, object]], window: float = 0.0) -> None:
    stalls = [s for s in spans if s["name"] == "stall"]
    writes = [s for s in spans if s["name"] == "write"]
    if not stalls and not writes:
        print("no stall or write spans in this trace")
        return
    if stalls:
        by_cause: Dict[str, List[float]] = {}
        for span in stalls:
            cause = str(_attr(span, "cause", "unknown"))
            by_cause.setdefault(cause, []).append(
                float(span["end"]) - float(span["start"])
            )
        total = sum(sum(v) for v in by_cause.values())
        print(f"{'cause':<20} {'count':>7} {'seconds':>12} {'share':>7}  note")
        print("-" * 76)
        for cause in sorted(by_cause, key=lambda c: -sum(by_cause[c])):
            seconds = sum(by_cause[cause])
            share = seconds / total * 100 if total else 0.0
            note = _STALL_CAUSES.get(cause, "(unknown cause label)")
            print(
                f"{cause:<20} {len(by_cause[cause]):>7} {seconds:>12.6f} "
                f"{share:>6.1f}%  {note}"
            )
        print("-" * 76)
        print(f"{'total':<20} {len(stalls):>7} {total:>12.6f}")
    else:
        print("no stall spans in this trace")
    if not writes:
        return
    # Per-window write-latency percentiles: the same reducer and quantile
    # names the stability bench uses, so the two reports agree.
    t_lo = min(float(s["start"]) for s in writes)
    t_hi = max(float(s["end"]) for s in writes)
    if window <= 0:
        window = max((t_hi - t_lo) / 20.0, 1e-6)
    reducer = WindowedHistogram(window)
    for span in writes:
        start = float(span["start"])
        reducer.record(start, float(span["end"]) - start)
    stall_by_window: Dict[int, float] = {}
    for span in stalls:
        index = reducer.window_index(float(span["start"]))
        stall_by_window[index] = stall_by_window.get(index, 0.0) + (
            float(span["end"]) - float(span["start"])
        )
    names = [name for name, _ in SUMMARY_PERCENTILES]
    print()
    print(f"write latency per {window:.6f}s window (us):")
    header = f"{'window-start':>13} {'writes':>7}"
    for name in names:
        header += f" {name:>9}"
    header += f" {'stall-s':>9}"
    print(header)
    print("-" * len(header))
    for row in reducer.summary():
        line = f"{row['start']:>13.6f} {row['count']:>7}"
        for name in names:
            line += f" {float(row[name]) * 1e6:>9.1f}"
        line += f" {stall_by_window.get(row['window'], 0.0):>9.6f}"
        print(line)


def report_reads(spans: List[Dict[str, object]]) -> None:
    gets = [s for s in spans if s["name"] == "get"]
    searches = [s for s in spans if s["name"] == "table.search"]
    if not gets and not searches:
        print("no read-path spans in this trace")
        return
    if gets:
        found = sum(1 for s in gets if _attr(s, "found"))
        sources: Dict[str, int] = {}
        for span in gets:
            source = str(_attr(span, "source", "miss"))
            sources[source] = sources.get(source, 0) + 1
        total_s = sum(float(s["end"]) - float(s["start"]) for s in gets)
        print(
            f"gets: {len(gets)} ({found} found), "
            f"mean {total_s / len(gets) * 1e6:.1f}us"
        )
        for source in sorted(sources):
            print(f"  source {source:<10} {sources[source]:>7}")
    if searches:
        probed: Dict[object, int] = {}
        skipped: Dict[object, int] = {}
        for span in searches:
            level = _attr(span, "level")
            probed[level] = probed.get(level, 0) + int(
                _attr(span, "files_probed", 0) or 0
            )
            skipped[level] = skipped.get(level, 0) + int(
                _attr(span, "bloom_skipped", 0) or 0
            )
        print(f"table searches: {len(searches)} (grouped by found-at level)")
        print(f"{'level':>7} {'files-probed':>13} {'bloom-skipped':>14}")
        levels = sorted(
            set(probed) | set(skipped), key=lambda x: (x is None, str(x))
        )
        for level in levels:
            label = "(miss)" if level is None else str(level)
            print(
                f"{label:>7} {probed.get(level, 0):>13} "
                f"{skipped.get(level, 0):>14}"
            )


def report_dump(spans: List[Dict[str, object]], limit: int) -> None:
    """Render a flight-recorder dump: reason header + recent records."""
    header = next((s for s in spans if s["name"] == "flight.dump"), None)
    if header is not None:
        print(
            f"flight dump: reason={_attr(header, 'reason', '?')} "
            f"component={_attr(header, 'component', '?')} "
            f"at={float(header['start']):.6f}s "
            f"({_attr(header, 'records', 0)} ring records)"
        )
    else:
        print("flight dump: (no flight.dump header — plain trace file?)")
    records = [s for s in spans if s is not header]
    if not records:
        print("ring was empty at dump time")
        return
    records.sort(key=lambda s: (float(s["start"]), float(s["end"])))
    print(f"{'start-s':>12} {'dur-us':>9} {'kind':<11} {'name':<26} attrs")
    print("-" * 84)
    shown = records if limit <= 0 else records[-limit:]
    if len(shown) < len(records):
        print(f"... {len(records) - len(shown)} earlier (raise --limit)")
    for span in shown:
        duration_us = (float(span["end"]) - float(span["start"])) * 1e6
        attrs = span.get("attrs") or {}
        attr_text = " ".join(
            f"{k}={v}" for k, v in sorted(attrs.items()) if k != "component"
        )
        print(
            f"{float(span['start']):>12.6f} {duration_us:>9.1f} "
            f"{str(span['kind']):<11} {str(span['name']):<26} {attr_text}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spans = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"repro-trace: {args.trace} contains no spans", file=sys.stderr)
        return 1
    if args.report != "dump":
        # A dump ring may hold spans whose parents were evicted, so the
        # nesting invariant only applies to full trace files.
        try:
            verify_nesting(spans)
        except AssertionError as exc:
            print(f"repro-trace: nesting violation: {exc}", file=sys.stderr)
            return 1
    try:
        if args.report == "summary":
            report_summary(spans)
        elif args.report == "timeline":
            report_timeline(spans, args.limit)
        elif args.report == "stalls":
            report_stalls(spans, args.window)
        elif args.report == "dump":
            report_dump(spans, args.limit)
        else:
            report_reads(spans)
    except BrokenPipeError:  # downstream `head` closed the pipe; not an error
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Interactive shell for a simulated key-value store.

::

    python -m repro.tools.shell --engine pebblesdb
    > put color blue
    > get color
    blue
    > scan a z
    > stats
    > layout
    > crash        # simulate power failure and recover
    > quit

Also usable non-interactively: pipe commands on stdin (tests do this).
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import IO, List, Optional

import repro
from repro.engines.registry import ENGINES

HELP = """\
commands:
  put <key> <value>      store a mapping
  get <key>              read the latest value
  del <key>              delete a key
  scan [start] [limit]   list pairs from start (default 20 rows)
  range <lo> <hi>        inclusive range query
  stats                  operational counters (IO, amplification, stalls)
  metrics                full metrics registry (Prometheus-style text)
  property [<name>]      read a store property; no argument lists names
  layout                 on-storage layout (levels/guards)
  compact                run compaction to a steady state
  flush                  flush the memtable
  crash                  simulate power failure, then recover the store
  time                   simulated clock
  help                   this text
  quit                   exit
"""


class StoreShell:
    """Parses and executes shell commands against one store."""

    def __init__(
        self,
        engine: str,
        out: IO[str] = sys.stdout,
        value_separation_bytes: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.env = repro.Environment()
        self.options = None
        if value_separation_bytes is not None:
            import dataclasses

            from repro.engines.options import StoreOptions

            self.options = dataclasses.replace(
                StoreOptions.for_preset(engine),
                value_separation_bytes=value_separation_bytes,
            )
        self.db = repro.open_store(
            engine, self.env.storage, options=self.options, prefix="db/"
        )
        self.out = out

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    # ------------------------------------------------------------------
    def execute(self, line: str) -> bool:
        """Run one command; returns False when the shell should exit."""
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            self._print(f"parse error: {exc}")
            return True
        if not parts:
            return True
        cmd, args = parts[0].lower(), parts[1:]
        try:
            return self._dispatch(cmd, args)
        except Exception as exc:  # surface, don't kill the shell
            self._print(f"error: {exc}")
            return True

    def _dispatch(self, cmd: str, args: List[str]) -> bool:
        if cmd in ("quit", "exit"):
            self.db.close()
            return False
        if cmd == "help":
            self._print(HELP)
        elif cmd == "put" and len(args) == 2:
            self.db.put(args[0].encode(), args[1].encode())
            self._print("ok")
        elif cmd == "get" and len(args) == 1:
            value = self.db.get(args[0].encode())
            self._print(value.decode(errors="replace") if value is not None else "(not found)")
        elif cmd == "del" and len(args) == 1:
            self.db.delete(args[0].encode())
            self._print("ok")
        elif cmd == "scan":
            start = args[0].encode() if args else b""
            limit = int(args[1]) if len(args) > 1 else 20
            shown = 0
            for key, value in self.db.scan(start):
                self._print(f"{key.decode(errors='replace')} -> "
                            f"{value.decode(errors='replace')}")
                shown += 1
                if shown >= limit:
                    self._print("...")
                    break
            if not shown:
                self._print("(empty)")
        elif cmd == "range" and len(args) == 2:
            for key, value in self.db.range_query(args[0].encode(), args[1].encode()):
                self._print(f"{key.decode(errors='replace')} -> "
                            f"{value.decode(errors='replace')}")
        elif cmd == "stats":
            stats = self.db.stats()
            self._print(
                f"puts={stats.puts} gets={stats.gets} deletes={stats.deletes} "
                f"seeks={stats.seeks}"
            )
            self._print(
                f"user W {stats.user_bytes_written / 1e6:.2f} MB | device W "
                f"{stats.device_bytes_written / 1e6:.2f} MB R "
                f"{stats.device_bytes_read / 1e6:.2f} MB | amp "
                f"{stats.write_amplification:.2f}x"
            )
            self._print(
                f"sstables={stats.sstable_count} stalls={stats.stall_seconds:.3f}s "
                f"sim-time={self.env.now:.3f}s"
            )
            health = self.db.get_property("repro.health")
            if health is not None:
                self._print(f"health={health}")
            if stats.degraded:
                self._print(
                    f"background error: "
                    f"{self.db.get_property('repro.background-error')}"
                )
            scheduler = self.db.get_property("repro.compaction-scheduler")
            if scheduler is not None:
                self._print(f"compaction scheduler: {scheduler}")
            extra = getattr(stats, "extra", {})
            if extra.get("overload_rejects") or extra.get("retry_after_hints"):
                self._print(
                    f"overload: rejects={int(extra['overload_rejects'])} "
                    f"retry-after-hints={int(extra['retry_after_hints'])}"
                )
            vlog = self.db.get_property("repro.vlog")
            if vlog is not None and vlog != "disabled":
                self._print(f"value log: {vlog}")
                if "vlog_gc_relocated" in extra:
                    self._print(
                        f"value-log GC: relocated "
                        f"{int(extra['vlog_gc_relocated'])} B, dead "
                        f"{int(extra['vlog_dead_bytes'])} B awaiting GC"
                    )
            if stats.block_cache_hits or stats.block_cache_misses:
                self._print(
                    f"block cache: {stats.block_cache_hit_rate * 100:.1f}% hits "
                    f"({stats.block_cache_hits} hit / "
                    f"{stats.block_cache_misses} miss)"
                )
        elif cmd == "metrics":
            text = self.db.get_property("repro.metrics")
            self._print(text if text else "(engine exposes no metrics)")
        elif cmd == "property":
            if not args:
                for name in self.db.property_names():
                    self._print(name)
            else:
                value = self.db.get_property(args[0])
                self._print(value if value is not None else "(no such property)")
        elif cmd == "layout":
            layout = getattr(self.db, "layout", None)
            self._print(layout() if layout else "(engine has no layout view)")
        elif cmd == "compact":
            self.db.compact_all()
            self._print("compacted")
        elif cmd == "flush":
            self.db.flush_memtable()
            self._print("flushed")
        elif cmd == "crash":
            self.env.storage.crash()
            self.db = repro.open_store(
                self.engine, self.env.storage, options=self.options, prefix="db/"
            )
            self._print("crashed and recovered")
        elif cmd == "time":
            self._print(f"{self.env.now:.6f} s")
        else:
            self._print(f"unknown command: {cmd!r} (try 'help')")
        return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-shell", description="Interactive simulated key-value store."
    )
    parser.add_argument("--engine", choices=ENGINES, default="pebblesdb")
    parser.add_argument(
        "--value-separation-bytes", type=int, default=None, metavar="N",
        help="store values >= N bytes in the value log (LSM engines)",
    )
    args = parser.parse_args(argv)
    shell = StoreShell(args.engine, value_separation_bytes=args.value_separation_bytes)
    interactive = sys.stdin.isatty()
    if interactive:
        print(f"repro shell ({args.engine}); 'help' for commands")
    for line in sys.stdin:
        if not shell.execute(line):
            return 0
        if interactive:
            print("> ", end="", flush=True)
    shell.db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

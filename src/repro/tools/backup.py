"""Consistent store backups on the simulated device.

``create_backup`` copies the live version of a store — the files its
CURRENT MANIFEST references, the MANIFEST itself, and any live WALs — to
another prefix.  The store should be quiesced first (``wait_idle``);
the function verifies the metadata is complete and the referenced files
exist, so a torn backup is impossible to create silently.

``restore_backup`` copies a backup over a (possibly destroyed) store
prefix, after which the store opens through the normal recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import CorruptionError, ReproError
from repro.sim.storage import SimulatedStorage
from repro.version import ManifestReader, read_current, set_current
from repro.version.manifest import CURRENT_NAME


@dataclass
class BackupReport:
    """What a backup/restore touched."""

    files_copied: int = 0
    bytes_copied: int = 0
    names: List[str] = field(default_factory=list)


def _copy_file(
    storage: SimulatedStorage, src: str, dst: str, report: BackupReport
) -> None:
    acct = storage.foreground_account("backup")
    if storage.exists(dst):
        storage.delete(dst)
    storage.create(dst)
    data = storage.read(src, 0, storage.size(src), acct, sequential=True)
    storage.append(dst, data, acct)
    storage.sync(dst, acct)
    report.files_copied += 1
    report.bytes_copied += len(data)
    report.names.append(dst)


def _live_files(storage: SimulatedStorage, prefix: str) -> List[str]:
    """The manifest plus every file the live version references."""
    acct = storage.foreground_account("backup")
    manifest = read_current(storage, acct, prefix)
    if manifest is None:
        raise ReproError(f"no CURRENT under {prefix!r}: nothing to back up")
    live: set = set()
    dead: set = set()
    retired_vlog: set = set()
    for edit in ManifestReader(storage, manifest).edits(acct):
        for _, meta, _, _ in edit.new_files:
            live.add(meta.number)
        for _, number in edit.deleted_files:
            dead.add(number)
        retired_vlog.update(edit.deleted_vlog_segments)
    live -= dead
    names = [manifest]
    for number in sorted(live):
        name = f"{prefix}{number:06d}.sst"
        if not storage.exists(name):
            raise CorruptionError(f"live sstable missing, refusing to back up: {name}")
        names.append(name)
    for name in storage.list_files(prefix):
        if name.endswith(".log"):
            names.append(name)
        elif name.endswith(".vlg"):
            # Value-log segments: every surviving segment may hold records
            # the live sstables point into; manifest-retired ones are dead.
            if int(name[len(prefix):-4]) not in retired_vlog:
                names.append(name)
    return names


def create_backup(
    storage: SimulatedStorage, src_prefix: str, dst_prefix: str
) -> BackupReport:
    """Copy the live store at ``src_prefix`` to ``dst_prefix``."""
    if src_prefix == dst_prefix:
        raise ReproError("backup destination must differ from the source")
    report = BackupReport()
    names = _live_files(storage, src_prefix)
    manifest_src = names[0]
    manifest_dst = dst_prefix + manifest_src[len(src_prefix):]
    for name in names:
        _copy_file(storage, name, dst_prefix + name[len(src_prefix):], report)
    acct = storage.foreground_account("backup")
    set_current(storage, manifest_dst, acct, dst_prefix)
    report.files_copied += 1  # CURRENT
    report.names.append(dst_prefix + CURRENT_NAME)
    return report


def restore_backup(
    storage: SimulatedStorage, backup_prefix: str, dst_prefix: str
) -> BackupReport:
    """Replace whatever is at ``dst_prefix`` with the backup's contents."""
    if backup_prefix == dst_prefix:
        raise ReproError("restore destination must differ from the backup")
    acct = storage.foreground_account("backup")
    if read_current(storage, acct, backup_prefix) is None:
        raise ReproError(f"{backup_prefix!r} does not contain a backup")
    # Clear the destination.
    for name in list(storage.list_files(dst_prefix)):
        storage.delete(name)
    report = BackupReport()
    manifest_dst = None
    for name in storage.list_files(backup_prefix):
        base = name[len(backup_prefix):]
        if base == CURRENT_NAME:
            continue
        _copy_file(storage, name, dst_prefix + base, report)
        if base.startswith("MANIFEST-"):
            manifest_dst = dst_prefix + base
    if manifest_dst is None:
        raise CorruptionError("backup contains no MANIFEST")
    set_current(storage, manifest_dst, acct, dst_prefix)
    report.files_copied += 1
    report.names.append(dst_prefix + CURRENT_NAME)
    return report

"""db_bench-style command line runner.

Mirrors LevelDB's ``db_bench`` flags on the simulated stores::

    python -m repro.tools.dbbench --engine pebblesdb \
        --num 20000 --value-size 1024 --threads 1 \
        --benchmarks fillrandom,readrandom,seekrandom

Prints one result row per benchmark phase (simulated KOps/s and exact
device IO) and a final stats block.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.engines.registry import ENGINES
from repro.errors import ReproError
from repro.harness import fresh_run, standard_config
from repro.sim.aging import FilesystemAging
from repro.sim.device import DeviceModel
from repro.sim.faults import FaultInjector, FaultPlan
from repro.workloads.db_bench import BenchResult

#: Benchmarks the CLI understands, in db_bench naming.
BENCHMARKS = (
    "fillseq",
    "fillrandom",
    "fillsync",
    "overwrite",
    "readrandom",
    "readmissing",
    "readhot",
    "readseq",
    "seekrandom",
    "rangequery",
    "deleterandom",
    "mixed",
    "compact",
    "fillrandom-large",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dbbench",
        description="Run db_bench-style workloads against a simulated store.",
    )
    parser.add_argument(
        "--engine",
        default="pebblesdb",
        help="engine name, comma-separated list, or 'all' to compare "
        f"(choices: {', '.join(ENGINES)})",
    )
    parser.add_argument("--num", type=int, default=20000, help="number of keys")
    parser.add_argument("--value-size", type=int, default=1024)
    parser.add_argument("--reads", type=int, default=None, help="read ops (default: num/4)")
    parser.add_argument("--seeks", type=int, default=None, help="seek ops (default: num/8)")
    parser.add_argument("--nexts", type=int, default=50, help="next() calls per rangequery")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cache-mb", type=float, default=None, help="page cache size (default: dataset/3)"
    )
    parser.add_argument(
        "--block-cache-mb",
        type=float,
        default=None,
        help="host-side decoded-block cache in MB (0 disables; wall-clock "
        "only, simulated metrics are identical either way)",
    )
    parser.add_argument("--device", choices=("ssd", "ssd-raid0", "hdd"), default="ssd-raid0")
    parser.add_argument(
        "--compaction-workers",
        type=int,
        default=None,
        help="background worker timelines (default: the engine preset's)",
    )
    parser.add_argument(
        "--guard-parallel",
        choices=("on", "off"),
        default="on",
        help="FLSM compaction scheduling granularity: 'on' runs "
        "independent guard jobs concurrently under the conflict map, "
        "'off' restores whole-level serialization (pebblesdb only)",
    )
    parser.add_argument(
        "--value-separation-bytes",
        type=int,
        default=None,
        metavar="N",
        help="store values >= N bytes in the garbage-collected value log "
        "instead of the LSM tree (KV separation; default: off)",
    )
    parser.add_argument("--aged-fs", action="store_true", help="age the file system first")
    parser.add_argument(
        "--fault-plan",
        default=None,
        help="inject storage faults while benchmarking; one or more "
        "';'-separated specs 'kind:op:pattern:trigger[:times=N][:torn=F]' "
        "with trigger 'at=K' or 'p=X', e.g. "
        "'transient:sync:db/*.log:at=5' or 'persistent:append:*.sst:p=0.001' "
        "(see repro.sim.faults.FaultPlan.from_string)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault triggers (plans are deterministic)",
    )
    parser.add_argument(
        "--benchmarks",
        default="fillrandom,readrandom,seekrandom",
        help="comma-separated list from: " + ",".join(BENCHMARKS),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write per-phase results (throughput, IO, latency "
        "percentiles) as JSON",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a span trace JSONL (get/write/stall/flush/compaction "
        "spans on the simulated clock; deterministic per seed). With "
        "multiple engines each gets PATH.<engine>",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the final metrics registry exposition "
        "(Prometheus-style text). With multiple engines each gets "
        "PATH.<engine>",
    )
    return parser


def _device_factory(name: str):
    return {
        "ssd": DeviceModel.ssd,
        "ssd-raid0": DeviceModel.ssd_raid0,
        "hdd": DeviceModel.hdd,
    }[name]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
        return 2

    engines = (
        list(ENGINES)
        if args.engine == "all"
        else [e.strip() for e in args.engine.split(",") if e.strip()]
    )
    bad = [e for e in engines if e not in ENGINES]
    if bad:
        print(f"unknown engines: {', '.join(bad)}", file=sys.stderr)
        return 2
    if args.fault_plan is not None:
        try:
            FaultPlan.from_string(args.fault_plan, seed=args.fault_seed)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    reports: List[Dict[str, object]] = []
    rc = 0
    for engine in engines:
        if len(engines) > 1:
            print(f"\n===== {engine} =====")
        rc |= _run_one(engine, names, args, reports, multi=len(engines) > 1)
    if args.json is not None:
        payload = {
            "tool": "repro-dbbench",
            "num_keys": args.num,
            "value_size": args.value_size,
            "value_separation_bytes": args.value_separation_bytes,
            "threads": args.threads,
            "seed": args.seed,
            "device": args.device,
            "benchmarks": names,
            "fault_plan": args.fault_plan,
            "engines": reports,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"json results written to {args.json}")
    return rc


def _run_one(
    engine: str,
    names: List[str],
    args,
    reports: Optional[List[Dict[str, object]]] = None,
    multi: bool = False,
) -> int:
    overrides = {}
    lsm_engine = engine not in ("btree", "wiredtiger")
    if args.block_cache_mb is not None and lsm_engine:
        overrides.setdefault(engine, {})["block_cache_bytes"] = int(
            args.block_cache_mb * 1024 * 1024
        )
    if args.compaction_workers is not None and lsm_engine:
        overrides.setdefault(engine, {})["background_workers"] = args.compaction_workers
    if args.value_separation_bytes is not None and lsm_engine:
        overrides.setdefault(engine, {})["value_separation_bytes"] = (
            args.value_separation_bytes or None  # 0 means off
        )
    if engine == "pebblesdb":
        overrides.setdefault(engine, {})["compaction_scheduler"] = (
            "guard" if args.guard_parallel == "on" else "level"
        )
    cfg = standard_config(
        num_keys=args.num,
        value_size=args.value_size,
        threads=args.threads,
        seed=args.seed,
        cache_bytes=int(args.cache_mb * 1024 * 1024) if args.cache_mb else None,
        device_factory=_device_factory(args.device),
        aging=FilesystemAging(2, 0.89) if args.aged_fs else None,
        option_overrides=overrides,
    )
    run = fresh_run(engine, cfg)
    sink = None
    if args.trace_out is not None:
        from repro.obs.trace import TraceSink

        trace_path = f"{args.trace_out}.{engine}" if multi else args.trace_out
        sink = TraceSink(trace_path)
        run.db.enable_tracing(sink)
    if args.fault_plan is not None:
        # Attached after the store opens: setup IO is never faulted, the
        # benchmark phases run entirely under the plan.
        plan = FaultPlan.from_string(args.fault_plan, seed=args.fault_seed)
        run.env.storage.set_fault_injector(FaultInjector(plan))
    bench = run.bench
    reads = args.reads if args.reads is not None else max(1, args.num // 4)
    seeks = args.seeks if args.seeks is not None else max(1, args.num // 8)

    print(f"engine={engine} keys={args.num} value={args.value_size}B "
          f"threads={args.threads} cache={cfg.effective_cache_bytes() // 1024}KB "
          f"device={args.device}"
          + (f" fault-plan={args.fault_plan!r}" if args.fault_plan else ""))
    print("-" * 78)
    phases = {
        "fillseq": lambda: bench.fill_seq(),
        "fillrandom": lambda: bench.fill_random(),
        "fillsync": lambda: bench.fill_sync(),
        "overwrite": lambda: bench.overwrite(),
        "readrandom": lambda: bench.read_random(reads),
        "readmissing": lambda: bench.read_missing(reads),
        "readhot": lambda: bench.read_hot(reads),
        "readseq": lambda: bench.read_seq(reads),
        "seekrandom": lambda: bench.seek_random(seeks),
        "rangequery": lambda: bench.seek_random(seeks, nexts=args.nexts),
        "deleterandom": lambda: bench.delete_random(),
        "mixed": lambda: bench.mixed_read_write(reads, reads),
        "fillrandom-large": lambda: bench.fill_random_large(),
    }
    results: List[BenchResult] = []
    for name in names:
        if name == "compact":
            try:
                run.db.compact_all()
                print(f"{'compact':<16} store compacted")
            except ReproError as exc:
                print(f"{'compact':<16} FAILED: {exc}")
            continue
        try:
            results.append(phases[name]())
        except ReproError as exc:
            # An injected fault (or the degraded state it caused) stopped
            # the phase; report it and keep benchmarking.
            print(f"{name:<16} FAILED: {exc}")
            continue
        print(results[-1].row())

    try:
        run.db.wait_idle()
    except ReproError:
        pass
    stats = run.db.stats()
    print("-" * 78)
    print(
        f"write amplification {stats.write_amplification:.2f}x | "
        f"device W {stats.device_bytes_written / 1e6:.1f} MB "
        f"R {stats.device_bytes_read / 1e6:.1f} MB | "
        f"stalls {stats.stall_seconds:.3f}s | "
        f"sstables {stats.sstable_count} | "
        f"sim time {run.env.now:.3f}s"
    )
    scheduler = run.db.get_property("repro.compaction-scheduler")
    if scheduler is not None:
        print(f"compaction scheduler: {scheduler}")
    vlog = run.db.get_property("repro.vlog")
    if vlog is not None and vlog != "disabled":
        print(f"value log: {vlog}")
    if stats.block_cache_hits or stats.block_cache_misses:
        print(
            f"decoded-block cache (host-side): "
            f"{stats.block_cache_hit_rate * 100:.1f}% hits "
            f"({stats.block_cache_hits} hit / {stats.block_cache_misses} miss, "
            f"{stats.block_cache_bytes / 1e6:.1f} MB resident)"
        )
    faults = run.env.storage.faults
    if faults is not None:
        fs = faults.stats
        health = run.db.get_property("repro.health")
        print(
            f"faults: {fs.faults_injected} injected over {fs.ops_seen} storage "
            f"ops ({fs.transient_injected} transient / "
            f"{fs.persistent_injected} persistent) | "
            f"retries {stats.transient_fault_retries} | "
            f"background errors {stats.background_errors} | "
            f"resumes {stats.resumes} | health {health}"
        )
        if stats.degraded:
            print(f"background error: {run.db.get_property('repro.background-error')}")
    if reports is not None:
        summary = {
            "engine": engine,
            "phases": [result.to_dict() for result in results],
            "write_amplification": round(stats.write_amplification, 4),
            "device_bytes_written": stats.device_bytes_written,
            "device_bytes_read": stats.device_bytes_read,
            "stall_seconds": round(stats.stall_seconds, 6),
            "sstable_count": stats.sstable_count,
            "sim_seconds": round(run.env.now, 6),
        }
        if scheduler is not None:
            summary["compaction_scheduler"] = scheduler
        if faults is not None:
            summary["faults_injected"] = faults.stats.faults_injected
            summary["background_errors"] = stats.background_errors
            summary["degraded"] = stats.degraded
        reports.append(summary)
    if args.metrics_out is not None:
        metrics_path = f"{args.metrics_out}.{engine}" if multi else args.metrics_out
        with open(metrics_path, "w") as handle:
            handle.write(run.db.get_property("repro.metrics") or "")
        print(f"metrics written to {metrics_path}")
    run.db.close()
    if sink is not None:
        sink.close()
        print(f"trace written to {trace_path} ({sink.spans_written} spans)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Rebuild a store's metadata from its data files (LevelDB's RepairDB).

If the CURRENT pointer or MANIFEST is lost or corrupt, the sstables and
write-ahead logs still hold all the data.  ``repair_store``:

1. scans the store's directory for sstables, validating each one
   (corrupt tables are set aside and reported, not silently dropped);
2. converts any surviving write-ahead logs into fresh sstables;
3. writes a brand-new MANIFEST placing every table in Level 0 — always
   legal, since Level 0 tolerates overlapping ranges — ordered so newer
   versions shadow older ones;
4. points CURRENT at the new MANIFEST.

Guard metadata (FLSM) is not reconstructed: the repaired store reopens
with everything in Level 0 and rebuilds its guard hierarchy through
normal compaction, exactly as a fresh store would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.memtable import Memtable
from repro.sim.storage import SimulatedStorage
from repro.sstable import SSTableBuilder, SSTableReader
from repro.sstable.format import ValuePointer
from repro.util.keys import KIND_VPTR
from repro.version import ManifestWriter, VersionEdit, set_current
from repro.version.files import FileMetadata
from repro.version.manifest import CURRENT_NAME, GUARD_NONE
from repro.vlog.log import SEGMENT_SUFFIX
from repro.wal import LogReader, decode_batch


@dataclass
class RepairReport:
    """What the repair found and produced."""

    tables_recovered: int = 0
    tables_corrupt: int = 0
    logs_converted: int = 0
    entries_from_logs: int = 0
    last_sequence: int = 0
    corrupt_files: List[str] = field(default_factory=list)


def repair_store(storage: SimulatedStorage, prefix: str = "db/") -> RepairReport:
    """Rebuild ``prefix``'s MANIFEST from its data files."""
    acct = storage.foreground_account(prefix + "repair")
    report = RepairReport()

    tables: List[Tuple[int, FileMetadata, int]] = []  # (number, meta, max_seq)
    max_number = 0

    # Value-log segments are data files too: they are kept as-is (the
    # reopened store re-registers them from disk), their numbers must not
    # be re-allocated, and pointers into them are validated below.
    segments: Dict[int, int] = {}
    for name in storage.list_files(prefix):
        if name.endswith(SEGMENT_SUFFIX):
            number = int(name[len(prefix) : -len(SEGMENT_SUFFIX)])
            segments[number] = storage.size(name)
            max_number = max(max_number, number)

    def pointer_ok(value: bytes) -> bool:
        try:
            pointer = ValuePointer.decode(bytes(value))
        except ReproError:
            return False
        return pointer.offset + pointer.record_length <= segments.get(
            pointer.segment, 0
        )

    for name in storage.list_files(prefix):
        if not name.endswith(".sst"):
            continue
        number = int(name[len(prefix) : -4])
        max_number = max(max_number, number)
        try:
            reader = SSTableReader.open(storage, name, acct)
            max_seq = 0
            entries = 0
            first_key = last_key = None
            for key, value in reader.iter_all(acct):
                if first_key is None:
                    first_key = key
                last_key = key
                max_seq = max(max_seq, key.sequence)
                entries += 1
                if key.kind == KIND_VPTR and not pointer_ok(value):
                    raise ReproError("dangling value pointer")
            if first_key is None or last_key is None:
                raise ReproError("empty sstable")
        except (ReproError, AssertionError):
            report.tables_corrupt += 1
            report.corrupt_files.append(name)
            storage.rename(name, name + ".corrupt")
            continue
        meta = FileMetadata(
            number=number,
            smallest=first_key,
            largest=last_key,
            file_size=reader.file_size,
            num_entries=entries,
        )
        tables.append((number, meta, max_seq))
        report.tables_recovered += 1
        report.last_sequence = max(report.last_sequence, max_seq)

    next_number = max_number + 1

    # Convert surviving WALs into tables so their data is not lost and
    # cannot be double-applied on a later recovery.
    for name in sorted(storage.list_files(prefix)):
        if not name.endswith(".log"):
            continue
        mem = Memtable()
        recovered = 0
        for record in LogReader(storage, name).records(acct):
            try:
                seq, ops = decode_batch(record)
            except ReproError:
                break
            # A batch whose value pointers lead nowhere (torn vlog tail)
            # is dropped whole — batch atomicity — but its sequence range
            # is still burned so later writes cannot collide with any
            # phantom vlog records that carry those sequences.
            report.last_sequence = max(report.last_sequence, seq + len(ops) - 1)
            if any(
                kind == KIND_VPTR and not pointer_ok(value)
                for kind, _, value in ops
            ):
                continue
            for i, (kind, key, value) in enumerate(ops):
                try:
                    mem.add(seq + i, kind, key, value)
                    recovered += 1
                except ValueError:
                    pass  # duplicate (key, seq): already present
        if recovered:
            builder = SSTableBuilder()
            for ikey, value in mem:
                builder.add(ikey, value)
            blob, props, _ = builder.finish()
            number = next_number
            next_number += 1
            table_name = f"{prefix}{number:06d}.sst"
            storage.create(table_name)
            storage.append(table_name, blob, acct)
            storage.sync(table_name, acct)
            meta = FileMetadata(
                number=number,
                smallest=props.smallest,
                largest=props.largest,
                file_size=props.file_size,
                num_entries=props.num_entries,
            )
            tables.append((number, meta, mem.max_sequence))
            report.last_sequence = max(report.last_sequence, mem.max_sequence)
            report.entries_from_logs += recovered
            report.logs_converted += 1
        storage.delete(name)

    # Remove the old metadata before writing fresh metadata.
    for name in storage.list_files(prefix):
        base = name[len(prefix) :]
        if base.startswith("MANIFEST-") or base == CURRENT_NAME:
            storage.delete(name)

    manifest_name = f"{prefix}MANIFEST-{next_number:06d}"
    next_number += 1
    writer = ManifestWriter(storage, manifest_name)
    edit = VersionEdit(
        last_sequence=report.last_sequence,
        next_file_number=next_number,
        log_number=next_number,
    )
    # Level-0 recovery inserts each file at the front, so appending in
    # ascending max-sequence order leaves the newest data searched first.
    for _, meta, _ in sorted(tables, key=lambda t: t[2]):
        edit.add_file(0, meta, GUARD_NONE)
    writer.append(edit, acct)
    set_current(storage, manifest_name, acct, prefix)
    return report

"""``repro-server`` — serve sharded stores over TCP.

Starts one serving process hosting ``--shards`` range-partitioned engine
instances and speaks the :mod:`repro.net.protocol` wire format::

    python -m repro.tools.server --engine pebblesdb --shards 4 --port 7380

``--serving-mode process`` spawns one worker *process* per shard (spawn
start method) behind a relaying frontend, so shard work runs on separate
cores instead of one GIL-bound event loop::

    python -m repro.tools.server --shards 4 --serving-mode process

Clients connect with :meth:`repro.net.ClusterClient.open_tcp` (or the
``repro-netbench`` CLI) and learn the shard map from the HELLO response.
Boundaries default to uniform quantiles over db_bench-style ``user...``
keys; pass explicit ``--boundary`` keys (repeatable) for other key
spaces.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.engines.registry import ENGINES
from repro.net.server import ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve range-sharded simulated stores over TCP.",
    )
    parser.add_argument("--engine", default="pebblesdb", choices=ENGINES)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7380, help="0 picks a free port")
    parser.add_argument(
        "--boundary",
        action="append",
        default=None,
        metavar="KEY",
        help="explicit shard boundary key (repeat shards-1 times; "
        "default: uniform quantiles over --uniform-keys user... keys)",
    )
    parser.add_argument(
        "--uniform-keys",
        type=int,
        default=100_000,
        help="key-space size used to derive default boundaries",
    )
    parser.add_argument("--cache-mb", type=float, default=8.0, help="per-shard page cache")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="commit every write individually (disable coalescing)",
    )
    parser.add_argument(
        "--async-commits",
        action="store_true",
        help="acknowledge writes without waiting for the WAL sync",
    )
    parser.add_argument(
        "--serving-mode",
        choices=("loopback", "process"),
        default="loopback",
        help="'loopback' hosts every shard on one asyncio loop "
        "(deterministic); 'process' spawns one worker process per shard "
        "(true multi-core)",
    )
    parser.add_argument(
        "--no-ship-log",
        action="store_true",
        help="process mode: disable log shipping (worker crashes lose "
        "acknowledged writes, as in the pre-durability serving mode)",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=0,
        help="process mode: ship a compact snapshot every N commits so "
        "the parent can truncate the ship log (0 = full log; replay "
        "from a full log is byte-identical, from a snapshot logical)",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="process mode: disable the heartbeat supervisor "
        "(no automatic restart of dead or hung shard workers)",
    )
    return parser


def config_from_args(args) -> ServerConfig:
    boundaries = None
    if args.boundary:
        boundaries = [b.encode("utf-8") for b in args.boundary]
    return ServerConfig(
        engine=args.engine,
        shards=args.shards,
        boundaries=boundaries,
        uniform_keys=args.uniform_keys,
        seed=args.seed,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        group_commit=not args.no_group_commit,
        sync_commits=not args.async_commits,
        ship_log=not args.no_ship_log,
        snapshot_interval=args.snapshot_interval,
        supervise=not args.no_supervise,
    )


async def _serve(args) -> int:
    from repro.net.mp import make_server

    server = make_server(config_from_args(args), serving_mode=args.serving_mode)
    tcp = await server.serve_tcp(args.host, args.port)
    host, port = server.tcp_address
    bounds = ", ".join(b.decode("utf-8", "replace") for b in server.router.boundaries)
    print(
        f"repro-server: engine={args.engine} shards={args.shards} "
        f"mode={args.serving_mode} listening on {host}:{port}"
    )
    if bounds:
        print(f"shard boundaries: {bounds}")
    sys.stdout.flush()
    try:
        async with tcp:
            await tcp.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("repro-server: shutting down")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""``repro-netbench`` — drive a serving cluster with fill + read load.

Three ways to reach a server::

    # in-process over deterministic loopback pipes (default)
    python -m repro.tools.netbench --engine pebblesdb --shards 2 --num 2000

    # in-process over real TCP sockets (the CI smoke path: one command,
    # no port races — the server binds port 0 inside this process)
    python -m repro.tools.netbench --serve tcp --shards 2 --num 2000

    # against an external repro-server
    python -m repro.tools.netbench --connect 127.0.0.1:7380 --num 2000

Runs a fill phase (``--num`` puts) and a readrandom phase (``--reads``
gets, values verified against what was written) at ``--concurrency``
in-flight requests, then prints per-phase throughput and a summary.
Exits non-zero when any read returned a wrong value, any client-side
error surfaced, or (for in-process servers) the server counted protocol
errors — the CI job asserts exactly this.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from typing import List, Optional

from repro.engines.registry import ENGINES
from repro.net.client import ClusterClient
from repro.net.errors import NetError
from repro.net.server import KVServer, ServerConfig
from repro.workloads.distributions import KeyCodec, value_bytes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-netbench",
        description="Benchmark a repro serving cluster over the wire protocol.",
    )
    parser.add_argument("--engine", default="pebblesdb", choices=ENGINES)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--serve",
        choices=("loopback", "tcp"),
        default="loopback",
        help="start an in-process server on this transport",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="connect to an external server instead of serving in-process",
    )
    parser.add_argument("--num", type=int, default=2000, help="keys to fill")
    parser.add_argument("--reads", type=int, default=None, help="gets (default: num)")
    parser.add_argument("--value-size", type=int, default=100)
    parser.add_argument(
        "--value-separation-bytes",
        type=int,
        default=None,
        metavar="N",
        help="store values >= N bytes in each shard's value log "
        "(KV separation; default: off)",
    )
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--pool-size", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a span trace JSONL covering client, server, engine, and "
        "background work (in-process servers only)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write every shard's metrics exposition (fetched over the "
        "wire METRICS op) after the run",
    )
    return parser


async def _bounded(coros, concurrency: int) -> List[object]:
    """Run coroutines with at most ``concurrency`` in flight, in order."""
    semaphore = asyncio.Semaphore(concurrency)

    async def run(coro):
        async with semaphore:
            return await coro

    return await asyncio.gather(*(run(c) for c in coros))


async def run_phases(client: ClusterClient, args) -> dict:
    codec = KeyCodec(16)
    reads = args.reads if args.reads is not None else args.num
    rng = random.Random(args.seed)
    wrong = 0

    start = time.perf_counter()
    await _bounded(
        (
            client.put(codec.encode(i), value_bytes(i, args.value_size))
            for i in range(args.num)
        ),
        args.concurrency,
    )
    fill_wall = time.perf_counter() - start

    read_indices = [rng.randrange(args.num) for _ in range(reads)]
    start = time.perf_counter()
    values = await _bounded(
        (client.get(codec.encode(i)) for i in read_indices), args.concurrency
    )
    read_wall = time.perf_counter() - start
    for index, value in zip(read_indices, values):
        if value != value_bytes(index, args.value_size):
            wrong += 1

    return {
        "fill_ops": args.num,
        "fill_wall_seconds": fill_wall,
        "fill_kops_per_sec": args.num / fill_wall / 1000 if fill_wall else 0.0,
        "read_ops": reads,
        "read_wall_seconds": read_wall,
        "read_kops_per_sec": reads / read_wall / 1000 if read_wall else 0.0,
        "wrong_values": wrong,
        "client_requests": client.stats.requests,
        "client_retries": client.stats.retries,
        "client_transient_errors": client.stats.transient_errors,
    }


async def _run(args) -> int:
    server: Optional[KVServer] = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        client = await ClusterClient.open_tcp(
            host, int(port), pool_size=args.pool_size
        )
    else:
        options = None
        if args.value_separation_bytes:
            from dataclasses import replace

            from repro.engines.options import StoreOptions

            options = replace(
                StoreOptions.for_preset(args.engine),
                value_separation_bytes=args.value_separation_bytes,
            )
        server = KVServer(
            ServerConfig(
                engine=args.engine,
                shards=args.shards,
                uniform_keys=max(args.num, 1),
                options=options,
                seed=args.seed,
            )
        )
        if args.serve == "tcp":
            await server.serve_tcp("127.0.0.1", 0)
            host, port = server.tcp_address
            client = await ClusterClient.open_tcp(host, port, pool_size=args.pool_size)
        else:
            client = await ClusterClient.open_loopback(server, pool_size=args.pool_size)

    sink = None
    if args.trace_out:
        if server is None:
            print("--trace-out requires an in-process server", file=sys.stderr)
            await client.aclose()
            return 2
        from repro.net.client import _ClusterClockView
        from repro.obs.trace import TraceSink

        sink = TraceSink(args.trace_out)
        client.enable_tracing(
            sink, clock=_ClusterClockView(server), seed=args.seed
        )
        server.enable_tracing(sink)

    shard_count = client.router.num_shards if client.router else 1
    print(
        f"netbench: transport={'external' if args.connect else args.serve} "
        f"shards={shard_count} num={args.num} "
        f"value={args.value_size}B concurrency={args.concurrency}"
    )
    try:
        result = await run_phases(client, args)
    except NetError as exc:
        print(f"netbench FAILED: {exc}", file=sys.stderr)
        await client.aclose()
        if server is not None:
            await server.aclose()
        return 1

    result["transport"] = "external" if args.connect else args.serve
    result["shards"] = shard_count
    result["engine"] = args.engine

    if server is not None:
        totals = server.total_ops()
        result["server_ops"] = totals
        result["server_protocol_errors"] = server.protocol_errors
        result["server_sim_seconds"] = server.sim_now()

    print(
        f"fill      {result['fill_ops']:>8} ops  "
        f"{result['fill_kops_per_sec']:8.1f} Kops/s (wall)"
    )
    print(
        f"readrandom{result['read_ops']:>8} ops  "
        f"{result['read_kops_per_sec']:8.1f} Kops/s (wall)"
    )
    print(
        f"client: requests={result['client_requests']} "
        f"retries={result['client_retries']} "
        f"transient-errors={result['client_transient_errors']} "
        f"wrong-values={result['wrong_values']}"
    )

    failures = []
    if result["wrong_values"]:
        failures.append(f"{result['wrong_values']} wrong read values")
    if server is not None:
        totals = result["server_ops"]
        print(
            f"server: puts={totals['puts']} gets={totals['gets']} "
            f"group-commits={totals['group_commits']} "
            f"duplicates-skipped={totals['duplicate_writes']} "
            f"protocol-errors={result['server_protocol_errors']}"
        )
        if result["server_protocol_errors"]:
            failures.append(
                f"{result['server_protocol_errors']} server protocol errors"
            )
        if totals["puts"] + totals["batches"] < args.num:
            failures.append(
                f"server applied {totals['puts']} puts, expected >= {args.num}"
            )
        if totals["gets"] < result["read_ops"]:
            failures.append(
                f"server served {totals['gets']} gets, expected >= {result['read_ops']}"
            )

    if args.metrics_out:
        texts = await client.all_metrics()
        with open(args.metrics_out, "w") as handle:
            for shard, text in enumerate(texts):
                handle.write(f"# shard {shard}\n")
                handle.write(text or "")
        print(f"metrics written to {args.metrics_out}")

    await client.aclose()
    if server is not None:
        await server.aclose()
    if sink is not None:
        sink.close()
        result["trace_spans"] = sink.spans_written
        print(f"trace written to {args.trace_out} ({sink.spans_written} spans)")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"results written to {args.json}")

    if failures:
        for failure in failures:
            print(f"netbench FAILED: {failure}", file=sys.stderr)
        return 1
    print("netbench OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(_run(args))


if __name__ == "__main__":
    raise SystemExit(main())

"""Low-level inspection of store files (LevelDB's ``sst_dump`` / ``ldb``).

Three inspectors, each returning printable text:

* :func:`dump_sstable` — footer, index, bloom stats, and (optionally)
  every record of one sstable.
* :func:`dump_manifest` — the VersionEdit history of a MANIFEST, i.e. the
  store's metadata timeline, including guard commits/deletions.
* :func:`dump_wal` — the batches of a write-ahead log.

All of them read through the simulated storage layer, so they also work
on crashed or torn files (reporting where replay stops).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CorruptionError
from repro.sim.storage import SimulatedStorage
from repro.sstable import SSTableReader
from repro.util.keys import KIND_DELETE
from repro.version import ManifestReader
from repro.version.manifest import GUARD_KEY, GUARD_NONE, GUARD_SENTINEL
from repro.wal import LogReader, decode_batch


def _fmt_key(key: bytes, limit: int = 24) -> str:
    text = key.decode("ascii", errors="backslashreplace")
    return text if len(text) <= limit else text[: limit - 1] + "…"


def dump_sstable(
    storage: SimulatedStorage,
    name: str,
    *,
    records: bool = False,
    limit: int = 50,
) -> str:
    """Describe one sstable; with ``records``, list up to ``limit`` rows."""
    acct = storage.foreground_account("dump")
    reader = SSTableReader.open(storage, name, acct)
    lines = [
        f"sstable {name}",
        f"  file size    : {reader.file_size} bytes",
        f"  entries      : {reader.num_entries}",
        f"  data blocks  : {reader.num_blocks}",
        f"  bloom filter : "
        + (
            f"{reader.bloom.size_bytes} bytes, {reader.bloom.num_probes} probes, "
            f"fpr~{reader.bloom.expected_fpr():.4f}"
            if reader.bloom is not None
            else "(none)"
        ),
        f"  resident     : {reader.memory_bytes} bytes (index + filter)",
    ]
    if records:
        lines.append("  records:")
        shown = 0
        for key, value in reader.iter_all(acct):
            kind = "DEL" if key.kind == KIND_DELETE else "PUT"
            lines.append(
                f"    {kind} {_fmt_key(key.user_key)} @seq={key.sequence} "
                f"({len(value)} bytes)"
            )
            shown += 1
            if shown >= limit:
                lines.append(f"    ... ({reader.num_entries - shown} more)")
                break
    return "\n".join(lines)


def dump_manifest(storage: SimulatedStorage, name: str) -> str:
    """The VersionEdit history of a MANIFEST file."""
    acct = storage.foreground_account("dump")
    lines = [f"manifest {name}"]
    marker_names = {GUARD_NONE: "", GUARD_SENTINEL: " [sentinel]", GUARD_KEY: ""}
    for i, edit in enumerate(ManifestReader(storage, name).edits(acct)):
        lines.append(f"  edit #{i}:")
        if edit.last_sequence is not None:
            lines.append(f"    last_sequence    = {edit.last_sequence}")
        if edit.next_file_number is not None:
            lines.append(f"    next_file_number = {edit.next_file_number}")
        if edit.log_number is not None:
            lines.append(f"    log_number       = {edit.log_number}")
        for level, meta, marker, guard_key in edit.new_files:
            guard = (
                f" guard={_fmt_key(guard_key)}" if marker == GUARD_KEY
                else marker_names.get(marker, "")
            )
            lines.append(
                f"    + L{level} file {meta.number} "
                f"[{_fmt_key(meta.smallest.user_key)}.."
                f"{_fmt_key(meta.largest.user_key)}] "
                f"{meta.file_size}B/{meta.num_entries}e{guard}"
            )
        for level, number in edit.deleted_files:
            lines.append(f"    - L{level} file {number}")
        for level, key in edit.new_guards:
            lines.append(f"    + L{level} guard {_fmt_key(key)}")
        for level, key in edit.deleted_guards:
            lines.append(f"    - L{level} guard {_fmt_key(key)}")
    return "\n".join(lines)


def dump_wal(storage: SimulatedStorage, name: str, limit: int = 100) -> str:
    """The write batches of a WAL, up to ``limit`` operations."""
    acct = storage.foreground_account("dump")
    lines = [f"wal {name}"]
    shown = 0
    try:
        for record in LogReader(storage, name).records(acct):
            seq, ops = decode_batch(record)
            lines.append(f"  batch @seq={seq} ({len(ops)} ops)")
            for kind, key, value in ops:
                verb = "DEL" if kind == KIND_DELETE else "PUT"
                lines.append(
                    f"    {verb} {_fmt_key(key)}"
                    + (f" ({len(value)} bytes)" if verb == "PUT" else "")
                )
                shown += 1
                if shown >= limit:
                    lines.append("    ... (truncated)")
                    return "\n".join(lines)
    except CorruptionError as exc:
        lines.append(f"  ! replay stopped: {exc}")
    return "\n".join(lines)


def dump_store(storage: SimulatedStorage, prefix: str = "db/") -> str:
    """One-line-per-file overview of everything under ``prefix``."""
    lines = [f"store files under {prefix!r}:"]
    for name in storage.list_files(prefix):
        lines.append(f"  {name}  ({storage.size(name)} bytes)")
    return "\n".join(lines)

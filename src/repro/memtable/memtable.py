"""The in-memory write buffer.

Each entry is an internal key ``(user_key, sequence, kind)`` mapping to a
value (empty for tombstones).  ``get`` returns the newest visible version:
because internal keys order newest-first within a user key, the first entry
at or after ``(user_key, snapshot_seq)`` answers the lookup.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.util.keys import KIND_DELETE, KIND_PUT, KIND_SEEK, MAX_SEQUENCE, InternalKey
from repro.memtable.skiplist import SkipList

#: Approximate per-entry bookkeeping bytes (node + pointers), used for the
#: memory-budget flush trigger so simulated memtables fill like real ones.
_ENTRY_OVERHEAD = 24


class GetResult:
    """Outcome of a point lookup against one memtable or sstable.

    ``sequence`` is the version found; FLSM guards may hold several
    versions of a key across overlapping sstables, and the engine keeps
    the highest sequence among the candidates.
    """

    __slots__ = ("found", "is_deleted", "value", "sequence", "kind")

    def __init__(
        self,
        found: bool,
        is_deleted: bool,
        value: Optional[bytes],
        sequence: int = 0,
        kind: int = KIND_PUT,
    ) -> None:
        self.found = found
        self.is_deleted = is_deleted
        self.value = value
        self.sequence = sequence
        self.kind = kind


class Memtable:
    """Skip-list-backed buffer of recent writes."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._table = SkipList(seed)
        self._bytes = 0
        self.max_sequence = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def approximate_bytes(self) -> int:
        """Estimated memory footprint (flush trigger input)."""
        return self._bytes

    # ------------------------------------------------------------------
    def add(self, sequence: int, kind: int, user_key: bytes, value: bytes) -> None:
        """Record one write."""
        ikey = InternalKey(user_key, sequence, kind)
        self._table.insert(ikey, value)
        self._bytes += len(user_key) + len(value) + _ENTRY_OVERHEAD
        if sequence > self.max_sequence:
            self.max_sequence = sequence

    def put(self, sequence: int, user_key: bytes, value: bytes) -> None:
        self.add(sequence, KIND_PUT, user_key, value)

    def delete(self, sequence: int, user_key: bytes) -> None:
        self.add(sequence, KIND_DELETE, user_key, b"")

    # ------------------------------------------------------------------
    def get(self, user_key: bytes, snapshot: int = MAX_SEQUENCE) -> GetResult:
        """Newest version of ``user_key`` visible at ``snapshot``."""
        probe = InternalKey(user_key, snapshot, KIND_SEEK)
        for ikey, value in self._table.seek(probe):
            if ikey.user_key != user_key:
                break
            if ikey.kind == KIND_DELETE:
                return GetResult(True, True, None, ikey.sequence)
            return GetResult(True, False, value, ikey.sequence, ikey.kind)
        return GetResult(False, False, None)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[InternalKey, bytes]]:
        """All entries in internal-key order (for flush and iterators)."""
        return iter(self._table)

    def seek(self, user_key: bytes) -> Iterator[Tuple[InternalKey, bytes]]:
        """Entries starting at the first internal key for ``user_key``."""
        return self._table.seek(InternalKey(user_key, MAX_SEQUENCE, KIND_SEEK))

    def reverse_iter(
        self, max_user_key: Optional[bytes] = None
    ) -> Iterator[Tuple[InternalKey, bytes]]:
        """All entries in descending internal-key order.

        Optionally bounded to user keys <= ``max_user_key``.  The skip
        list has no back pointers, so this materializes the (bounded)
        memtable contents — acceptable because memtables are small by
        construction.
        """
        entries = [
            (ikey, value)
            for ikey, value in self._table
            if max_user_key is None or ikey.user_key <= max_user_key
        ]
        return iter(reversed(entries))

"""In-memory write buffer: a probabilistic skip list and the memtable on it.

LSM and FLSM stores batch writes in memory (paper section 2.2): every
``put`` lands in a skip list ordered by internal key, and full memtables
are written out as Level-0 sstables.  The skip list here is the classic
Pugh structure — also the ancestor of FLSM's guards.
"""

from repro.memtable.skiplist import SkipList
from repro.memtable.memtable import Memtable

__all__ = ["SkipList", "Memtable"]

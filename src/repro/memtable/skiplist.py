"""A probabilistic skip list (Pugh 1990).

This is both the memtable's index (as in LevelDB) and the conceptual
ancestor of FLSM's guards: guard keys are chosen exactly the way a skip
list promotes nodes, so a key that is a guard at level *i* is a guard at
every deeper level (paper section 3.1).

Keys are arbitrary comparable objects (the store uses
:class:`repro.util.keys.InternalKey`); duplicate keys are rejected —
the memtable never produces duplicates because every write carries a fresh
sequence number.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, height: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * height


class SkipList:
    """Sorted map with O(log n) expected insert and seek."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(
        self, key: Any, prev_out: Optional[List[_Node]] = None
    ) -> Optional[_Node]:
        node = self._head
        for level in range(self._height - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            if prev_out is not None:
                prev_out[level] = node
        return node.forward[0]

    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert a new key; raises on duplicates."""
        prev: List[_Node] = [self._head] * _MAX_HEIGHT
        found = self._find_greater_or_equal(key, prev)
        if found is not None and not (key < found.key):
            raise ValueError(f"duplicate skip list key: {key!r}")
        height = self._random_height()
        if height > self._height:
            self._height = height
        node = _Node(key, value, height)
        for level in range(height):
            node.forward[level] = prev[level].forward[level]
            prev[level].forward[level] = node
        self._size += 1

    def get(self, key: Any) -> Tuple[bool, Any]:
        """Exact lookup; returns ``(found, value)``."""
        node = self._find_greater_or_equal(key)
        if node is not None and not (key < node.key):
            return True, node.value
        return False, None

    def seek(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs starting at the first key >= key."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def first(self) -> Optional[Tuple[Any, Any]]:
        node = self._head.forward[0]
        return None if node is None else (node.key, node.value)

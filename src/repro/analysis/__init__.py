"""Result analysis: amplification metrics and report tables."""

from repro.analysis.amplification import (
    space_amplification,
    sstable_size_distribution,
    write_amplification,
)
from repro.analysis.report import Table, fmt_bytes, fmt_ratio
from repro.analysis.charts import grouped_bar_chart, hbar_chart, sparkline

__all__ = [
    "write_amplification",
    "space_amplification",
    "sstable_size_distribution",
    "Table",
    "fmt_bytes",
    "fmt_ratio",
    "hbar_chart",
    "grouped_bar_chart",
    "sparkline",
]

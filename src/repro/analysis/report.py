"""Plain-text result tables, printed in the paper's row format."""

from __future__ import annotations

from typing import List, Optional, Sequence


def fmt_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TB"


def fmt_ratio(value: float, baseline: float) -> str:
    """'1.00x' style relative value (the paper plots bars this way)."""
    if baseline == 0:
        return "n/a"
    return f"{value / baseline:.2f}x"


class Table:
    """A fixed-width text table builder."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self, min_width: int = 8) -> str:
        widths = [
            max(min_width, len(col), *(len(r[i]) for r in self.rows))
            if self.rows
            else max(min_width, len(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - matches file-like verb
        print()
        print(self.render())
        print()

"""Plain-text charts for benchmark output.

The paper presents most results as grouped bar charts normalized to
HyperLevelDB; these helpers render the same shape in a terminal so the
benchmark suite can *draw* each figure, not just tabulate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def hbar_chart(
    title: str,
    values: Dict[str, float],
    *,
    width: int = 48,
    unit: str = "",
    baseline: Optional[str] = None,
) -> str:
    """Horizontal bar chart; optionally annotate values relative to a
    baseline entry (the paper's relative-to-HyperLevelDB style)."""
    if not values:
        return f"{title}\n(no data)"
    label_width = max(len(k) for k in values)
    peak = max(values.values()) or 1.0
    base = values.get(baseline) if baseline else None
    lines = [title, "-" * len(title)]
    for name, value in values.items():
        bar = "█" * max(1, int(round(width * value / peak)))
        rel = f"  ({value / base:.2f}x)" if base else ""
        lines.append(f"{name.ljust(label_width)} │{bar} {value:.2f}{unit}{rel}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 36,
    unit: str = "",
) -> str:
    """One block per group, one bar per series (Figure 5.1/5.5 layout)."""
    lines = [title, "=" * len(title)]
    label_width = max(len(s) for s in series)
    peak = max((max(v) for v in series.values()), default=1.0) or 1.0
    for gi, group in enumerate(groups):
        lines.append(f"\n{group}:")
        for name, vals in series.items():
            value = vals[gi]
            bar = "█" * max(1, int(round(width * value / peak)))
            lines.append(f"  {name.ljust(label_width)} │{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend (the Figure 5.4 per-iteration series)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[3] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)

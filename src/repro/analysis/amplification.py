"""Amplification metrics (the quantities of Figures 1.1, 5.1a, 5.3).

* **Write amplification** — device bytes written / user bytes written.
  Exact in this library: every engine writes through the simulated
  storage layer, which counts bytes per store.
* **Space amplification** — live bytes on storage / logical dataset size.
* **SSTable size distribution** — mean/median/p90/p95 (Table 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.engines.base import KeyValueStore, StoreStats


def write_amplification(stats: StoreStats) -> float:
    """Total device write IO over user data written."""
    if stats.user_bytes_written == 0:
        return 0.0
    return stats.device_bytes_written / stats.user_bytes_written


def space_amplification(live_bytes: int, logical_bytes: int) -> float:
    """Bytes occupied on storage over the logical dataset size."""
    if logical_bytes == 0:
        return 0.0
    return live_bytes / logical_bytes


@dataclass
class SizeDistribution:
    """Summary statistics of sstable sizes (Table 5.1 rows)."""

    count: int
    mean: float
    median: float
    p90: float
    p95: float

    def row(self, unit: float = 1.0) -> str:
        return (
            f"n={self.count}  mean={self.mean / unit:.2f}  "
            f"median={self.median / unit:.2f}  p90={self.p90 / unit:.2f}  "
            f"p95={self.p95 / unit:.2f}"
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def sstable_size_distribution(db: KeyValueStore) -> SizeDistribution:
    """Distribution of live sstable sizes for an LSM/FLSM store."""
    sizes: List[int] = sorted(getattr(db, "sstable_sizes")())
    if not sizes:
        return SizeDistribution(0, 0.0, 0.0, 0.0, 0.0)
    return SizeDistribution(
        count=len(sizes),
        mean=sum(sizes) / len(sizes),
        median=_percentile(sizes, 0.5),
        p90=_percentile(sizes, 0.9),
        p95=_percentile(sizes, 0.95),
    )

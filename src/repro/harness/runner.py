"""Builds the simulated environment + store + drivers for one experiment.

Every engine gets its own fresh simulated device (as the paper benchmarks
stores one at a time on a freshly formatted file system), with the page
cache sized so the dataset is ~3x memory unless an experiment overrides
it (cached-dataset and low-memory runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro import Environment
from repro.engines.base import KeyValueStore
from repro.engines.options import StoreOptions
from repro.engines.registry import create_store
from repro.sim.aging import FilesystemAging
from repro.sim.device import DeviceModel
from repro.workloads.db_bench import DBBench
from repro.workloads.ycsb import YcsbRunner


@dataclass
class ExperimentConfig:
    """Knobs shared by every benchmark run."""

    num_keys: int = 20000
    value_size: int = 1024
    key_width: int = 16
    #: DRAM page cache; default keeps dataset ~3x memory like the paper.
    cache_bytes: Optional[int] = None
    threads: int = 1
    seed: int = 0
    device_factory: Callable[[], DeviceModel] = DeviceModel.ssd_raid0
    aging: Optional[FilesystemAging] = None
    #: Per-engine option overrides, e.g. {"pebblesdb": {...}}.
    option_overrides: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def dataset_bytes(self) -> int:
        return self.num_keys * (self.key_width + self.value_size)

    def effective_cache_bytes(self) -> int:
        if self.cache_bytes is not None:
            return self.cache_bytes
        return max(256 * 1024, self.dataset_bytes // 3)


def standard_config(**overrides) -> ExperimentConfig:
    """The default scaled configuration (DESIGN.md section 5)."""
    return ExperimentConfig(**overrides)


@dataclass
class StoreRun:
    """One engine instantiated on its own simulated device."""

    engine: str
    env: Environment
    db: KeyValueStore
    config: ExperimentConfig

    @property
    def bench(self) -> DBBench:
        return DBBench(
            self.db,
            self.env.storage,
            num_keys=self.config.num_keys,
            value_size=self.config.value_size,
            key_width=self.config.key_width,
            seed=self.config.seed,
        )

    def ycsb(self, record_count: Optional[int] = None) -> YcsbRunner:
        return YcsbRunner(
            self.db,
            self.env.storage,
            record_count=record_count or self.config.num_keys,
            value_size=self.config.value_size,
            seed=self.config.seed,
        )

    def reopen(self) -> "StoreRun":
        """Close and recover the store on the same device (aging runs)."""
        self.db.close()
        db = create_store(
            self.engine,
            self.env.storage,
            options=_options_for(self.engine, self.config),
            prefix=f"{self.engine}/",
            seed=self.config.seed,
        )
        return StoreRun(self.engine, self.env, db, self.config)


def _options_for(engine: str, config: ExperimentConfig) -> Optional[StoreOptions]:
    if engine in ("btree", "wiredtiger"):
        return None
    options = StoreOptions.for_preset(engine)
    overrides = config.option_overrides.get(engine, {})
    if overrides:
        options = replace(options, **overrides)
    return options


def fresh_run(engine: str, config: Optional[ExperimentConfig] = None) -> StoreRun:
    """A new engine instance on a fresh simulated device."""
    cfg = config if config is not None else ExperimentConfig()
    device = cfg.device_factory()
    if cfg.aging is not None:
        cfg.aging.apply(device)
    env = Environment(device=device, cache_bytes=cfg.effective_cache_bytes())
    env.cpu.thread_scale = float(cfg.threads)
    db = create_store(
        engine,
        env.storage,
        options=_options_for(engine, cfg),
        prefix=f"{engine}/",
        seed=cfg.seed,
    )
    return StoreRun(engine, env, db, cfg)

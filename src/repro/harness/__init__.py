"""Experiment harness shared by the benchmark suite and examples."""

from repro.harness.runner import (
    ExperimentConfig,
    StoreRun,
    fresh_run,
    standard_config,
)

__all__ = ["ExperimentConfig", "StoreRun", "fresh_run", "standard_config"]

"""Internal-key codec shared by memtable, sstables, and iterators.

LSM-family stores never update in place: each ``put``/``delete`` appends a
new *internal key* ``(user_key, sequence, kind)`` where ``sequence`` is a
store-wide monotonically increasing version number and ``kind`` marks the
record as a value or a tombstone.  Ordering is ``user_key`` ascending, then
``sequence`` *descending*, so a forward scan meets the newest version of
each user key first.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import CorruptionError

KIND_DELETE = 0
KIND_PUT = 1
#: A put whose value is a :class:`repro.vlog.ValuePointer` into the value
#: log rather than the user bytes.  Travels through memtable, WAL,
#: sstables, and compaction exactly like a put; read paths resolve it.
KIND_VPTR = 2
#: Kind used when building *probe* keys.  Ordering negates the kind, so a
#: probe at snapshot ``s`` must carry the highest kind or it would sort
#: after (and a seek would skip) a same-sequence entry of a higher kind.
KIND_SEEK = KIND_VPTR

#: Largest representable sequence number (56 bits, as in LevelDB).
MAX_SEQUENCE = (1 << 56) - 1

_TRAILER_LEN = 8


class InternalKey:
    """A versioned key.  Orders by (user_key asc, sequence desc)."""

    __slots__ = ("user_key", "sequence", "kind", "_sk")

    def __init__(self, user_key: bytes, sequence: int, kind: int) -> None:
        if not 0 <= sequence <= MAX_SEQUENCE:
            raise ValueError(f"sequence out of range: {sequence}")
        if kind not in (KIND_DELETE, KIND_PUT, KIND_VPTR):
            raise ValueError(f"bad kind: {kind}")
        self.user_key = user_key
        self.sequence = sequence
        self.kind = kind

    def _sort_key(self) -> Tuple[bytes, int, int]:
        # Negating the sequence makes plain tuple comparison give the
        # newest-first order within a user key.  The tuple is memoized in
        # the ``_sk`` slot: a bisect probe compares the same key O(log n)
        # times, and rebuilding it dominated comparison cost.
        try:
            return self._sk
        except AttributeError:
            sk = (self.user_key, -self.sequence, -self.kind)
            self._sk = sk
            return sk

    def __lt__(self, other: "InternalKey") -> bool:
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "InternalKey") -> bool:
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "InternalKey") -> bool:
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "InternalKey") -> bool:
        return self._sort_key() >= other._sort_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InternalKey):
            return NotImplemented
        return (
            self.user_key == other.user_key
            and self.sequence == other.sequence
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.user_key, self.sequence, self.kind))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = {KIND_PUT: "PUT", KIND_DELETE: "DEL", KIND_VPTR: "VPTR"}[self.kind]
        return f"InternalKey({self.user_key!r}, seq={self.sequence}, {kind})"


def pack_internal_key(key: InternalKey) -> bytes:
    """Serialize to ``user_key + 8-byte little-endian (seq << 8 | kind)``."""
    trailer = (key.sequence << 8) | key.kind
    return key.user_key + trailer.to_bytes(_TRAILER_LEN, "little")


def unpack_internal_key(data: bytes) -> InternalKey:
    """Inverse of :func:`pack_internal_key`."""
    if len(data) < _TRAILER_LEN:
        raise CorruptionError("internal key shorter than trailer")
    trailer = int.from_bytes(data[-_TRAILER_LEN:], "little")
    kind = trailer & 0xFF
    sequence = trailer >> 8
    if kind not in (KIND_DELETE, KIND_PUT, KIND_VPTR):
        raise CorruptionError(f"bad internal key kind: {kind}")
    return InternalKey(data[:-_TRAILER_LEN], sequence, kind)
